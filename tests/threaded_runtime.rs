//! Integration tests of the threaded (real-kernel) runtime and its
//! agreement with the model pipeline.

use insitu_ensembles::model::{extract_steady_state, StageKind};
use insitu_ensembles::prelude::*;
use std::time::Duration;

fn config(spec: EnsembleSpec, steps: u64) -> ThreadRunConfig {
    ThreadRunConfig {
        spec,
        md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
        analysis_group_size: 32,
        analysis_sigma: 1.2,
        n_steps: steps,
        staging_capacity: 1,
        timeout: Duration::from_secs(120),
        kernel: None,
        fault_plan: None,
        retry: None,
        restart: None,
    }
}

#[test]
fn threaded_trace_feeds_the_model_pipeline() {
    let exec = run_threaded(&config(ConfigId::Cc.build(), 5)).unwrap();
    let samples = exec.trace.member_samples(0, 1);
    let times = extract_steady_state(&samples, WarmupPolicy::FixedSteps(1)).unwrap();
    let sigma = sigma_star(&times);
    let e = efficiency(&times);
    assert!(sigma > 0.0);
    assert!(e > 0.0 && e <= 1.0, "E = {e}");
    // Eq. 2 prediction is within 2x of the wall-clock member makespan
    // (wall-clock noise on shared CI hardware can be large; the model
    // must still be the right order of magnitude).
    let measured = insitu_ensembles::measurement::member_makespan(&exec.trace, 0, 1).unwrap();
    let predicted = makespan(&times, 5);
    let ratio = predicted / measured;
    assert!((0.5..2.0).contains(&ratio), "Eq. 2 ratio {ratio} ({predicted} vs {measured})");
}

#[test]
fn report_builder_works_on_threaded_traces() {
    let spec = ConfigId::C1_5.build();
    let exec = run_threaded(&config(spec.clone(), 4)).unwrap();
    let report = insitu_ensembles::runtime::build_threaded_report(
        "C1.5-threaded",
        &spec,
        &exec,
        4,
        WarmupPolicy::FixedSteps(1),
    )
    .unwrap();
    assert_eq!(report.n, 2);
    assert!(report.ensemble_makespan > 0.0);
    for m in &report.members {
        assert!((m.cp - 1.0).abs() < 1e-12);
        assert!(m.efficiency > 0.0);
    }
}

#[test]
fn every_reader_sees_every_frame_once() {
    let spec = EnsembleSpec::new(vec![MemberSpec::new(
        ComponentSpec::simulation(16, 0),
        vec![ComponentSpec::analysis(8, 0), ComponentSpec::analysis(8, 1)],
    )]);
    let steps = 4;
    let exec = run_threaded(&config(spec, steps)).unwrap();
    assert_eq!(exec.staging_stats.puts, steps);
    assert_eq!(exec.staging_stats.gets, steps * 2);
    for j in 1..=2usize {
        let ana = ComponentRef::analysis(0, j);
        assert_eq!(exec.trace.stage_series(ana, StageKind::Read).len(), steps as usize);
        assert_eq!(exec.cv_series[&ana].len(), steps as usize);
    }
}

#[test]
fn md_physics_stays_sane_under_the_runtime() {
    // Run a member and verify the MD's collective variable is stable
    // (no NaNs, no blow-up: the thermostat keeps the system bounded).
    let exec = run_threaded(&config(ConfigId::Cc.build(), 6)).unwrap();
    let cvs = &exec.cv_series[&ComponentRef::analysis(0, 1)];
    assert!(cvs.iter().all(|v| v.is_finite() && *v > 0.0));
    let min = cvs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = cvs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max / min < 3.0, "CV range blew up: {min}..{max}");
}

#[test]
fn buffered_staging_works_threaded_too() {
    let mut cfg = config(ConfigId::Cc.build(), 5);
    cfg.staging_capacity = 3;
    let exec = run_threaded(&cfg).unwrap();
    assert_eq!(exec.staging_stats.puts, 5);
    assert_eq!(exec.staging_stats.gets, 5);
}
