//! Paper-claim regression tests: every qualitative claim of the
//! evaluation (§2.3, §3.4, §5.2) must hold on the simulated platform at
//! paper scale.

use insitu_ensembles::prelude::*;

const STEPS: u64 = 37;

fn report_for(id: ConfigId) -> insitu_ensembles::measurement::EnsembleReport {
    EnsembleRunner::paper_config(id).steps(STEPS).jitter(0.0).run().expect("run failed")
}

fn final_objective(id: ConfigId) -> f64 {
    let spec = id.build();
    let report = report_for(id);
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            indicator(&MemberInputs::from_specs(ms, &spec, mr.efficiency), &IndicatorPath::uap())
        })
        .collect();
    objective(&values)
}

fn objective_at(id: ConfigId, path: &IndicatorPath) -> f64 {
    let spec = id.build();
    let report = report_for(id);
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| indicator(&MemberInputs::from_specs(ms, &spec, mr.efficiency), path))
        .collect();
    objective(&values)
}

#[test]
fn c1_5_has_shortest_makespan_among_two_member_configs() {
    // §2.3: "C1.5 yields the shortest member makespan among all
    // configurations" (the two-member comparison set).
    let c15 = report_for(ConfigId::C1_5).ensemble_makespan;
    for other in [ConfigId::C1_1, ConfigId::C1_2, ConfigId::C1_3, ConfigId::C1_4] {
        let m = report_for(other).ensemble_makespan;
        assert!(c15 <= m + 1e-9, "C1.5 ({c15}) must beat {other} ({m})");
    }
}

#[test]
fn colocation_raises_llc_miss_ratio() {
    // §2.3 / Figure 3: co-located configurations show higher LLC miss
    // ratios than the co-location-free baseline C_f.
    let cf = report_for(ConfigId::Cf);
    let cf_sim_miss = cf.members[0].components[0].metrics.llc_miss_ratio;
    let cf_ana_miss = cf.members[0].components[1].metrics.llc_miss_ratio;
    for id in [ConfigId::Cc, ConfigId::C1_5] {
        let r = report_for(id);
        let sim_miss = r.members[0].components[0].metrics.llc_miss_ratio;
        let ana_miss = r.members[0].components[1].metrics.llc_miss_ratio;
        assert!(
            sim_miss > cf_sim_miss || ana_miss > cf_ana_miss,
            "{id}: co-location must elevate a miss ratio (sim {sim_miss} vs {cf_sim_miss}, ana {ana_miss} vs {cf_ana_miss})"
        );
    }
}

#[test]
fn analysis_colocation_misses_more_than_simulation_colocation() {
    // Figure 3 discussion: "co-locations of the analyses (C1.1, C1.4)
    // result in higher cache misses than the co-location of the
    // simulations (C1.2)".
    let ana_pair = report_for(ConfigId::C1_1).members[0].components[1].metrics.llc_miss_ratio;
    let sim_pair = report_for(ConfigId::C1_2).members[0].components[0].metrics.llc_miss_ratio;
    assert!(
        ana_pair > sim_pair,
        "paired analyses ({ana_pair}) must out-miss paired simulations ({sim_pair})"
    );
}

#[test]
fn analyses_are_more_memory_intensive_than_simulations() {
    // §2.3: "analyses are more memory-intensive than the simulations".
    let r = report_for(ConfigId::Cf);
    let sim = &r.members[0].components[0].metrics;
    let ana = &r.members[0].components[1].metrics;
    assert!(ana.memory_intensity > sim.memory_intensity);
    assert!(ana.llc_miss_ratio > sim.llc_miss_ratio);
}

#[test]
fn figure8_final_stage_ranks_c1_5_first_then_c1_4() {
    // §5.2: "the performance of C1.4 is degraded to lower than C1.5,
    // but higher than C1.1, C1.2, C1.3".
    let path = IndicatorPath::uap();
    let f = |id| objective_at(id, &path);
    let c15 = f(ConfigId::C1_5);
    let c14 = f(ConfigId::C1_4);
    assert!(c15 > c14, "C1.5 ({c15}) must beat C1.4 ({c14})");
    for id in [ConfigId::C1_1, ConfigId::C1_2, ConfigId::C1_3] {
        let v = f(id);
        assert!(c14 > v, "C1.4 ({c14}) must beat {id} ({v})");
    }
}

#[test]
fn p_up_cannot_separate_c1_4_from_c1_5_but_p_ua_can() {
    // §5.2: "P^{U,P} is not able to differentiate the performance of
    // C1.4 from C1.5 as these two configurations both use 2 compute
    // nodes" — they only separate (in C1.5's favour) once the
    // allocation stage A is applied.
    let up_14 = objective_at(ConfigId::C1_4, &IndicatorPath::up());
    let up_15 = objective_at(ConfigId::C1_5, &IndicatorPath::up());
    let ua_14 = objective_at(ConfigId::C1_4, &IndicatorPath::ua());
    let ua_15 = objective_at(ConfigId::C1_5, &IndicatorPath::ua());
    // At U,P the two are within ~20% of each other and C1.5 does NOT
    // stand out as the winner.
    let rel_gap = (up_15 - up_14).abs() / up_15.max(up_14);
    assert!(
        up_15 <= up_14 || rel_gap < 0.2,
        "P^UP should fail to elect C1.5 (C1.4 {up_14}, C1.5 {up_15})"
    );
    // With A, C1.5 wins decisively.
    assert!(ua_15 > ua_14 * 1.2, "P^UA must clearly favour C1.5 (C1.4 {ua_14}, C1.5 {ua_15})");
}

#[test]
fn figure9_c2_8_wins_and_node_groups_separate() {
    // §5.2: P^{U,P} splits set two by node count ({C2.6, C2.7, C2.8} on
    // 2 nodes vs the rest on 3); the final stage elects C2.8.
    let up = IndicatorPath::up();
    let two_node: Vec<f64> = [ConfigId::C2_6, ConfigId::C2_7, ConfigId::C2_8]
        .iter()
        .map(|&id| objective_at(id, &up))
        .collect();
    let three_node: Vec<f64> =
        [ConfigId::C2_1, ConfigId::C2_2, ConfigId::C2_3, ConfigId::C2_4, ConfigId::C2_5]
            .iter()
            .map(|&id| objective_at(id, &up))
            .collect();
    let min_two = two_node.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_three = three_node.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        min_two > max_three,
        "2-node group ({min_two}) must separate above the 3-node group ({max_three}) at P^UP"
    );

    let uap = IndicatorPath::uap();
    let c28 = objective_at(ConfigId::C2_8, &uap);
    for id in ConfigId::set_two() {
        if id != ConfigId::C2_8 {
            let v = objective_at(id, &uap);
            assert!(c28 > v, "C2.8 ({c28}) must beat {id} ({v}) at the final stage");
        }
    }
}

#[test]
fn stage_orders_commute_at_the_final_stage() {
    // §5.2: P^{U,P,A} = P^{U,A,P}.
    for id in [ConfigId::C1_3, ConfigId::C2_5] {
        let a = objective_at(id, &IndicatorPath::uap());
        let b = objective_at(id, &IndicatorPath::upa());
        assert!((a - b).abs() < 1e-15, "{id}: {a} vs {b}");
    }
}

#[test]
fn heuristic_selects_eight_analysis_cores() {
    // §3.4: "we decide to assign 8 cores to each analysis".
    let sweep = core_sweep(&CoreSweepConfig::paper()).expect("sweep failed");
    assert_eq!(sweep.recommended_cores, 8);
}

#[test]
fn colocated_best_spread_worst_has_meaningful_magnitude() {
    // §5: the indicator separates co-location quality by a large factor
    // ("up to four orders of magnitude" on the paper's hardware; the
    // deterministic analytical platform yields a smaller but decisive
    // spread — we assert > 2x and document the difference in
    // EXPERIMENTS.md).
    let best = final_objective(ConfigId::C1_5);
    let worst =
        ConfigId::set_one_pairs().into_iter().map(final_objective).fold(f64::INFINITY, f64::min);
    assert!(
        best / worst > 2.0,
        "best/worst spread must be decisive: {best} / {worst} = {}",
        best / worst
    );
}

#[test]
fn full_colocation_maximizes_placement_indicator() {
    // §4.3: CP = 1 iff every coupling is co-located.
    for id in ConfigId::all() {
        let spec = id.build();
        for m in &spec.members {
            let cp = placement_indicator(m);
            let all_colocated = (0..m.k()).all(|j| m.is_colocated(j));
            if all_colocated {
                assert!((cp - 1.0).abs() < 1e-12, "{id}: CP must be 1");
            } else {
                assert!(cp < 1.0, "{id}: CP must be < 1");
            }
        }
    }
}
