//! End-to-end tests of the `ensemble` CLI binary.

use std::process::Command;

fn ensemble() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ensemble"))
}

fn run_ok(args: &[&str]) -> String {
    let out = ensemble().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "`ensemble {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn list_shows_all_configurations() {
    let out = run_ok(&["list"]);
    for label in ["C_f", "C_c", "C1.5", "C2.8"] {
        assert!(out.contains(label), "missing {label} in:\n{out}");
    }
}

#[test]
fn run_paper_config_prints_report_and_objective() {
    let out = run_ok(&["run", "C1.5", "--steps", "6", "--jitter", "0"]);
    assert!(out.contains("C1.5"));
    assert!(out.contains("EM1"));
    assert!(out.contains("F(P^U,A,P)"));
}

#[test]
fn run_accepts_sloppy_labels() {
    let out = run_ok(&["run", "c1_5", "--steps", "4", "--jitter", "0"]);
    assert!(out.contains("C1.5"));
}

#[test]
fn predict_matches_run_shape() {
    let out = run_ok(&["predict", "C2.8"]);
    assert!(out.contains("predicted ensemble makespan"));
    assert!(out.contains("EM2"));
}

#[test]
fn sweep_recommends_eight_cores() {
    let out = run_ok(&["sweep"]);
    assert!(out.contains("recommended analysis cores: 8"), "{out}");
}

#[test]
fn run_from_experiment_json() {
    let dir = std::env::temp_dir().join(format!("ens-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("exp.json");
    let spec = run_ok(&["example-spec"]);
    std::fs::write(&spec_path, &spec).unwrap();
    let out = run_ok(&["run", spec_path.to_str().unwrap(), "--steps", "4", "--jitter", "0"]);
    assert!(out.contains("c1.5-example"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn csv_and_json_outputs_are_written() {
    let dir = std::env::temp_dir().join(format!("ens-cli-out-{}", std::process::id()));
    let json = dir.join("report.json");
    std::fs::create_dir_all(&dir).unwrap();
    run_ok(&[
        "run",
        "Cc",
        "--steps",
        "4",
        "--jitter",
        "0",
        "--csv",
        dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    for file in ["members.csv", "components.csv", "trace.csv", "report.json"] {
        let path = dir.join(file);
        assert!(path.exists(), "{file} missing");
        assert!(std::fs::metadata(&path).unwrap().len() > 10);
    }
    let members = std::fs::read_to_string(dir.join("members.csv")).unwrap();
    assert!(members.starts_with("config,member,sigma_star_s"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gantt_flag_renders_timeline() {
    let out = run_ok(&["run", "Cf", "--steps", "4", "--jitter", "0", "--gantt"]);
    assert!(out.contains("legend: S simulate"));
    assert!(out.contains("Sim1"));
}

#[test]
fn energy_reports_watts() {
    let out = run_ok(&["energy", "Cc", "--steps", "6"]);
    assert!(out.contains("average"));
    assert!(out.contains("steady draw"));
}

#[test]
fn capped_energy_run_is_slower() {
    let free = run_ok(&["run", "C1.5", "--steps", "6", "--jitter", "0"]);
    let capped = run_ok(&["run", "C1.5", "--steps", "6", "--jitter", "0", "--cap", "220"]);
    let makespan = |s: &str| -> f64 {
        s.lines()
            .find(|l| l.contains("ensemble makespan"))
            .and_then(|l| l.split("makespan ").nth(1))
            .and_then(|t| t.trim_end_matches("s\n").trim_end_matches('s').parse().ok())
            .expect("parse makespan")
    };
    assert!(makespan(&capped) > makespan(&free), "cap must slow the run");
}

#[test]
fn diagnose_flags_scattered_c1_1() {
    let out = run_ok(&["diagnose", "C1.1", "--steps", "6", "--jitter", "0"]);
    assert!(out.contains("placement indicator"), "{out}");
    assert!(out.contains("Eq. 4"), "{out}");
}

#[test]
fn diagnose_is_quiet_on_healthy_cf() {
    let out = run_ok(&["diagnose", "Cf", "--steps", "20", "--jitter", "0"]);
    // C_f: one member, no contention — at most info-level findings.
    assert!(!out.contains("CRITICAL"), "{out}");
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = ensemble().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn bad_config_label_fails_cleanly() {
    let out = ensemble().args(["run", "C9.9"]).output().unwrap();
    assert!(!out.status.success());
}
