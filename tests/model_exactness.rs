//! Hand-computed exactness checks: every equation of the paper evaluated
//! against numbers worked out by hand, plus the placement indicators of
//! all 15 configurations derived independently from the tables.

use insitu_ensembles::model::{
    coupling_scenario, idle_times, AnalysisStageTimes, MemberStageTimes,
};
use insitu_ensembles::prelude::*;

/// The Figure 6 scenario: one simulation coupled with two analyses, one
/// slower (idle simulation) and one faster (idle analyzer) than the
/// simulation step.
fn figure6_member() -> MemberStageTimes {
    MemberStageTimes::new(
        10.0, // S*
        1.0,  // W*
        vec![
            AnalysisStageTimes { r: 0.5, a: 14.5 }, // coupling 1: busy 15 > 11
            AnalysisStageTimes { r: 0.5, a: 6.5 },  // coupling 2: busy 7 < 11
        ],
    )
    .unwrap()
}

#[test]
fn eq1_by_hand() {
    // σ̄* = max(S+W, R¹+A¹, R²+A²) = max(11, 15, 7) = 15.
    assert_eq!(sigma_star(&figure6_member()), 15.0);
}

#[test]
fn eq2_by_hand() {
    // 37 steps × 15 s.
    assert_eq!(makespan(&figure6_member(), 37), 555.0);
}

#[test]
fn idle_stages_by_hand() {
    // Iˢ = 15 − 11 = 4; Iᴬ¹ = 0; Iᴬ² = 15 − 7 = 8.
    let idle = idle_times(&figure6_member());
    assert_eq!(idle.sim_idle, 4.0);
    assert_eq!(idle.analysis_idle, vec![0.0, 8.0]);
}

#[test]
fn eq3_by_hand() {
    // E = 1/2 [(1 − (4+0)/15) + (1 − (4+8)/15)]
    //   = 1/2 [11/15 + 3/15] = 14/30 = 7/15.
    let e = efficiency(&figure6_member());
    assert!((e - 7.0 / 15.0).abs() < 1e-12, "E = {e}");
    // Closed form: (S+W)/σ̄ + Σ(R+A)/(Kσ̄) − 1 = 11/15 + 22/30 − 1 = 7/15. ✓
}

#[test]
fn coupling_scenarios_match_figure6() {
    let t = figure6_member();
    assert_eq!(coupling_scenario(&t, 0), CouplingScenario::IdleSimulation);
    assert_eq!(coupling_scenario(&t, 1), CouplingScenario::IdleAnalyzer);
}

#[test]
fn eqs_5_7_8_by_hand() {
    // E = 7/15, c = 32 (16 + 8 + 8), CP = 3/4 (one co-located, one not),
    // M = 3.
    let inputs = MemberInputs { efficiency: 7.0 / 15.0, cores: 32, cp: 0.75, ensemble_nodes: 3 };
    let p_u = insitu_ensembles::model::p_u(&inputs);
    let p_ua = insitu_ensembles::model::p_ua(&inputs);
    let p_uap = insitu_ensembles::model::p_uap(&inputs);
    assert!((p_u - 7.0 / 15.0 / 32.0).abs() < 1e-15);
    assert!((p_ua - p_u * 0.75).abs() < 1e-15);
    assert!((p_uap - p_ua / 3.0).abs() < 1e-15);
}

#[test]
fn eq9_by_hand() {
    // P = {0.4, 0.6}: mean 0.5, population std 0.1 → F = 0.4.
    assert!((objective(&[0.4, 0.6]) - 0.4).abs() < 1e-12);
    // P = {0.5}: F = 0.5 (std of a single value is 0).
    assert_eq!(objective(&[0.5]), 0.5);
}

#[test]
fn eq6_for_every_paper_configuration() {
    // CP per member, derived by hand from Tables 2 and 4:
    // CP = (|s|/K) Σⱼ 1/|s ∪ aʲ| with |s| = 1 everywhere.
    let expected: &[(ConfigId, &[f64])] = &[
        (ConfigId::Cf, &[0.5]),
        (ConfigId::Cc, &[1.0]),
        (ConfigId::C1_1, &[0.5, 0.5]),
        (ConfigId::C1_2, &[0.5, 0.5]),
        (ConfigId::C1_3, &[1.0, 0.5]),
        (ConfigId::C1_4, &[0.5, 0.5]),
        (ConfigId::C1_5, &[1.0, 1.0]),
        // Set two: K = 2, CP = (1/2)(1/|s∪a¹| + 1/|s∪a²|).
        (ConfigId::C2_1, &[0.5, 0.5]), // both analyses remote: (1/2)(1/2+1/2)
        (ConfigId::C2_2, &[0.5, 0.5]),
        (ConfigId::C2_3, &[0.5, 0.5]),
        (ConfigId::C2_4, &[0.75, 0.75]), // each member: (1/2)(1 + 1/2)
        (ConfigId::C2_5, &[0.5, 0.5]),
        (ConfigId::C2_6, &[0.5, 0.5]),
        (ConfigId::C2_7, &[0.75, 0.75]),
        (ConfigId::C2_8, &[1.0, 1.0]),
    ];
    for (id, cps) in expected {
        let spec = id.build();
        assert_eq!(spec.members.len(), cps.len(), "{id}");
        for (m, &want) in spec.members.iter().zip(cps.iter()) {
            let got = placement_indicator(m);
            assert!((got - want).abs() < 1e-12, "{id}: CP = {got}, hand-derived {want}");
        }
    }
}

#[test]
fn member_counting_identities() {
    // §4.1: M ≤ Σ dᵢ with equality iff no member-to-member node sharing.
    for id in ConfigId::all() {
        let spec = id.build();
        let sum_d: usize = spec.members.iter().map(|m| m.num_nodes()).sum();
        assert!(spec.num_nodes() <= sum_d, "{id}");
        // c_i = cs_i + Σ ca_i^j: 16 + 8K.
        for m in &spec.members {
            assert_eq!(m.total_cores(), 16 + 8 * m.k() as u32, "{id}");
        }
    }
    // Sharing cases by hand: C1.1 members each use 2 nodes but share n2:
    // M = 3 < 2 + 2.
    let c11 = ConfigId::C1_1.build();
    assert_eq!(c11.num_nodes(), 3);
    assert_eq!(c11.members.iter().map(|m| m.num_nodes()).sum::<usize>(), 4);
    // C1.5: no sharing, equality.
    let c15 = ConfigId::C1_5.build();
    assert_eq!(c15.num_nodes(), c15.members.iter().map(|m| m.num_nodes()).sum::<usize>());
}

#[test]
fn eq4_boundary_behaviour() {
    // Exactly at R+A = S+W the coupling is balanced and σ̄* = S+W: the
    // boundary case Eq. 4 admits.
    let t = MemberStageTimes::new(10.0, 1.0, vec![AnalysisStageTimes { r: 1.0, a: 10.0 }]).unwrap();
    assert_eq!(coupling_scenario(&t, 0), CouplingScenario::Balanced);
    assert_eq!(sigma_star(&t), 11.0);
    assert!((efficiency(&t) - 1.0).abs() < 1e-12, "balanced coupling has E = 1");
}
