//! Property-based chaos tests: random seeded fault plans over small
//! ensembles never hang the threaded runtime, and survivors are always
//! bit-identical to the fault-free run with the same seeds.
//!
//! Plans here are restricted to failures, delays, and kills — payload
//! corruption changes survivor data by design and is exercised by the
//! unit tests instead.

use insitu_ensembles::model::{ComponentSpec, EnsembleSpec, MemberSpec};
use insitu_ensembles::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const STEPS: u64 = 3;
/// Per-op staging timeout; a run is "hung" when it exceeds a generous
/// multiple of this plus kernel time.
const OP_TIMEOUT: Duration = Duration::from_secs(30);

fn two_member_spec() -> EnsembleSpec {
    EnsembleSpec::new(vec![
        MemberSpec::new(ComponentSpec::simulation(4, 0), vec![ComponentSpec::analysis(2, 0)]),
        MemberSpec::new(ComponentSpec::simulation(4, 1), vec![ComponentSpec::analysis(2, 1)]),
    ])
}

fn config(fault_plan: Option<FaultPlan>, retry: Option<RetryPolicy>) -> ThreadRunConfig {
    ThreadRunConfig {
        spec: two_member_spec(),
        md: MdConfig { atoms_per_side: 4, stride: 5, ..Default::default() },
        analysis_group_size: 16,
        analysis_sigma: 1.2,
        n_steps: STEPS,
        staging_capacity: 1,
        timeout: OP_TIMEOUT,
        kernel: None,
        fault_plan,
        retry,
        restart: None,
    }
}

/// A store rule drawn from failures and small delays only.
fn rule() -> impl Strategy<Value = FaultRule> {
    let op = prop_oneof![Just(FaultOp::Load), Just(FaultOp::Store)];
    (op, 0u32..2, 0u64..STEPS, 0u64..2, 1u64..3, prop::bool::ANY).prop_map(
        |(op, var, step, after, first, delay)| {
            let action = if delay {
                FaultAction::Delay(Duration::from_millis(2))
            } else {
                FaultAction::Fail
            };
            FaultRule {
                variable: Some(var),
                step: Some(step),
                op: Some(op),
                action,
                probability: 1.0,
                after,
                first: Some(first),
            }
        },
    )
}

fn plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1000,
        prop::collection::vec(rule(), 0..3),
        prop::option::of((0usize..2, 0u64..STEPS, prop::bool::ANY)),
    )
        .prop_map(|(seed, rules, kill)| {
            let mut plan = FaultPlan::new(seed);
            for r in rules {
                plan = plan.with_rule(r);
            }
            if let Some((member, step, panic)) = kill {
                plan = plan.with_kill(MemberKill { member, step, panic });
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the plan injects, the run returns well before the hang
    /// horizon, and every member reports a definite outcome.
    #[test]
    fn chaos_never_hangs_and_every_member_has_an_outcome(plan in plan()) {
        let started = Instant::now();
        let exec = run_threaded(&config(Some(plan), Some(RetryPolicy::with_attempts(2))))
            .expect("a chaos run completes instead of erroring out");
        prop_assert!(
            started.elapsed() < OP_TIMEOUT * 4,
            "run exceeded the hang horizon: {:?}",
            started.elapsed()
        );
        prop_assert_eq!(exec.member_outcomes.len(), 2);
    }

    /// Members couple through disjoint variables, so a fault plan can
    /// only ever affect the members it names: survivors' CV series are
    /// bit-identical to the fault-free run with the same seeds.
    #[test]
    fn survivors_match_the_fault_free_run_bit_for_bit(plan in plan()) {
        let baseline = run_threaded(&config(None, None)).expect("fault-free run");
        let exec = run_threaded(&config(Some(plan), Some(RetryPolicy::with_attempts(3))))
            .expect("chaos run");
        for (i, outcome) in exec.member_outcomes.iter().enumerate() {
            if outcome.is_failed() {
                continue;
            }
            let ana = ComponentRef::analysis(i, 1);
            prop_assert_eq!(
                &exec.cv_series[&ana],
                &baseline.cv_series[&ana],
                "member {} survived but its CV series diverged",
                i
            );
        }
    }
}

/// Long-running chaos soak: many random plans, run with
/// `cargo test --test chaos_properties -- --ignored`.
#[test]
#[ignore = "soak test: minutes of repeated chaos runs, exercised by the nightly CI step"]
fn soak_many_seeded_plans_stay_contained() {
    for seed in 0..20u64 {
        let plan = FaultPlan::new(seed)
            .with_rule(FaultRule::fail(FaultOp::Store).with_probability(0.2).first_attempts(2))
            .with_kill(MemberKill {
                member: (seed % 2) as usize,
                step: seed % STEPS,
                panic: seed % 3 == 0,
            });
        let exec = run_threaded(&config(Some(plan), Some(RetryPolicy::with_attempts(3))))
            .unwrap_or_else(|e| panic!("seed {seed}: chaos run errored: {e}"));
        assert_eq!(exec.member_outcomes.len(), 2, "seed {seed}");
        assert!(
            exec.member_outcomes.iter().any(|o| !o.is_failed()),
            "seed {seed}: the unnamed member must survive"
        );
    }
}
