//! Property-based tests (proptest) of the model's invariants.

use insitu_ensembles::model::{
    aggregate, coupling_efficiency, efficiency, efficiency_from_idle, idle_times, makespan,
    objective, placement_indicator, sigma_star, Aggregation, AnalysisStageTimes, ComponentSpec,
    IndicatorPath, MemberInputs, MemberSpec, MemberStageTimes,
};
use insitu_ensembles::model::{extract_steady_state, MemberStepSamples, WarmupPolicy};
use proptest::prelude::*;

fn stage_time() -> impl Strategy<Value = f64> {
    // Realistic stage durations: microseconds to hours.
    (1e-6f64..1e4f64).prop_map(|v| v)
}

fn member_times(max_k: usize) -> impl Strategy<Value = MemberStageTimes> {
    (stage_time(), stage_time(), prop::collection::vec((stage_time(), stage_time()), 1..=max_k))
        .prop_map(|(s, w, ra)| {
            MemberStageTimes::new(
                s,
                w,
                ra.into_iter().map(|(r, a)| AnalysisStageTimes { r, a }).collect(),
            )
            .expect("positive times validate")
        })
}

proptest! {
    #[test]
    fn sigma_star_is_max_of_busy_spans(t in member_times(5)) {
        let sigma = sigma_star(&t);
        prop_assert!(sigma >= t.sim_busy() - 1e-12);
        for a in &t.analyses {
            prop_assert!(sigma >= a.busy() - 1e-12);
        }
        // And it equals one of them.
        let candidates: Vec<f64> =
            std::iter::once(t.sim_busy()).chain(t.analyses.iter().map(|a| a.busy())).collect();
        prop_assert!(candidates.iter().any(|c| (c - sigma).abs() < 1e-12));
    }

    #[test]
    fn efficiency_is_bounded(t in member_times(5)) {
        // Eq. 3 averages per-coupling efficiencies 1 − (Iˢ + Iᴬⁱ)/σ̄,
        // each in (−1, 1]: with K ≥ 2 a fast coupling in a member
        // dominated by another analysis can go negative (both idle spans
        // approach σ̄), so the member-level bound is (−1, 1].
        let e = efficiency(&t);
        prop_assert!(e > -1.0 && e <= 1.0 + 1e-12, "E = {e}");
    }

    #[test]
    fn single_coupling_efficiency_is_positive(t in member_times(1)) {
        // With K = 1 the bottleneck side has zero idle, so
        // Iˢ + Iᴬ ≤ σ̄ and E ∈ (0, 1].
        let e = efficiency(&t);
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12, "E = {e}");
    }

    #[test]
    fn efficiency_closed_form_equals_idle_form(t in member_times(5)) {
        let a = efficiency(&t);
        let b = efficiency_from_idle(&t);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn efficiency_is_mean_of_coupling_efficiencies(t in member_times(4)) {
        let per: f64 = (0..t.k()).map(|j| coupling_efficiency(&t, j)).sum::<f64>() / t.k() as f64;
        prop_assert!((efficiency(&t) - per).abs() < 1e-9);
    }

    #[test]
    fn idle_times_are_nonnegative_and_one_is_zero(t in member_times(5)) {
        let idle = idle_times(&t);
        prop_assert!(idle.sim_idle >= -1e-12);
        for v in &idle.analysis_idle {
            prop_assert!(*v >= -1e-12);
        }
        // The slowest participant has zero idle.
        let min_idle = idle
            .analysis_idle
            .iter()
            .copied()
            .fold(idle.sim_idle, f64::min);
        prop_assert!(min_idle.abs() < 1e-9);
    }

    #[test]
    fn makespan_is_linear_in_steps(t in member_times(3), n in 1u64..1000) {
        let m1 = makespan(&t, n);
        let m2 = makespan(&t, 2 * n);
        prop_assert!((m2 - 2.0 * m1).abs() < 1e-6 * m1.max(1.0));
    }

    #[test]
    fn objective_never_exceeds_mean_and_equals_it_iff_uniform(
        values in prop::collection::vec(1e-9f64..1.0, 1..10)
    ) {
        let f = objective(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!(f <= mean + 1e-12);
        let uniform = values.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15);
        if uniform {
            prop_assert!((f - mean).abs() < 1e-12);
        }
        prop_assert!(aggregate(&values, Aggregation::Min) <= mean + 1e-12);
    }

    #[test]
    fn placement_indicator_bounds_and_colocation(
        sim_node in 0usize..4,
        ana_nodes in prop::collection::vec(0usize..4, 1..4)
    ) {
        let member = MemberSpec::new(
            ComponentSpec::simulation(16, sim_node),
            ana_nodes.iter().map(|&n| ComponentSpec::analysis(8, n)).collect(),
        );
        let cp = placement_indicator(&member);
        prop_assert!(cp > 0.0 && cp <= 1.0 + 1e-12, "CP = {cp}");
        let all_colocated = ana_nodes.iter().all(|&n| n == sim_node);
        if all_colocated {
            prop_assert!((cp - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(cp < 1.0);
        }
    }

    #[test]
    fn indicator_paths_commute(
        e in 1e-6f64..1.0,
        cores in 1u32..128,
        cp in 0.01f64..1.0,
        m in 1usize..16
    ) {
        let inputs = MemberInputs { efficiency: e, cores, cp, ensemble_nodes: m };
        let uap = insitu_ensembles::model::indicator(&inputs, &IndicatorPath::uap());
        let upa = insitu_ensembles::model::indicator(&inputs, &IndicatorPath::upa());
        prop_assert!((uap - upa).abs() <= 1e-15 * uap.abs().max(1.0));
        // Each stage only shrinks the value (CP ≤ 1, M ≥ 1).
        let u = insitu_ensembles::model::indicator(&inputs, &IndicatorPath::u());
        prop_assert!(uap <= u + 1e-15);
    }

    #[test]
    fn steady_state_mean_lies_within_sample_range(
        mut s in prop::collection::vec(0.1f64..10.0, 3..40)
    ) {
        let w = vec![0.01; s.len()];
        let r = vec![0.01; s.len()];
        let a = s.clone();
        let samples = MemberStepSamples { s: s.clone(), w, analyses: vec![(r, a)] };
        let t = extract_steady_state(&samples, WarmupPolicy::FixedSteps(2)).unwrap();
        s.sort_by(f64::total_cmp);
        prop_assert!(t.s >= s[0] - 1e-12 && t.s <= s[s.len() - 1] + 1e-12);
    }

    #[test]
    fn frame_wire_format_roundtrips(
        step in any::<u64>(),
        time in -1e6f64..1e6,
        box_len in 0.1f32..1e4,
        positions in prop::collection::vec(
            (-1e6f32..1e6, -1e6f32..1e6, -1e6f32..1e6),
            0..200
        )
    ) {
        let frame = Frame {
            step,
            time,
            box_len,
            positions: positions.into_iter().map(|(x, y, z)| [x, y, z]).collect(),
        };
        let decoded = Frame::from_bytes(frame.to_bytes()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn f64_codec_roundtrips(values in prop::collection::vec(-1e300f64..1e300, 0..100)) {
        use insitu_ensembles::dtl::{ChunkCodec, F64ArrayCodec};
        let codec = F64ArrayCodec;
        let decoded = codec.decode(codec.encode(&values)).unwrap();
        prop_assert_eq!(decoded, values);
    }

    #[test]
    fn step_protocol_never_allows_overwrite(
        readers in 1u32..4,
        capacity in 1u64..3,
        ops in prop::collection::vec((0u8..2, 0u32..4), 1..60)
    ) {
        use insitu_ensembles::dtl::{ReaderId, StepProtocol};
        let mut p = StepProtocol::new(readers, capacity);
        let mut written = 0u64;
        let mut read_by: Vec<u64> = vec![0; readers as usize];
        for (kind, who) in ops {
            if kind == 0 {
                // Writer tries its next step.
                if p.record_write(written).is_ok() {
                    written += 1;
                }
            } else {
                let r = (who % readers) as usize;
                if p.record_read(ReaderId(r as u32), read_by[r]).is_ok() {
                    read_by[r] += 1;
                }
            }
            // Invariants: in-flight chunks never exceed capacity; no
            // reader is ahead of the writer.
            let oldest = read_by.iter().copied().min().unwrap();
            prop_assert!(written - oldest <= capacity, "overwrite window exceeded");
            for &r in &read_by {
                prop_assert!(r <= written, "reader ahead of writer");
            }
        }
    }
}

use insitu_ensembles::prelude::Frame;
