//! Failure and degradation injection: stragglers, slow analyses,
//! staging backpressure, and shutdown paths.

use insitu_ensembles::model::{CouplingScenario as Scenario, StageKind};
use insitu_ensembles::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn straggler_member_drags_the_objective_down() {
    // Make member 1's simulation 50% slower: Eq. 9's variance penalty
    // must lower F even though member 0 is untouched.
    let id = ConfigId::C1_5;
    let spec = id.build();

    let healthy = EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0);
    let healthy_report = healthy.run().unwrap();

    let mut straggling = EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0);
    let mut slow =
        straggling.config_mut().workloads.workload_for(ComponentRef::simulation(1)).clone();
    slow.instructions_per_step *= 1.5;
    straggling.config_mut().workloads.set_override(ComponentRef::simulation(1), slow);
    let straggling_report = straggling.run().unwrap();

    let f = |report: &insitu_ensembles::measurement::EnsembleReport| {
        let values: Vec<f64> = report
            .members
            .iter()
            .zip(&spec.members)
            .map(|(mr, ms)| {
                indicator(
                    &MemberInputs::from_specs(ms, &spec, mr.efficiency),
                    &IndicatorPath::uap(),
                )
            })
            .collect();
        objective(&values)
    };
    assert!(
        f(&straggling_report) < f(&healthy_report),
        "a straggler must lower F (healthy {}, straggler {})",
        f(&healthy_report),
        f(&straggling_report)
    );
    assert!(straggling_report.ensemble_makespan > healthy_report.ensemble_makespan);
}

#[test]
fn slow_analysis_flips_coupling_to_idle_simulation() {
    let mut runner = EnsembleRunner::paper_config(ConfigId::Cf).small_scale().steps(8).jitter(0.0);
    let mut heavy =
        runner.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
    heavy.instructions_per_step *= 4.0;
    runner.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), heavy);
    let report = runner.run().unwrap();
    assert_eq!(report.members[0].scenarios[0], Scenario::IdleSimulation);
    // The simulation now shows idle stages in the trace.
    let exec = runner.execute().unwrap();
    let sim_idle = exec.trace.total_in_stage(ComponentRef::simulation(0), StageKind::SimIdle);
    assert!(sim_idle > 0.0, "simulation must wait for the slow analysis");
}

#[test]
fn staging_timeout_surfaces_as_error_not_hang() {
    use insitu_ensembles::dtl::{staging, Chunk, VariableSpec};
    let s = Arc::new(staging::dimes());
    let var =
        s.register(VariableSpec { name: "x".into(), expected_readers: 1, home_node: 0 }).unwrap();
    s.put(Chunk::new(var, 0, 0, "raw", bytes::Bytes::from_static(b"a"))).unwrap();
    // No reader consumes; the next put must time out promptly.
    let started = std::time::Instant::now();
    let err = s
        .put_timeout(
            Chunk::new(var, 1, 0, "raw", bytes::Bytes::from_static(b"b")),
            Duration::from_millis(100),
        )
        .unwrap_err();
    assert!(matches!(err, insitu_ensembles::dtl::DtlError::Timeout { .. }));
    assert!(started.elapsed() < Duration::from_secs(5));
}

#[test]
fn close_during_run_unblocks_all_parties() {
    use insitu_ensembles::dtl::{staging, VariableSpec};
    let s = Arc::new(staging::dimes());
    let var =
        s.register(VariableSpec { name: "x".into(), expected_readers: 1, home_node: 0 }).unwrap();
    let reader = {
        let s = Arc::clone(&s);
        std::thread::spawn(move || s.get_timeout(var, 0, ReaderId(0), Duration::from_secs(30)))
    };
    std::thread::sleep(Duration::from_millis(30));
    s.close();
    let res = reader.join().unwrap();
    assert!(matches!(res, Err(insitu_ensembles::dtl::DtlError::Closed)));
}

#[test]
fn protocol_violations_are_loud() {
    use insitu_ensembles::dtl::{staging, Chunk, VariableSpec};
    let s = staging::dimes();
    let var =
        s.register(VariableSpec { name: "x".into(), expected_readers: 1, home_node: 0 }).unwrap();
    // Writing step 3 first is a violation, not a wait.
    let err = s
        .put_timeout(
            Chunk::new(var, 3, 0, "raw", bytes::Bytes::from_static(b"z")),
            Duration::from_millis(50),
        )
        .unwrap_err();
    assert!(matches!(err, insitu_ensembles::dtl::DtlError::ProtocolViolation { .. }));
}

#[test]
fn oversubscribed_placement_is_rejected_before_running() {
    // Three full members on one node: 72 cores on a 32-core node.
    let spec = EnsembleSpec::new(
        (0..3)
            .map(|_| {
                MemberSpec::new(
                    ComponentSpec::simulation(16, 0),
                    vec![ComponentSpec::analysis(8, 0)],
                )
            })
            .collect(),
    );
    let err = EnsembleRunner::custom("overload", spec).small_scale().steps(3).run();
    assert!(err.is_err(), "over-subscription must fail validation");
}

#[test]
fn threaded_runtime_survives_bursty_consumers() {
    // Capacity-1 staging with two consumers of very different speeds:
    // the slow consumer throttles the pipeline but nothing deadlocks.
    let spec = EnsembleSpec::new(vec![MemberSpec::new(
        ComponentSpec::simulation(16, 0),
        vec![ComponentSpec::analysis(8, 0), ComponentSpec::analysis(8, 0)],
    )]);
    let cfg = ThreadRunConfig {
        spec,
        md: MdConfig { atoms_per_side: 4, stride: 5, ..Default::default() },
        analysis_group_size: 16,
        analysis_sigma: 1.0,
        n_steps: 5,
        staging_capacity: 1,
        timeout: Duration::from_secs(60),
        kernel: None,
        fault_plan: None,
        retry: None,
        restart: None,
    };
    let exec = run_threaded(&cfg).unwrap();
    assert_eq!(exec.staging_stats.puts, 5);
    assert_eq!(exec.staging_stats.gets, 10);
}
