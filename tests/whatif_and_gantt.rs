//! Integration coverage for the what-if API over *measured* stage times
//! and the Gantt/CSV surfaces on simulated in-transit runs.

use insitu_ensembles::measurement::{self, GanttOptions};
use insitu_ensembles::model::{factor_to_unblock, what_if, Change};
use insitu_ensembles::prelude::*;

fn bottlenecked_runner() -> EnsembleRunner {
    let mut runner = EnsembleRunner::paper_config(ConfigId::Cf).small_scale().steps(8).jitter(0.0);
    let mut heavy =
        runner.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
    heavy.instructions_per_step *= 2.0;
    runner.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), heavy);
    runner
}

#[test]
fn whatif_on_measured_times_predicts_the_fix() {
    // Measure a bottlenecked member, ask the what-if model for the
    // factor that unblocks it, apply it, and verify with a fresh run
    // whose analysis workload is scaled by that factor.
    let report = bottlenecked_runner().run().unwrap();
    let times = &report.members[0].stage_times;
    assert_eq!(report.members[0].scenarios[0], CouplingScenario::IdleSimulation);

    let factor = factor_to_unblock(times, 0).expect("analysis dominates");
    assert!(factor < 1.0);
    let predicted = what_if(times, &Change::ScaleAnalysis { j: 0, factor });
    assert!(predicted.sigma_after < predicted.sigma_before, "unblocking must shrink σ̄*");

    // Apply roughly the same scaling in a real run: compute time scales
    // ~linearly with instructions, so scale A's share of the workload.
    let mut fixed = bottlenecked_runner();
    let mut w = fixed.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
    w.instructions_per_step *= factor * 0.95; // a little margin
    fixed.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), w);
    let fixed_report = fixed.run().unwrap();
    assert_eq!(
        fixed_report.members[0].scenarios[0],
        CouplingScenario::IdleAnalyzer,
        "the predicted fix must flip the coupling"
    );
    assert!(fixed_report.ensemble_makespan < report.ensemble_makespan);
}

#[test]
fn gantt_shows_the_idle_pattern_changing_with_coupling_mode() {
    let sync_exec = bottlenecked_runner().execute().unwrap();
    let sync_gantt =
        measurement::render_gantt(&sync_exec.trace, &GanttOptions { width: 120, window: None });
    // The stalled simulation shows idle dots between S bursts.
    let sim_row = sync_gantt.lines().find(|l| l.starts_with("Sim1")).unwrap();
    assert!(sim_row.contains('.'), "sync run must show simulation idle:\n{sim_row}");

    let mut async_runner = bottlenecked_runner();
    async_runner.config_mut().coupling = CouplingMode::Asynchronous { queue_capacity: 1 };
    let async_exec = async_runner.execute().unwrap();
    let async_gantt =
        measurement::render_gantt(&async_exec.trace, &GanttOptions { width: 120, window: None });
    let sim_row = async_gantt.lines().find(|l| l.starts_with("Sim1")).unwrap();
    // In-transit: the simulation portion of the timeline has no idle
    // gaps until it finishes (trailing spaces after Done are blank, not
    // dots).
    let busy_part: String = sim_row.trim_end_matches(['|', ' ']).chars().collect();
    assert!(!busy_part.contains('.'), "async run must not stall the simulation:\n{sim_row}");
}

#[test]
fn csv_trace_export_roundtrips_row_counts() {
    let exec = bottlenecked_runner().execute().unwrap();
    let csv = measurement::trace_csv(&exec.trace);
    // Header + one row per interval.
    assert_eq!(csv.lines().count(), 1 + exec.trace.len());
    // Every stage label appears.
    for label in ["S", "W", "R", "A"] {
        assert!(
            csv.lines().any(|l| l.split(',').nth(1) == Some(label)),
            "stage {label} missing from CSV"
        );
    }
}

#[test]
fn lost_frames_flow_into_reports_and_diagnostics() {
    let mut runner = bottlenecked_runner();
    runner.config_mut().coupling = CouplingMode::Asynchronous { queue_capacity: 1 };
    let report = runner.run().unwrap();
    assert!(report.members[0].lost_frames > 0);
    let findings = insitu_ensembles::runtime::diagnose(
        &report,
        &insitu_ensembles::runtime::DiagnosticConfig::default(),
    );
    assert!(
        findings.iter().any(|f| f.kind == insitu_ensembles::runtime::FindingKind::LostFrames),
        "{findings:#?}"
    );
}
