//! Integration tests of the beyond-the-paper extensions at the facade
//! level: in-transit coupling, prediction, energy, Pareto search, Gantt
//! rendering, and trial aggregation.

use insitu_ensembles::measurement::{self, GanttOptions};
use insitu_ensembles::model::StageKind;
use insitu_ensembles::prelude::*;
use insitu_ensembles::scheduling;
use std::collections::HashMap;

fn quick(id: ConfigId) -> EnsembleRunner {
    EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0)
}

#[test]
fn in_transit_simulated_mode_trades_stall_for_loss() {
    let mut runner = quick(ConfigId::Cf);
    // Slow the analysis so synchronous coupling stalls the simulation.
    let mut heavy =
        runner.config_mut().workloads.workload_for(ComponentRef::analysis(0, 1)).clone();
    heavy.instructions_per_step *= 3.0;
    runner.config_mut().workloads.set_override(ComponentRef::analysis(0, 1), heavy);

    let sync_report = runner.run().unwrap();
    assert_eq!(sync_report.members[0].lost_frames, 0);

    let mut async_runner = runner.clone();
    async_runner.config_mut().coupling = CouplingMode::Asynchronous { queue_capacity: 1 };
    let exec = async_runner.execute().unwrap();
    assert!(exec.lost_frames[0] > 0, "slow analysis under async must lose frames");
    // The simulation side finishes sooner without the protocol stall.
    let sim = ComponentRef::simulation(0);
    let sync_exec = runner.execute().unwrap();
    let sync_end = sync_exec.trace.component_span(sim).unwrap().1;
    let async_end = exec.trace.component_span(sim).unwrap().1;
    assert!(async_end < sync_end, "async sim end {async_end} vs sync {sync_end}");
}

#[test]
fn predictor_agrees_with_runner_at_paper_scale() {
    for id in [ConfigId::C1_2, ConfigId::C2_6] {
        let runner = EnsembleRunner::paper_config(id).steps(37).jitter(0.0);
        let report = runner.run().unwrap();
        let cfg = insitu_ensembles::runtime::SimRunConfig {
            n_steps: 37,
            jitter: 0.0,
            ..insitu_ensembles::runtime::SimRunConfig::paper(id.build())
        };
        let prediction = predict(&cfg).unwrap();
        for (p, m) in prediction.members.iter().zip(&report.members) {
            let rel = (p.sigma_star - m.sigma_star).abs() / m.sigma_star;
            assert!(rel < 1e-6, "{id}: {rel}");
        }
    }
}

#[test]
fn energy_accounting_over_a_full_run() {
    let runner = quick(ConfigId::C1_5);
    let exec = runner.execute().unwrap();
    let cores: HashMap<_, _> =
        exec.allocations.iter().map(|(c, a)| (*c, a.total_cores())).collect();
    let nodes: HashMap<_, _> = exec.allocations.iter().map(|(c, a)| (*c, a.node)).collect();
    let energy = measurement::run_energy(&exec.trace, &PowerModel::default(), &cores, &nodes);
    assert!(energy.total_joules > 0.0);
    assert_eq!(energy.per_node_idle.len(), 2, "C1.5 runs on two nodes");
    // Simulations burn more than analyses (twice the cores, longer busy).
    let sim_j = energy.per_component[&ComponentRef::simulation(0)];
    let ana_j = energy.per_component[&ComponentRef::analysis(0, 1)];
    assert!(sim_j > ana_j);
    assert!(energy.average_watts() > 2.0 * PowerModel::default().idle_watts);
}

#[test]
fn power_cap_inflates_makespan_monotonically() {
    let free = quick(ConfigId::C1_5).run().unwrap().ensemble_makespan;
    let mut prev = free;
    for cap in [300.0, 260.0, 220.0] {
        let mut r = quick(ConfigId::C1_5);
        r.config_mut().power_cap_watts = Some(cap);
        let capped = r.run().unwrap().ensemble_makespan;
        assert!(capped >= prev - 1e-9, "tighter cap {cap} W must not speed up");
        prev = capped;
    }
    assert!(prev > free, "the tightest cap must visibly slow the run");
}

#[test]
fn gantt_renders_real_runs() {
    let exec = quick(ConfigId::Cc).execute().unwrap();
    let g = measurement::render_gantt(&exec.trace, &GanttOptions::default());
    assert!(g.contains("Sim1"));
    assert!(g.contains("Ana1.1"));
    // The simulation row should be busy (mostly S glyphs).
    let row = g.lines().find(|l| l.starts_with("Sim1")).unwrap();
    assert!(row.matches('S').count() > 40, "{row}");
}

#[test]
fn pareto_front_exposes_the_node_makespan_tradeoff() {
    let mut base = insitu_ensembles::runtime::SimRunConfig::paper(ConfigId::Cf.build());
    base.workloads = WorkloadMap::small_defaults();
    base.n_steps = 8;
    let points = scheduling::pareto_front(
        &base,
        &EnsembleShape::uniform(2, 16, 1, 8),
        NodeBudget { max_nodes: 4, cores_per_node: 32 },
    )
    .unwrap();
    let frontier = scheduling::frontier_only(&points);
    assert!(!frontier.is_empty());
    // The 2-node full co-location is on the frontier.
    assert!(frontier.iter().any(|p| p.nodes_used == 2));
}

#[test]
fn csv_exports_cover_a_report() {
    let report = quick(ConfigId::C1_3).run().unwrap();
    let members = measurement::members_csv(&[&report]);
    assert_eq!(members.lines().count(), 1 + 2, "header + one row per member");
    let components = measurement::components_csv(&[&report]);
    assert_eq!(components.lines().count(), 1 + 4, "header + 2 members × 2 components");
    assert!(components.contains("Ana2.1"));
}

#[test]
fn trial_summaries_aggregate_runner_output() {
    let reports = quick(ConfigId::C1_1).jitter(0.04).run_trials(4).unwrap();
    let refs: Vec<insitu_ensembles::measurement::EnsembleReport> = reports;
    let summary = measurement::summarize_trials(&refs);
    assert_eq!(summary.ensemble_makespan.trials(), 4);
    assert!(summary.ensemble_makespan.std_dev() > 0.0, "jitter must show across trials");
}

#[test]
fn experiment_spec_documents_itself() {
    // The shipped example spec runs and produces the documented layout.
    let spec = insitu_ensembles::runtime::ExperimentSpec::example();
    let cfg = spec.to_run_config().unwrap();
    assert_eq!(cfg.spec.num_nodes(), 2);
    let exec =
        run_simulated(&insitu_ensembles::runtime::SimRunConfig { n_steps: 4, jitter: 0.0, ..cfg })
            .unwrap();
    assert_eq!(exec.trace.stage_series(ComponentRef::simulation(0), StageKind::Write).len(), 4);
}
