//! End-to-end chaos acceptance: a seeded fault plan kills one member
//! mid-run and makes the staging store flaky, and the run still
//! completes — survivors unaffected bit-for-bit, the failure reported
//! with step and cause, and the retry/fault counters visible both in
//! the staging stats and in the built report.

use insitu_ensembles::model::StageKind;
use insitu_ensembles::prelude::*;
use insitu_ensembles::runtime::build_threaded_report;
use std::time::Duration;

const STEPS: u64 = 4;

fn config(fault_plan: Option<FaultPlan>, retry: Option<RetryPolicy>) -> ThreadRunConfig {
    ThreadRunConfig {
        spec: ConfigId::C1_5.build(), // two members, disjoint variables
        md: MdConfig { atoms_per_side: 5, stride: 10, ..Default::default() },
        analysis_group_size: 32,
        analysis_sigma: 1.2,
        n_steps: STEPS,
        staging_capacity: 1,
        timeout: Duration::from_secs(120),
        kernel: None,
        fault_plan,
        retry,
        restart: None,
    }
}

#[test]
fn seeded_chaos_run_contains_the_blast_radius() {
    // Baseline: the same ensemble, fault-free.
    let baseline = run_threaded(&config(None, None)).expect("fault-free run");
    assert!(baseline.member_outcomes.iter().all(|o| !o.is_failed()));

    // Chaos: kill member 1's simulation at step 1, and fail every
    // store's first attempt (cleared by the retry policy).
    let plan = FaultPlan::new(42)
        .with_kill(MemberKill { member: 1, step: 1, panic: false })
        .with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1));
    let chaos = run_threaded(&config(Some(plan), Some(RetryPolicy::with_attempts(3))))
        .expect("chaos run must complete, not tear down");

    // The failed member reports where and why it died.
    match &chaos.member_outcomes[1] {
        MemberOutcome::Failed { step, cause } => {
            assert_eq!(*step, 1, "the kill fired at step 1");
            assert!(cause.contains("injected kill"), "root cause must name the kill: {cause}");
        }
        other => panic!("member 1 must report Failed, got {other:?}"),
    }
    assert_eq!(chaos.failed_members(), vec![1]);

    // The survivor is bit-identical to its fault-free self: same CV
    // series (the MD is seeded per member), same trace structure.
    let survivor = ComponentRef::analysis(0, 1);
    assert_eq!(
        chaos.cv_series[&survivor], baseline.cv_series[&survivor],
        "survivor CV series must be unaffected by the other member's death"
    );
    for kind in [StageKind::Simulate, StageKind::Write, StageKind::Read, StageKind::Analyze] {
        let sim = ComponentRef::simulation(0);
        let c = if matches!(kind, StageKind::Simulate | StageKind::Write) { sim } else { survivor };
        assert_eq!(
            chaos.trace.stage_series(c, kind).len(),
            baseline.trace.stage_series(c, kind).len(),
            "survivor {c} must record the same number of {kind:?} stages"
        );
    }
    // The victim produced nothing past the kill step.
    assert!(!chaos.cv_series.contains_key(&ComponentRef::analysis(1, 1)));

    // Retry and fault counters are visible in the staging stats…
    assert!(chaos.staging_stats.retries > 0, "every first store attempt was retried");
    assert_eq!(chaos.staging_stats.giveups, 0, "3 attempts clear a 1-attempt fault window");
    assert!(chaos.fault_stats.injected_failures > 0);

    // …and ride onto the built report, which carries only the survivor.
    let spec = ConfigId::C1_5.build();
    let report =
        build_threaded_report("C1.5-chaos", &spec, &chaos, STEPS, WarmupPolicy::FixedSteps(1))
            .expect("report over the surviving member");
    assert_eq!(report.members.len(), 1, "failed members are omitted from the report rows");
    assert_eq!(report.members[0].member, 0);
    assert_eq!(report.staging_retries, chaos.staging_stats.retries);
    assert!(report.staging_retries > 0);
    assert_eq!(report.faults_injected, chaos.fault_stats.total_injected());
}

#[test]
fn chaos_run_without_retry_gives_up_and_fails_the_member() {
    // Same transient fault but no retry policy: the writer surfaces the
    // injected error, only that member dies, and the giveup is counted.
    let plan = FaultPlan::new(7)
        .with_rule(FaultRule::fail(FaultOp::Store).on_variable(0).first_attempts(1));
    let exec = run_threaded(&config(Some(plan), None)).expect("run completes");
    assert!(exec.member_outcomes[0].is_failed());
    assert!(!exec.member_outcomes[1].is_failed(), "variable 1 was never touched");
    assert_eq!(exec.staging_stats.retries, 0);
}

#[test]
fn restart_policy_recovers_the_killed_member_end_to_end() {
    let plan = FaultPlan::new(11).with_kill(MemberKill { member: 0, step: 1, panic: false });
    let mut cfg = config(Some(plan), None);
    cfg.restart = Some(RestartPolicy { max_restarts: 1 });
    let exec = run_threaded(&cfg).expect("run completes");
    assert!(
        matches!(exec.member_outcomes[0], MemberOutcome::Restarted { attempts: 1 }),
        "got {:?}",
        exec.member_outcomes[0]
    );
    // The restarted member's CV series matches a fault-free run: the
    // rerun starts from step 0 with the same seed.
    let baseline = run_threaded(&config(None, None)).expect("fault-free run");
    let ana = ComponentRef::analysis(0, 1);
    assert_eq!(exec.cv_series[&ana], baseline.cv_series[&ana]);
}
