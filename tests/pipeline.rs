//! End-to-end pipeline tests: configure → run simulated → trace →
//! steady state → metrics → indicators, for every paper configuration.

use insitu_ensembles::measurement::ensemble_makespan;
use insitu_ensembles::model::StageKind;
use insitu_ensembles::prelude::*;

fn quick(id: ConfigId) -> EnsembleRunner {
    EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0)
}

#[test]
fn every_paper_configuration_runs_clean() {
    for id in ConfigId::all() {
        let spec = id.build();
        let report = quick(id).run().unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(report.n, spec.n(), "{id}");
        assert_eq!(report.m, spec.num_nodes(), "{id}");
        assert_eq!(report.members.len(), spec.n(), "{id}");
        for (mr, ms) in report.members.iter().zip(&spec.members) {
            assert!(mr.sigma_star > 0.0, "{id}");
            assert!(
                mr.efficiency > 0.0 && mr.efficiency <= 1.0 + 1e-12,
                "{id}: E={}",
                mr.efficiency
            );
            assert!((mr.cp - placement_indicator(ms)).abs() < 1e-12, "{id}");
            assert_eq!(mr.components.len(), 1 + ms.k(), "{id}");
            assert_eq!(mr.scenarios.len(), ms.k(), "{id}");
            for c in &mr.components {
                assert!(c.metrics.is_consistent(), "{id}: {:?}", c.metrics);
                assert!(c.counters.is_consistent(), "{id}");
            }
        }
        assert!(report.ensemble_makespan > 0.0, "{id}");
    }
}

#[test]
fn trace_contains_full_stage_structure() {
    let exec = quick(ConfigId::C2_4).execute().unwrap();
    for member in 0..2usize {
        let sim = ComponentRef::simulation(member);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Simulate).len(), 8);
        assert_eq!(exec.trace.stage_series(sim, StageKind::Write).len(), 8);
        for j in 1..=2usize {
            let ana = ComponentRef::analysis(member, j);
            assert_eq!(exec.trace.stage_series(ana, StageKind::Read).len(), 8);
            assert_eq!(exec.trace.stage_series(ana, StageKind::Analyze).len(), 8);
        }
    }
}

#[test]
fn ensemble_makespan_is_max_of_member_makespans() {
    let report = quick(ConfigId::C1_3).run().unwrap();
    let max_member = report.members.iter().map(|m| m.makespan).fold(f64::NEG_INFINITY, f64::max);
    assert!((report.ensemble_makespan - max_member).abs() < 1e-9);
}

#[test]
fn eq1_matches_trace_derived_sigma() {
    // σ̄* from the report must equal Eq. 1 applied to the extracted
    // stage times.
    let report = quick(ConfigId::C2_8).run().unwrap();
    for m in &report.members {
        assert!((m.sigma_star - sigma_star(&m.stage_times)).abs() < 1e-12);
        assert!((m.efficiency - efficiency(&m.stage_times)).abs() < 1e-12);
    }
}

#[test]
fn makespan_helper_agrees_with_report() {
    let exec = quick(ConfigId::C1_5).execute().unwrap();
    let report = quick(ConfigId::C1_5).run().unwrap();
    let from_trace = ensemble_makespan(&exec.trace, &[1, 1]).unwrap();
    assert!((from_trace - report.ensemble_makespan).abs() < 1e-9);
}

#[test]
fn allocations_respect_node_capacity() {
    for id in [ConfigId::C2_6, ConfigId::C2_7, ConfigId::C2_8] {
        let exec = quick(id).execute().unwrap();
        let mut per_node: std::collections::HashMap<usize, u32> = Default::default();
        for alloc in exec.allocations.values() {
            *per_node.entry(alloc.node).or_default() += alloc.total_cores();
        }
        for (node, cores) in per_node {
            assert!(cores <= 32, "{id}: node {node} got {cores} cores");
        }
    }
}

#[test]
fn custom_ensembles_run_too() {
    // Three members with heterogeneous analysis counts.
    let spec = EnsembleSpec::new(vec![
        MemberSpec::new(ComponentSpec::simulation(16, 0), vec![ComponentSpec::analysis(8, 0)]),
        MemberSpec::new(
            ComponentSpec::simulation(16, 1),
            vec![ComponentSpec::analysis(8, 1), ComponentSpec::analysis(8, 1)],
        ),
        MemberSpec::new(ComponentSpec::simulation(16, 2), vec![ComponentSpec::analysis(4, 3)]),
    ]);
    let report =
        EnsembleRunner::custom("hetero", spec.clone()).small_scale().steps(5).run().unwrap();
    assert_eq!(report.n, 3);
    assert_eq!(report.m, 4);
    assert_eq!(report.members[1].components.len(), 3);
    assert!(report.members[1].cp > report.members[2].cp, "co-located member scores higher CP");
}

#[test]
fn seeds_reproduce_exactly() {
    let a = quick(ConfigId::C1_2).jitter(0.03).seed(7).run().unwrap();
    let b = quick(ConfigId::C1_2).jitter(0.03).seed(7).run().unwrap();
    assert_eq!(a.ensemble_makespan, b.ensemble_makespan);
    for (ma, mb) in a.members.iter().zip(&b.members) {
        assert_eq!(ma.sigma_star, mb.sigma_star);
        assert_eq!(ma.efficiency, mb.efficiency);
    }
}

#[test]
fn report_serializes_to_json() {
    let report = quick(ConfigId::Cc).run().unwrap();
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"config\":\"C_c\""));
    let back: insitu_ensembles::measurement::EnsembleReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ensemble_makespan, report.ensemble_makespan);
}
