//! Variable registry: names the data streams flowing through the DTL.
//!
//! Each coupling (simulation → analyses) communicates through a named
//! *variable* (e.g. `"trajectory/member0"`). The registry assigns dense
//! ids, records the expected number of readers (the K analyses of the
//! member), and the home node of the staged data (DIMES keeps chunks in
//! the producer's node memory).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{DtlError, DtlResult};

/// Dense identifier of a registered variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VariableId(pub u32);

/// Static description of one variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableSpec {
    /// Unique name.
    pub name: String,
    /// Number of readers that must consume each chunk before the writer
    /// may stage the next one (the member's K analyses).
    pub expected_readers: u32,
    /// Node index holding the staged data (the producer's node under the
    /// DIMES-style in-memory DTL).
    pub home_node: usize,
}

/// Name → id mapping plus specs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VariableRegistry {
    by_name: HashMap<String, VariableId>,
    specs: Vec<VariableSpec>,
}

impl VariableRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a variable; re-registering the same name returns the
    /// existing id only if the spec matches, otherwise errors.
    pub fn register(&mut self, spec: VariableSpec) -> DtlResult<VariableId> {
        assert!(spec.expected_readers > 0, "a variable needs at least one reader");
        if let Some(&id) = self.by_name.get(&spec.name) {
            if self.specs[id.0 as usize] == spec {
                return Ok(id);
            }
            return Err(DtlError::ProtocolViolation {
                detail: format!("variable '{}' re-registered with a different spec", spec.name),
            });
        }
        let id = VariableId(self.specs.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        self.specs.push(spec);
        Ok(id)
    }

    /// Looks up a variable by name.
    pub fn lookup(&self, name: &str) -> DtlResult<VariableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DtlError::UnknownVariable { name: name.to_string() })
    }

    /// The spec of a registered id.
    pub fn spec(&self, id: VariableId) -> &VariableSpec {
        &self.specs[id.0 as usize]
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates `(id, spec)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (VariableId, &VariableSpec)> {
        self.specs.iter().enumerate().map(|(i, s)| (VariableId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> VariableSpec {
        VariableSpec { name: name.into(), expected_readers: 2, home_node: 0 }
    }

    #[test]
    fn register_and_lookup() {
        let mut r = VariableRegistry::new();
        let id = r.register(spec("traj/0")).unwrap();
        assert_eq!(r.lookup("traj/0").unwrap(), id);
        assert_eq!(r.spec(id).expected_readers, 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn idempotent_reregistration() {
        let mut r = VariableRegistry::new();
        let a = r.register(spec("traj/0")).unwrap();
        let b = r.register(spec("traj/0")).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn conflicting_reregistration_fails() {
        let mut r = VariableRegistry::new();
        r.register(spec("traj/0")).unwrap();
        let mut other = spec("traj/0");
        other.expected_readers = 5;
        assert!(matches!(r.register(other), Err(DtlError::ProtocolViolation { .. })));
    }

    #[test]
    fn unknown_lookup_fails() {
        let r = VariableRegistry::new();
        assert!(matches!(r.lookup("nope"), Err(DtlError::UnknownVariable { .. })));
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut r = VariableRegistry::new();
        r.register(spec("a")).unwrap();
        r.register(spec("b")).unwrap();
        let names: Vec<_> = r.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
