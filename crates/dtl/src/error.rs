//! Error types of the data transport layer.

use std::fmt;

/// Errors surfaced by DTL operations.
#[derive(Debug)]
pub enum DtlError {
    /// The staging area was closed (producer finished or run aborted)
    /// and no further chunks will arrive.
    Closed,
    /// One variable was hard-closed (its member failed and was not
    /// restarted) while the rest of the staging area keeps running.
    /// Peers blocked on the variable unblock with this error.
    VariableClosed {
        /// The closed variable.
        variable: String,
    },
    /// A blocking operation exceeded its timeout.
    Timeout {
        /// The operation that timed out.
        operation: &'static str,
        /// Variable involved.
        variable: String,
        /// Step involved.
        step: u64,
    },
    /// The synchronous protocol was violated (e.g. a writer tried to
    /// overwrite a chunk that has unread consumers, outside of the
    /// blocking API, or steps went backwards).
    ProtocolViolation {
        /// Description of the violation.
        detail: String,
    },
    /// A chunk failed to decode into the requested type.
    Codec {
        /// Description from the codec.
        detail: String,
    },
    /// An unknown variable was referenced.
    UnknownVariable {
        /// The offending name.
        name: String,
    },
    /// Backing-store I/O failed (file-system tier).
    Io(std::io::Error),
}

impl fmt::Display for DtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtlError::Closed => write!(f, "staging area closed"),
            DtlError::VariableClosed { variable } => {
                write!(f, "variable '{variable}' closed (member failed)")
            }
            DtlError::Timeout { operation, variable, step } => {
                write!(f, "{operation} timed out (variable '{variable}', step {step})")
            }
            DtlError::ProtocolViolation { detail } => write!(f, "protocol violation: {detail}"),
            DtlError::Codec { detail } => write!(f, "codec error: {detail}"),
            DtlError::UnknownVariable { name } => write!(f, "unknown variable '{name}'"),
            DtlError::Io(e) => write!(f, "staging I/O error: {e}"),
        }
    }
}

impl std::error::Error for DtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DtlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DtlError {
    fn from(e: std::io::Error) -> Self {
        DtlError::Io(e)
    }
}

/// Convenience alias.
pub type DtlResult<T> = Result<T, DtlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(DtlError::Closed.to_string(), "staging area closed");
        let t = DtlError::Timeout { operation: "get", variable: "traj".into(), step: 3 };
        assert!(t.to_string().contains("traj"));
        assert!(t.to_string().contains('3'));
        let io: DtlError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
    }
}
