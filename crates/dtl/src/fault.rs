//! Deterministic fault injection for the DTL.
//!
//! A [`FaultPlan`] is a seeded, declarative description of the faults a
//! chaos run should experience: store-operation failures, added
//! latency, payload corruption — keyed by `(variable, step, op)` — plus
//! a kill schedule for whole ensemble members (interpreted by the
//! threaded runtime). [`FaultInjector`] applies the store-level part of
//! a plan by wrapping any [`ChunkStore`], so it composes with all three
//! staging tiers (memory, burst buffer, PFS).
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of
//! `(plan seed, rule index, variable, step, op, attempt)` via a
//! splitmix64 hash — no global RNG, no wall clock. Two runs with the
//! same plan and the same per-key operation sequence inject exactly the
//! same faults regardless of thread interleaving across variables.
//! (Attempt counters are per `(rule, variable, step, op)` key; with
//! several readers racing on one variable the attempt *order* within
//! that key follows the interleaving — use exact keys or
//! probability-only rules when that matters.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::chunk::ChunkId;
use crate::error::{DtlError, DtlResult};
use crate::staging::store::ChunkStore;

/// Which store operation a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Payload retrieval (the read path).
    Load,
    /// Payload persistence (the write path).
    Store,
}

impl FaultOp {
    fn tag(self) -> &'static str {
        match self {
            FaultOp::Load => "load",
            FaultOp::Store => "store",
        }
    }
}

/// What a matching rule does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The operation fails with an injected I/O error (transient from
    /// the caller's point of view: retrying may succeed).
    Fail,
    /// The operation succeeds after the given extra latency.
    Delay(Duration),
    /// The operation succeeds but one payload byte is flipped
    /// (deterministically, keyed by the chunk identity).
    Corrupt,
}

/// One injection rule. `None` selectors match anything; the attempt
/// window (`after`/`first`) and `probability` bound how often the rule
/// fires per `(variable, step, op)` key.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Variable selector (dense `VariableId` index), `None` = any.
    pub variable: Option<u32>,
    /// Step selector, `None` = any.
    pub step: Option<u64>,
    /// Operation selector, `None` = both.
    pub op: Option<FaultOp>,
    /// What to do when the rule fires.
    pub action: FaultAction,
    /// Probability of firing per matching attempt (decided by a seeded
    /// hash, so it is reproducible). 1.0 = always.
    pub probability: f64,
    /// Skip this many matching attempts per key before firing.
    pub after: u64,
    /// Fire for at most this many attempts per key (after `after`);
    /// `None` = unbounded. `first: Some(n)` models a transient fault
    /// that a retry eventually clears.
    pub first: Option<u64>,
}

impl FaultRule {
    /// A rule with the given action that matches every operation.
    pub fn new(action: FaultAction) -> Self {
        FaultRule {
            variable: None,
            step: None,
            op: None,
            action,
            probability: 1.0,
            after: 0,
            first: None,
        }
    }

    /// Shorthand: always-fail rule for `op`.
    pub fn fail(op: FaultOp) -> Self {
        FaultRule { op: Some(op), ..FaultRule::new(FaultAction::Fail) }
    }

    /// Restricts the rule to one variable (dense id index).
    pub fn on_variable(mut self, var: u32) -> Self {
        self.variable = Some(var);
        self
    }

    /// Restricts the rule to one step.
    pub fn at_step(mut self, step: u64) -> Self {
        self.step = Some(step);
        self
    }

    /// Fires with the given probability per attempt.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Skips the first `n` matching attempts per key.
    pub fn after_attempts(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fires for at most `n` attempts per key.
    pub fn first_attempts(mut self, n: u64) -> Self {
        self.first = Some(n);
        self
    }

    fn matches(&self, id: ChunkId, op: FaultOp) -> bool {
        self.variable.is_none_or(|v| v == id.variable.0)
            && self.step.is_none_or(|s| s == id.step)
            && self.op.is_none_or(|o| o == op)
    }
}

/// Kills one ensemble member at a step: its simulation worker errors
/// (or panics) before staging that step's frame. Interpreted by the
/// threaded runtime's supervisor, not by the store layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberKill {
    /// Member index.
    pub member: usize,
    /// Step at which the member dies.
    pub step: u64,
    /// Die by panic instead of by returned error (exercises the panic
    /// supervision path).
    pub panic: bool,
}

/// A seeded, deterministic fault plan: store-level rules plus a member
/// kill schedule. The empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Store-operation rules, first match wins.
    pub rules: Vec<FaultRule>,
    /// Member kill schedule.
    pub kills: Vec<MemberKill>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Adds a store-operation rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a member kill.
    pub fn with_kill(mut self, kill: MemberKill) -> Self {
        self.kills.push(kill);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.kills.is_empty()
    }

    /// The kill scheduled for `member` at `step`, if any.
    pub fn kill_for(&self, member: usize, step: u64) -> Option<MemberKill> {
        self.kills.iter().copied().find(|k| k.member == member && k.step == step)
    }

    /// Parses the CLI spec format: `;`-separated clauses.
    ///
    /// ```text
    /// seed=42;kill=1@2;panic=0@1
    /// fail=load:var=0:step=2:first=1
    /// delay=any:ms=5:p=0.25;corrupt=store:var=1
    /// ```
    ///
    /// Clauses: `seed=N`, `kill=M@S`, `panic=M@S`, and
    /// `ACTION=OP[:var=V][:step=S][:p=F][:after=N][:first=N][:ms=D]`
    /// with `ACTION` ∈ {`fail`, `delay`, `corrupt`} and `OP` ∈
    /// {`load`, `store`, `any`} (`ms` is required for `delay`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (head, rest) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause '{clause}' is not KEY=VALUE"))?;
            match head {
                "seed" => {
                    plan.seed = rest.parse().map_err(|e| format!("seed: {e}"))?;
                }
                "kill" | "panic" => {
                    let (m, s) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("{head}: expected MEMBER@STEP, got '{rest}'"))?;
                    plan.kills.push(MemberKill {
                        member: m.parse().map_err(|e| format!("{head} member: {e}"))?,
                        step: s.parse().map_err(|e| format!("{head} step: {e}"))?,
                        panic: head == "panic",
                    });
                }
                "fail" | "delay" | "corrupt" => {
                    plan.rules.push(parse_rule(head, rest)?);
                }
                other => return Err(format!("unknown clause '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec format `parse` accepts.
    pub fn to_spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        for k in &self.kills {
            parts.push(format!(
                "{}={}@{}",
                if k.panic { "panic" } else { "kill" },
                k.member,
                k.step
            ));
        }
        for r in &self.rules {
            let (action, ms) = match r.action {
                FaultAction::Fail => ("fail", None),
                FaultAction::Delay(d) => ("delay", Some(d.as_millis())),
                FaultAction::Corrupt => ("corrupt", None),
            };
            let mut s = format!("{action}={}", r.op.map_or("any", FaultOp::tag));
            if let Some(v) = r.variable {
                s.push_str(&format!(":var={v}"));
            }
            if let Some(step) = r.step {
                s.push_str(&format!(":step={step}"));
            }
            if let Some(ms) = ms {
                s.push_str(&format!(":ms={ms}"));
            }
            if r.probability < 1.0 {
                s.push_str(&format!(":p={}", r.probability));
            }
            if r.after > 0 {
                s.push_str(&format!(":after={}", r.after));
            }
            if let Some(first) = r.first {
                s.push_str(&format!(":first={first}"));
            }
            parts.push(s);
        }
        parts.join(";")
    }
}

fn parse_rule(action: &str, rest: &str) -> Result<FaultRule, String> {
    let mut fields = rest.split(':');
    let op = match fields.next().unwrap_or("") {
        "load" => Some(FaultOp::Load),
        "store" => Some(FaultOp::Store),
        "any" => None,
        other => return Err(format!("{action}: unknown op '{other}' (load|store|any)")),
    };
    let mut rule = FaultRule {
        op,
        ..FaultRule::new(match action {
            "fail" => FaultAction::Fail,
            "corrupt" => FaultAction::Corrupt,
            // Delay duration is filled from the `ms` field below.
            _ => FaultAction::Delay(Duration::ZERO),
        })
    };
    let mut saw_ms = false;
    for field in fields {
        let (k, v) =
            field.split_once('=').ok_or_else(|| format!("{action}: field '{field}' is not K=V"))?;
        match k {
            "var" => rule.variable = Some(v.parse().map_err(|e| format!("{action} var: {e}"))?),
            "step" => rule.step = Some(v.parse().map_err(|e| format!("{action} step: {e}"))?),
            "p" => {
                rule.probability = v.parse().map_err(|e| format!("{action} p: {e}"))?;
                if !(0.0..=1.0).contains(&rule.probability) {
                    return Err(format!("{action} p: {v} outside [0, 1]"));
                }
            }
            "after" => rule.after = v.parse().map_err(|e| format!("{action} after: {e}"))?,
            "first" => {
                rule.first = Some(v.parse().map_err(|e| format!("{action} first: {e}"))?);
            }
            "ms" => {
                let ms: u64 = v.parse().map_err(|e| format!("{action} ms: {e}"))?;
                rule.action = FaultAction::Delay(Duration::from_millis(ms));
                saw_ms = true;
            }
            other => return Err(format!("{action}: unknown field '{other}'")),
        }
    }
    if action == "delay" && !saw_ms {
        return Err("delay: missing ms=N".into());
    }
    if action != "delay" && saw_ms {
        return Err(format!("{action}: ms only applies to delay"));
    }
    Ok(rule)
}

/// Counters of what an injector saw and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Load attempts observed.
    pub loads: u64,
    /// Store attempts observed.
    pub stores: u64,
    /// Failures injected.
    pub injected_failures: u64,
    /// Delays injected.
    pub injected_delays: u64,
    /// Payloads corrupted.
    pub injected_corruptions: u64,
}

impl FaultStats {
    /// Total faults of any kind injected.
    pub fn total_injected(&self) -> u64 {
        self.injected_failures + self.injected_delays + self.injected_corruptions
    }
}

/// SplitMix64: a tiny, high-quality mixing function — enough for fault
/// rolls, and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x51_7c_c1_b7_27_22_0a_95u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// Uniform in `[0, 1)` from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Wraps a [`ChunkStore`] and applies the store-level rules of a
/// [`FaultPlan`]. The handle carries the chunk identity so load-side
/// faults can key on `(variable, step)` even though
/// [`ChunkStore::load`] only sees a handle.
pub struct FaultInjector<B: ChunkStore> {
    inner: B,
    plan: FaultPlan,
    /// Attempt counters per `(rule, variable, step, op)`.
    attempts: Mutex<HashMap<(usize, u32, u64, FaultOp), u64>>,
    loads: AtomicU64,
    stores: AtomicU64,
    failures: AtomicU64,
    delays: AtomicU64,
    corruptions: AtomicU64,
}

/// Injector handle: the inner handle plus the identity it stores.
pub struct FaultHandle<H> {
    id: ChunkId,
    inner: H,
}

impl<B: ChunkStore> FaultInjector<B> {
    /// Wraps `inner`, applying `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            loads: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` with an empty plan (no faults; negligible cost).
    pub fn passthrough(inner: B) -> Self {
        FaultInjector::new(inner, FaultPlan::default())
    }

    /// The wrapped store.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            loads: self.loads.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            injected_failures: self.failures.load(Ordering::Relaxed),
            injected_delays: self.delays.load(Ordering::Relaxed),
            injected_corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }

    /// First matching rule's action for this attempt, if any fires.
    fn decide(&self, id: ChunkId, op: FaultOp) -> Option<FaultAction> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let mut attempts = self.attempts.lock();
        for (ri, rule) in self.plan.rules.iter().enumerate() {
            if !rule.matches(id, op) {
                continue;
            }
            let counter = attempts.entry((ri, id.variable.0, id.step, op)).or_insert(0);
            let attempt = *counter;
            *counter += 1;
            if attempt < rule.after {
                continue;
            }
            if let Some(first) = rule.first {
                if attempt >= rule.after.saturating_add(first) {
                    continue;
                }
            }
            if rule.probability < 1.0 {
                let roll = unit(mix(&[
                    self.plan.seed,
                    ri as u64,
                    u64::from(id.variable.0),
                    id.step,
                    op as u64,
                    attempt,
                ]));
                if roll >= rule.probability {
                    continue;
                }
            }
            return Some(rule.action);
        }
        None
    }

    fn apply(
        &self,
        id: ChunkId,
        op: FaultOp,
        data: Bytes,
        action: Option<FaultAction>,
    ) -> DtlResult<Bytes> {
        match action {
            None => Ok(data),
            Some(FaultAction::Fail) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(DtlError::Io(std::io::Error::other(format!(
                    "injected {} failure (variable {}, step {})",
                    op.tag(),
                    id.variable.0,
                    id.step
                ))))
            }
            Some(FaultAction::Delay(d)) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                Ok(data)
            }
            Some(FaultAction::Corrupt) => {
                self.corruptions.fetch_add(1, Ordering::Relaxed);
                if data.is_empty() {
                    return Ok(data);
                }
                let mut bytes = data.to_vec();
                let idx = mix(&[self.plan.seed, u64::from(id.variable.0), id.step]) as usize
                    % bytes.len();
                bytes[idx] ^= 0xA5;
                Ok(Bytes::from(bytes))
            }
        }
    }
}

impl<B: ChunkStore> ChunkStore for FaultInjector<B> {
    type Handle = FaultHandle<B::Handle>;

    fn store(&self, id: ChunkId, data: Bytes) -> DtlResult<Self::Handle> {
        self.stores.fetch_add(1, Ordering::Relaxed);
        let data = self.apply(id, FaultOp::Store, data, self.decide(id, FaultOp::Store))?;
        Ok(FaultHandle { id, inner: self.inner.store(id, data)? })
    }

    fn load(&self, handle: &Self::Handle) -> DtlResult<Bytes> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        let action = self.decide(handle.id, FaultOp::Load);
        // Fail before touching the inner store (the fault replaces the
        // operation); delay/corrupt wrap the real load.
        if matches!(action, Some(FaultAction::Fail)) {
            return self.apply(handle.id, FaultOp::Load, Bytes::new(), action);
        }
        let data = self.inner.load(&handle.inner)?;
        self.apply(handle.id, FaultOp::Load, data, action)
    }

    fn remove(&self, handle: Self::Handle) -> DtlResult<()> {
        // Removal is never faulted: slot teardown must stay consistent.
        self.inner.remove(handle.inner)
    }

    fn tier(&self) -> &'static str {
        self.inner.tier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staging::store::MemoryStore;
    use crate::variable::VariableId;

    fn id(var: u32, step: u64) -> ChunkId {
        ChunkId { variable: VariableId(var), step }
    }

    fn injector(plan: FaultPlan) -> FaultInjector<MemoryStore> {
        FaultInjector::new(MemoryStore::new(), plan)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let inj = injector(FaultPlan::default());
        let h = inj.store(id(0, 0), Bytes::from_static(b"x")).unwrap();
        assert_eq!(inj.load(&h).unwrap(), Bytes::from_static(b"x"));
        inj.remove(h).unwrap();
        assert_eq!(inj.stats().total_injected(), 0);
        assert_eq!((inj.stats().loads, inj.stats().stores), (1, 1));
    }

    #[test]
    fn fail_first_then_recover() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::fail(FaultOp::Load).first_attempts(2));
        let inj = injector(plan);
        let h = inj.store(id(0, 0), Bytes::from_static(b"frame")).unwrap();
        assert!(inj.load(&h).is_err());
        assert!(inj.load(&h).is_err());
        assert_eq!(inj.load(&h).unwrap(), Bytes::from_static(b"frame"));
        assert_eq!(inj.stats().injected_failures, 2);
    }

    #[test]
    fn attempt_window_skips_then_fires() {
        let rule = FaultRule::fail(FaultOp::Load).after_attempts(1).first_attempts(1);
        let inj = injector(FaultPlan::new(0).with_rule(rule));
        let h = inj.store(id(0, 0), Bytes::from_static(b"a")).unwrap();
        assert!(inj.load(&h).is_ok(), "attempt 0 is skipped");
        assert!(inj.load(&h).is_err(), "attempt 1 fires");
        assert!(inj.load(&h).is_ok(), "attempt 2 is past the window");
    }

    #[test]
    fn selectors_scope_rules() {
        let plan =
            FaultPlan::new(0).with_rule(FaultRule::fail(FaultOp::Store).on_variable(1).at_step(2));
        let inj = injector(plan);
        assert!(inj.store(id(0, 2), Bytes::from_static(b"a")).is_ok());
        assert!(inj.store(id(1, 1), Bytes::from_static(b"a")).is_ok());
        assert!(inj.store(id(1, 2), Bytes::from_static(b"a")).is_err());
    }

    #[test]
    fn corruption_is_deterministic_and_visible() {
        let plan = FaultPlan::new(7).with_rule(FaultRule {
            op: Some(FaultOp::Load),
            ..FaultRule::new(FaultAction::Corrupt)
        });
        let original = Bytes::from_static(b"payload-bytes");
        let a = {
            let inj = injector(plan.clone());
            let h = inj.store(id(0, 3), original.clone()).unwrap();
            inj.load(&h).unwrap()
        };
        let b = {
            let inj = injector(plan);
            let h = inj.store(id(0, 3), original.clone()).unwrap();
            inj.load(&h).unwrap()
        };
        assert_ne!(a, original, "corruption must alter the payload");
        assert_eq!(a, b, "same plan, same key ⇒ same corruption");
    }

    #[test]
    fn probability_rolls_are_reproducible() {
        let plan =
            FaultPlan::new(99).with_rule(FaultRule::fail(FaultOp::Load).with_probability(0.5));
        let run = || -> Vec<bool> {
            let inj = injector(plan.clone());
            let h = inj.store(id(0, 0), Bytes::from_static(b"x")).unwrap();
            (0..32).map(|_| inj.load(&h).is_err()).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let fired = a.iter().filter(|&&f| f).count();
        assert!((4..=28).contains(&fired), "p=0.5 over 32 rolls fired {fired} times");
    }

    #[test]
    fn delay_injects_latency() {
        let plan = FaultPlan::new(0).with_rule(FaultRule {
            op: Some(FaultOp::Store),
            ..FaultRule::new(FaultAction::Delay(Duration::from_millis(30)))
        });
        let inj = injector(plan);
        let t0 = std::time::Instant::now();
        inj.store(id(0, 0), Bytes::from_static(b"x")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(inj.stats().injected_delays, 1);
    }

    #[test]
    fn spec_round_trip() {
        let spec = "seed=42;kill=1@2;panic=0@1;fail=load:var=0:step=2:first=1;\
                    delay=any:ms=5:p=0.25;corrupt=store:var=1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.kills.len(), 2);
        assert_eq!(plan.kill_for(1, 2), Some(MemberKill { member: 1, step: 2, panic: false }));
        assert_eq!(plan.kill_for(0, 1), Some(MemberKill { member: 0, step: 1, panic: true }));
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].first, Some(1));
        assert_eq!(plan.rules[1].action, FaultAction::Delay(Duration::from_millis(5)));
        assert_eq!(plan.rules[1].probability, 0.25);
        let reparsed = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("kill=1").is_err());
        assert!(FaultPlan::parse("fail=fly").is_err());
        assert!(FaultPlan::parse("delay=load").is_err(), "delay needs ms");
        assert!(FaultPlan::parse("fail=load:ms=5").is_err(), "ms only applies to delay");
        assert!(FaultPlan::parse("fail=load:p=2").is_err(), "p outside [0,1]");
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn empty_spec_parses_to_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
    }
}
