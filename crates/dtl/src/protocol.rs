//! The synchronous coupling protocol of the paper (§2.1, §3.1).
//!
//! "The simulation does not write any new data until the data from the
//! previous iteration is read": writes and reads of a variable must
//! interleave as `W₀ R₀ W₁ R₁ …` (with each `Rᵢ` meaning *all* K readers
//! consumed step i, each exactly once, in step order). [`StepProtocol`]
//! validates that ordering; the staging areas consult it on every
//! operation so violations surface immediately instead of corrupting an
//! experiment.

use std::collections::HashMap;

use crate::error::{DtlError, DtlResult};

/// Identifies one of the K readers (analyses) of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReaderId(pub u32);

/// Per-variable step-ordering state machine.
#[derive(Debug, Clone)]
pub struct StepProtocol {
    /// Next step the writer may stage.
    next_write: u64,
    /// Next step each reader must consume.
    next_read: HashMap<ReaderId, u64>,
    /// Number of chunks the writer may have in flight (1 = the paper's
    /// unbuffered DIMES semantics; 2 = double buffering, the ablation).
    capacity: u64,
}

impl StepProtocol {
    /// A protocol for `expected_readers` readers and the given in-flight
    /// capacity (≥ 1).
    pub fn new(expected_readers: u32, capacity: u64) -> Self {
        assert!(expected_readers > 0 && capacity > 0);
        StepProtocol {
            next_write: 0,
            next_read: (0..expected_readers).map(|r| (ReaderId(r), 0)).collect(),
            capacity,
        }
    }

    /// The step the writer stages next.
    pub fn next_write_step(&self) -> u64 {
        self.next_write
    }

    /// The step `reader` consumes next.
    pub fn next_read_step(&self, reader: ReaderId) -> DtlResult<u64> {
        self.next_read.get(&reader).copied().ok_or_else(|| DtlError::ProtocolViolation {
            detail: format!("unknown reader {reader:?}"),
        })
    }

    /// The oldest step any reader still needs.
    pub fn oldest_unread(&self) -> u64 {
        self.next_read.values().copied().min().unwrap_or(self.next_write)
    }

    /// True when the writer may stage `step` now: it is the next step in
    /// sequence and staging it would leave at most `capacity` chunks
    /// outstanding.
    pub fn may_write(&self, step: u64) -> bool {
        step == self.next_write && self.next_write < self.oldest_unread() + self.capacity
    }

    /// True when `reader` may consume `step` now (it is that reader's next
    /// step and the writer has staged it).
    pub fn may_read(&self, reader: ReaderId, step: u64) -> bool {
        matches!(self.next_read.get(&reader), Some(&next) if next == step && step < self.next_write)
    }

    /// Records a completed write. Errors if the ordering is violated.
    pub fn record_write(&mut self, step: u64) -> DtlResult<()> {
        if !self.may_write(step) {
            return Err(DtlError::ProtocolViolation {
                detail: format!(
                    "write of step {step} rejected (next={}, oldest unread={}, capacity={})",
                    self.next_write,
                    self.oldest_unread(),
                    self.capacity
                ),
            });
        }
        self.next_write += 1;
        Ok(())
    }

    /// Records a completed read. Errors if the ordering is violated.
    pub fn record_read(&mut self, reader: ReaderId, step: u64) -> DtlResult<()> {
        if !self.may_read(reader, step) {
            let next = self.next_read.get(&reader).copied();
            return Err(DtlError::ProtocolViolation {
                detail: format!(
                    "read of step {step} by {reader:?} rejected (reader next={next:?}, written up to {})",
                    self.next_write
                ),
            });
        }
        *self.next_read.get_mut(&reader).expect("validated above") += 1;
        Ok(())
    }

    /// True when `step` has been consumed by every reader.
    pub fn fully_consumed(&self, step: u64) -> bool {
        self.oldest_unread() > step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbuffered_interleaving_enforced() {
        let mut p = StepProtocol::new(1, 1);
        let r = ReaderId(0);
        assert!(p.may_write(0));
        assert!(!p.may_read(r, 0), "cannot read before the write");
        p.record_write(0).unwrap();
        // W₁ before R₀ violates the no-overwrite rule.
        assert!(!p.may_write(1));
        assert!(p.record_write(1).is_err());
        p.record_read(r, 0).unwrap();
        assert!(p.may_write(1));
        p.record_write(1).unwrap();
    }

    #[test]
    fn all_k_readers_must_consume() {
        let mut p = StepProtocol::new(3, 1);
        p.record_write(0).unwrap();
        p.record_read(ReaderId(0), 0).unwrap();
        p.record_read(ReaderId(1), 0).unwrap();
        assert!(!p.may_write(1), "one reader still pending");
        assert!(!p.fully_consumed(0));
        p.record_read(ReaderId(2), 0).unwrap();
        assert!(p.fully_consumed(0));
        assert!(p.may_write(1));
    }

    #[test]
    fn reader_cannot_skip_or_repeat_steps() {
        let mut p = StepProtocol::new(1, 1);
        let r = ReaderId(0);
        p.record_write(0).unwrap();
        assert!(p.record_read(r, 1).is_err(), "skipping ahead");
        p.record_read(r, 0).unwrap();
        assert!(p.record_read(r, 0).is_err(), "double read");
    }

    #[test]
    fn double_buffering_allows_one_extra_write() {
        let mut p = StepProtocol::new(1, 2);
        p.record_write(0).unwrap();
        assert!(p.may_write(1), "capacity 2 permits a second in-flight chunk");
        p.record_write(1).unwrap();
        assert!(!p.may_write(2), "third chunk exceeds capacity");
        p.record_read(ReaderId(0), 0).unwrap();
        assert!(p.may_write(2));
    }

    #[test]
    fn writer_cannot_skip_steps() {
        let mut p = StepProtocol::new(1, 4);
        assert!(p.record_write(2).is_err());
        p.record_write(0).unwrap();
        assert!(p.record_write(0).is_err(), "same step twice");
    }

    #[test]
    fn unknown_reader_rejected() {
        let mut p = StepProtocol::new(1, 1);
        p.record_write(0).unwrap();
        assert!(p.record_read(ReaderId(7), 0).is_err());
        assert!(p.next_read_step(ReaderId(7)).is_err());
    }

    #[test]
    fn oldest_unread_tracks_laggard() {
        let mut p = StepProtocol::new(2, 3);
        for s in 0..3 {
            p.record_write(s).unwrap();
        }
        p.record_read(ReaderId(0), 0).unwrap();
        p.record_read(ReaderId(0), 1).unwrap();
        assert_eq!(p.oldest_unread(), 0, "reader 1 has not read anything");
        p.record_read(ReaderId(1), 0).unwrap();
        assert_eq!(p.oldest_unread(), 1);
    }
}
