//! Staging cost model for *simulated* executions.
//!
//! The threaded runtime pays real memcpy/network costs; the simulated
//! runtime instead asks this model how long the `W` (write) and `R`
//! (read) stages take, given chunk size and the placement of writer,
//! data home, and reader. It encodes DIMES semantics: data is kept in
//! the producer's node memory, so local reads are a memory copy while
//! remote reads traverse the interconnect.

use hpc_platform::{NetworkSpec, NodeSpec};
use serde::{Deserialize, Serialize};

/// Cost model combining intra-node copies and network transfers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StagingCostModel {
    /// Intra-node staging copy bandwidth, bytes/second.
    pub local_copy_bw: f64,
    /// Intra-node per-operation latency, seconds.
    pub local_latency_s: f64,
    /// The interconnect for remote transfers.
    pub network: NetworkSpec,
    /// Fixed software overhead per staging operation (metadata lookup,
    /// registration), seconds.
    pub sw_overhead_s: f64,
}

impl StagingCostModel {
    /// Builds the model from platform descriptions.
    pub fn from_platform(node: &NodeSpec, network: &NetworkSpec) -> Self {
        StagingCostModel {
            local_copy_bw: node.local_copy_bw,
            local_latency_s: node.local_latency_s,
            network: network.clone(),
            sw_overhead_s: 5.0e-6,
        }
    }

    /// Duration of the `W` stage: the writer on `writer_node` stages
    /// `bytes` into the area homed on `home_node` (equal under DIMES).
    pub fn write_seconds(&self, bytes: u64, writer_node: usize, home_node: usize) -> f64 {
        self.sw_overhead_s + self.move_seconds(bytes, writer_node, home_node)
    }

    /// Duration of the `R` stage: the reader on `reader_node` fetches
    /// `bytes` from the area homed on `home_node`.
    pub fn read_seconds(&self, bytes: u64, home_node: usize, reader_node: usize) -> f64 {
        self.sw_overhead_s + self.move_seconds(bytes, home_node, reader_node)
    }

    fn move_seconds(&self, bytes: u64, from: usize, to: usize) -> f64 {
        if from == to {
            self.local_latency_s + bytes as f64 / self.local_copy_bw
        } else {
            self.network.transfer_time(from, to, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_platform::cori::{aries_network, cori_node};

    fn model() -> StagingCostModel {
        StagingCostModel::from_platform(&cori_node(), &aries_network())
    }

    #[test]
    fn local_read_cheaper_than_remote() {
        let m = model();
        let bytes = 3 * 1024 * 1024;
        let local = m.read_seconds(bytes, 0, 0);
        let remote = m.read_seconds(bytes, 0, 1);
        assert!(local < remote, "local {local} vs remote {remote}");
    }

    #[test]
    fn costs_scale_with_bytes() {
        let m = model();
        assert!(m.write_seconds(1 << 24, 0, 0) > m.write_seconds(1 << 12, 0, 0));
        assert!(m.read_seconds(1 << 24, 0, 1) > m.read_seconds(1 << 12, 0, 1));
    }

    #[test]
    fn zero_bytes_pay_only_latency_and_overhead() {
        let m = model();
        let w = m.write_seconds(0, 0, 0);
        assert!((w - (m.sw_overhead_s + m.local_latency_s)).abs() < 1e-12);
    }

    #[test]
    fn millisecond_scale_for_paper_chunks() {
        // A ~2.6 MB GltPh frame stages in well under 10 ms either way —
        // the in situ premise (memory staging ≪ simulation step).
        let m = model();
        let frame = 220_000 * 12 + 32;
        assert!(m.write_seconds(frame, 0, 0) < 0.01);
        assert!(m.read_seconds(frame, 0, 1) < 0.01);
    }
}
