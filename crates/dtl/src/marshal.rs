//! Data marshaling: the "DTL plugin" codec layer of the paper's Figure 2.
//!
//! "The abstract chunk is serialized to a buffer of bytes, which is easy
//! to manage for most DTL" — [`ChunkCodec`] is that serialization point.
//! Implementations exist for common numeric arrays; the runtime adds one
//! for MD frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DtlError, DtlResult};

/// Encodes application values into chunk payloads and back.
pub trait ChunkCodec: Send + Sync {
    /// The application-side type.
    type Value;

    /// Tag recorded in [`crate::chunk::ChunkMeta::encoding`].
    fn encoding(&self) -> &'static str;

    /// Serializes a value into bytes.
    fn encode(&self, value: &Self::Value) -> Bytes;

    /// Deserializes bytes back into a value.
    fn decode(&self, data: Bytes) -> DtlResult<Self::Value>;
}

/// Little-endian `f64` array codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct F64ArrayCodec;

impl ChunkCodec for F64ArrayCodec {
    type Value = Vec<f64>;

    fn encoding(&self) -> &'static str {
        "f64-le"
    }

    fn encode(&self, value: &Vec<f64>) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + value.len() * 8);
        buf.put_u64_le(value.len() as u64);
        for &v in value {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    fn decode(&self, mut data: Bytes) -> DtlResult<Vec<f64>> {
        if data.len() < 8 {
            return Err(DtlError::Codec { detail: "f64 array header truncated".into() });
        }
        let n = data.get_u64_le() as usize;
        if data.remaining() < n * 8 {
            return Err(DtlError::Codec {
                detail: format!("f64 array promises {n} values, payload too short"),
            });
        }
        Ok((0..n).map(|_| data.get_f64_le()).collect())
    }
}

/// Little-endian `f32` array codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct F32ArrayCodec;

impl ChunkCodec for F32ArrayCodec {
    type Value = Vec<f32>;

    fn encoding(&self) -> &'static str {
        "f32-le"
    }

    fn encode(&self, value: &Vec<f32>) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + value.len() * 4);
        buf.put_u64_le(value.len() as u64);
        for &v in value {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    fn decode(&self, mut data: Bytes) -> DtlResult<Vec<f32>> {
        if data.len() < 8 {
            return Err(DtlError::Codec { detail: "f32 array header truncated".into() });
        }
        let n = data.get_u64_le() as usize;
        if data.remaining() < n * 4 {
            return Err(DtlError::Codec {
                detail: format!("f32 array promises {n} values, payload too short"),
            });
        }
        Ok((0..n).map(|_| data.get_f32_le()).collect())
    }
}

/// Pass-through codec for already-serialized payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawCodec;

impl ChunkCodec for RawCodec {
    type Value = Bytes;

    fn encoding(&self) -> &'static str {
        "raw"
    }

    fn encode(&self, value: &Bytes) -> Bytes {
        value.clone()
    }

    fn decode(&self, data: Bytes) -> DtlResult<Bytes> {
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let codec = F64ArrayCodec;
        let v = vec![1.5, -2.25, 1e300, 0.0];
        let decoded = codec.decode(codec.encode(&v)).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(codec.encoding(), "f64-le");
    }

    #[test]
    fn f32_roundtrip() {
        let codec = F32ArrayCodec;
        let v = vec![1.5f32, -7.75, f32::MAX];
        assert_eq!(codec.decode(codec.encode(&v)).unwrap(), v);
    }

    #[test]
    fn empty_arrays_roundtrip() {
        assert_eq!(F64ArrayCodec.decode(F64ArrayCodec.encode(&vec![])).unwrap(), Vec::<f64>::new());
        assert_eq!(F32ArrayCodec.decode(F32ArrayCodec.encode(&vec![])).unwrap(), Vec::<f32>::new());
    }

    #[test]
    fn truncated_payload_rejected() {
        let codec = F64ArrayCodec;
        let good = codec.encode(&vec![1.0, 2.0]);
        let bad = good.slice(0..good.len() - 1);
        assert!(matches!(codec.decode(bad), Err(DtlError::Codec { .. })));
        assert!(matches!(codec.decode(Bytes::from_static(b"xy")), Err(DtlError::Codec { .. })));
    }

    #[test]
    fn raw_codec_is_identity() {
        let codec = RawCodec;
        let payload = Bytes::from_static(b"payload");
        assert_eq!(codec.decode(codec.encode(&payload)).unwrap(), payload);
    }
}
