//! The DTL plugin: "a middle layer between the ensemble components and
//! the underlying DTL, responsible for data handling" (paper §2.2).
//!
//! A [`DtlWriter`] wraps a typed producer side (serialize → put), a
//! [`DtlReader`] the consumer side (get → deserialize). Both hide the
//! staging protocol details — step sequencing is automatic.

use std::sync::Arc;
use std::time::Duration;

use crate::chunk::Chunk;
use crate::error::DtlResult;
use crate::marshal::ChunkCodec;
use crate::protocol::ReaderId;
use crate::staging::store::ChunkStore;
use crate::staging::sync_staging::{SyncStaging, DEFAULT_TIMEOUT};
use crate::variable::{VariableId, VariableSpec};

/// Typed producer handle for one variable.
pub struct DtlWriter<B: ChunkStore, C: ChunkCodec> {
    staging: Arc<SyncStaging<B>>,
    codec: C,
    variable: VariableId,
    home_node: usize,
    next_step: u64,
    timeout: Duration,
}

impl<B: ChunkStore, C: ChunkCodec> DtlWriter<B, C> {
    /// Registers `spec` and builds a writer for it.
    pub fn create(staging: Arc<SyncStaging<B>>, codec: C, spec: VariableSpec) -> DtlResult<Self> {
        let home_node = spec.home_node;
        let variable = staging.register(spec)?;
        Ok(DtlWriter {
            staging,
            codec,
            variable,
            home_node,
            next_step: 0,
            timeout: DEFAULT_TIMEOUT,
        })
    }

    /// Overrides the blocking timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The variable this writer produces.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// The step the next [`DtlWriter::write`] will stage.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Serializes `value` and stages it as the next step (the `W` stage),
    /// blocking while the previous chunk has unread consumers.
    pub fn write(&mut self, value: &C::Value) -> DtlResult<()> {
        let data = self.codec.encode(value);
        let chunk =
            Chunk::new(self.variable, self.next_step, self.home_node, self.codec.encoding(), data);
        self.staging.put_timeout(chunk, self.timeout)?;
        self.next_step += 1;
        Ok(())
    }
}

/// Typed consumer handle for one variable.
pub struct DtlReader<B: ChunkStore, C: ChunkCodec> {
    staging: Arc<SyncStaging<B>>,
    codec: C,
    variable: VariableId,
    reader: ReaderId,
    next_step: u64,
    timeout: Duration,
}

impl<B: ChunkStore, C: ChunkCodec> DtlReader<B, C> {
    /// Builds a reader for an already-registered variable; `reader` must
    /// be unique among the variable's `expected_readers`.
    pub fn attach(
        staging: Arc<SyncStaging<B>>,
        codec: C,
        variable: VariableId,
        reader: ReaderId,
    ) -> Self {
        DtlReader { staging, codec, variable, reader, next_step: 0, timeout: DEFAULT_TIMEOUT }
    }

    /// Attaches by variable name.
    pub fn attach_by_name(
        staging: Arc<SyncStaging<B>>,
        codec: C,
        name: &str,
        reader: ReaderId,
    ) -> DtlResult<Self> {
        let variable = staging.lookup(name)?;
        Ok(Self::attach(staging, codec, variable, reader))
    }

    /// Overrides the blocking timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The step the next [`DtlReader::read`] will consume.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Blocks for the next chunk (the `R` stage) and deserializes it.
    pub fn read(&mut self) -> DtlResult<C::Value> {
        let chunk =
            self.staging.get_timeout(self.variable, self.next_step, self.reader, self.timeout)?;
        let value = self.codec.decode(chunk.data)?;
        self.next_step += 1;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marshal::F64ArrayCodec;
    use crate::staging;

    fn spec(readers: u32) -> VariableSpec {
        VariableSpec { name: "cv".into(), expected_readers: readers, home_node: 0 }
    }

    #[test]
    fn typed_roundtrip() {
        let staging = Arc::new(staging::dimes());
        let mut writer = DtlWriter::create(Arc::clone(&staging), F64ArrayCodec, spec(1)).unwrap();
        let mut reader =
            DtlReader::attach_by_name(Arc::clone(&staging), F64ArrayCodec, "cv", ReaderId(0))
                .unwrap();
        writer.write(&vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(reader.read().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(writer.next_step(), 1);
        assert_eq!(reader.next_step(), 1);
    }

    #[test]
    fn step_sequencing_is_automatic() {
        let staging = Arc::new(staging::dimes());
        let mut writer = DtlWriter::create(Arc::clone(&staging), F64ArrayCodec, spec(1)).unwrap();
        let mut reader =
            DtlReader::attach(Arc::clone(&staging), F64ArrayCodec, writer.variable(), ReaderId(0));
        for step in 0..5 {
            writer.write(&vec![step as f64]).unwrap();
            assert_eq!(reader.read().unwrap(), vec![step as f64]);
        }
    }

    #[test]
    fn threaded_pipeline_through_plugin() {
        let staging = Arc::new(staging::dimes());
        let mut writer = DtlWriter::create(Arc::clone(&staging), F64ArrayCodec, spec(2)).unwrap();
        let var = writer.variable();
        let readers: Vec<_> = (0..2u32)
            .map(|r| {
                let staging = Arc::clone(&staging);
                std::thread::spawn(move || {
                    let mut reader = DtlReader::attach(staging, F64ArrayCodec, var, ReaderId(r));
                    let mut sum = 0.0;
                    for _ in 0..8 {
                        sum += reader.read().unwrap()[0];
                    }
                    sum
                })
            })
            .collect();
        for step in 0..8 {
            writer.write(&vec![step as f64]).unwrap();
        }
        for r in readers {
            assert_eq!(r.join().unwrap(), 28.0);
        }
    }
}
