//! # dtl — the Data Transport Layer of the workflow-ensemble runtime
//!
//! Implements the runtime architecture of the paper's Figure 2: ensemble
//! components talk to *DTL plugins* ([`DtlWriter`] / [`DtlReader`]), which
//! marshal application data into [`Chunk`]s ("the base data representation
//! manipulated within the entire runtime") and move them through a staging
//! tier:
//!
//! * [`staging::dimes`] — in-memory staging with DIMES semantics: data
//!   stays in the producer's node memory, one chunk in flight (the
//!   paper's unbuffered synchronous coupling);
//! * [`staging::burst_buffer`] — queueing tier (capacity > 1);
//! * [`staging::pfs`] — parallel-file-system tier with real file I/O
//!   (the loose-coupling baseline in situ processing replaces).
//!
//! The synchronous protocol (`Wᵢ` before `Rᵢ` before `Wᵢ₊₁`, every chunk
//! consumed exactly once by each of the member's K analyses) is enforced
//! by [`protocol::StepProtocol`] and surfaced as hard errors on violation.
//!
//! Staging state is sharded per variable — one lock and one pair of
//! condition variables per registered variable — so ensemble members
//! coupling through distinct variables never contend on a shared lock
//! (see the [`staging`] module docs and `DESIGN.md` §4c).
//!
//! [`transport::StagingCostModel`] prices the same operations for the
//! *simulated* execution mode, encoding the data-locality asymmetry that
//! makes co-location attractive (local memory copy vs. dragonfly
//! transfer).

#![warn(missing_docs)]

pub mod chunk;
pub mod error;
pub mod fault;
pub mod marshal;
pub mod plugin;
pub mod protocol;
pub mod staging;
pub mod transport;
pub mod variable;

pub use chunk::{Chunk, ChunkId, ChunkMeta};
pub use error::{DtlError, DtlResult};
pub use fault::{
    FaultAction, FaultInjector, FaultOp, FaultPlan, FaultRule, FaultStats, MemberKill,
};
pub use marshal::{ChunkCodec, F32ArrayCodec, F64ArrayCodec, RawCodec};
pub use plugin::{DtlReader, DtlWriter};
pub use protocol::{ReaderId, StepProtocol};
pub use staging::{
    AsyncStaging, InMemoryStaging, PfsStaging, RetryPolicy, StagingStats, SyncStaging,
};
pub use transport::StagingCostModel;
pub use variable::{VariableId, VariableRegistry, VariableSpec};
