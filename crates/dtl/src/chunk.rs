//! The chunk: "the base data representation manipulated within the entire
//! runtime" (paper §2.2, Figure 2). A chunk is an opaque byte buffer plus
//! the metadata the staging protocol needs.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::variable::VariableId;

/// Identity of a chunk: which variable, which in situ step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId {
    /// Producing variable.
    pub variable: VariableId,
    /// In situ step index (0-based).
    pub step: u64,
}

/// Metadata travelling with every chunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// Node whose memory holds the payload (DIMES keeps data local to the
    /// producer; remote readers fetch over the interconnect).
    pub home_node: usize,
    /// Free-form tag describing the payload encoding (set by the plugin).
    pub encoding: String,
}

/// A staged unit of data.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Identity.
    pub id: ChunkId,
    /// Metadata.
    pub meta: ChunkMeta,
    /// Serialized payload. `Bytes` keeps clones cheap (refcounted), so a
    /// chunk fanned out to K readers is not copied K times.
    pub data: Bytes,
}

impl Chunk {
    /// Builds a chunk.
    pub fn new(
        variable: VariableId,
        step: u64,
        home_node: usize,
        encoding: &str,
        data: Bytes,
    ) -> Self {
        Chunk {
            id: ChunkId { variable, step },
            meta: ChunkMeta { home_node, encoding: encoding.to_string() },
            data,
        }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = Chunk::new(VariableId(3), 7, 1, "frame-v1", Bytes::from_static(b"abc"));
        assert_eq!(c.id, ChunkId { variable: VariableId(3), step: 7 });
        assert_eq!(c.meta.home_node, 1);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn clone_shares_payload() {
        let c = Chunk::new(VariableId(0), 0, 0, "raw", Bytes::from(vec![0u8; 1024]));
        let d = c.clone();
        // Bytes clones share the same backing storage.
        assert_eq!(c.data.as_ptr(), d.data.as_ptr());
    }

    #[test]
    fn chunk_ids_order_by_variable_then_step() {
        let a = ChunkId { variable: VariableId(0), step: 9 };
        let b = ChunkId { variable: VariableId(1), step: 0 };
        assert!(a < b);
    }
}
