//! Staging tiers of the DTL.
//!
//! * [`InMemoryStaging`] — DIMES-like in-memory staging, capacity 1
//!   (the paper's unbuffered semantics);
//! * burst-buffer-like queueing — [`InMemoryStaging`] with capacity > 1
//!   via [`burst_buffer`];
//! * [`PfsStaging`] — parallel-file-system tier (real file I/O);
//! * [`AsyncStaging`] — in-transit style non-blocking tier with
//!   drop-oldest overflow and lost-frame accounting.
//!
//! All tiers shard their state per variable: each registered variable
//! owns its own lock (and condition variables), so couplings over
//! distinct variables proceed without contending — an ensemble of N
//! members staging through N variables scales like N independent
//! staging areas. See `DESIGN.md` §4c for the full concurrency model.

pub mod async_staging;
pub mod retry;
pub mod store;
pub mod sync_staging;

pub use async_staging::AsyncStaging;
pub use retry::RetryPolicy;
pub use store::{ChunkStore, FileStore, MemoryStore};
pub use sync_staging::{StagingStats, SyncStaging, DEFAULT_TIMEOUT};

/// DIMES-style in-memory staging: chunks live in the producer's node
/// memory, one chunk in flight per variable.
pub type InMemoryStaging = SyncStaging<MemoryStore>;

/// Parallel-file-system staging: chunks are real files on disk.
pub type PfsStaging = SyncStaging<FileStore>;

/// The paper's DTL: unbuffered in-memory staging.
pub fn dimes() -> InMemoryStaging {
    SyncStaging::with_capacity(MemoryStore::new(), 1)
}

/// Burst-buffer-like in-memory staging with `capacity` chunks in flight
/// per variable (capacity ≥ 1).
pub fn burst_buffer(capacity: u64) -> InMemoryStaging {
    SyncStaging::with_capacity(MemoryStore::new(), capacity)
}

/// File-system staging rooted at `dir`.
pub fn pfs(dir: impl Into<std::path::PathBuf>) -> crate::error::DtlResult<PfsStaging> {
    Ok(SyncStaging::with_capacity(FileStore::new(dir)?, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::protocol::ReaderId;
    use crate::variable::VariableSpec;
    use bytes::Bytes;

    #[test]
    fn constructors_produce_expected_tiers() {
        assert_eq!(dimes().tier(), "memory");
        assert_eq!(burst_buffer(4).tier(), "memory");
        let dir = std::env::temp_dir().join(format!("dtl-tier-{}", std::process::id()));
        let p = pfs(&dir).unwrap();
        assert_eq!(p.tier(), "pfs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pfs_staging_end_to_end() {
        let dir = std::env::temp_dir().join(format!("dtl-pfs-e2e-{}", std::process::id()));
        let s = pfs(&dir).unwrap();
        let var = s
            .register(VariableSpec { name: "traj".into(), expected_readers: 1, home_node: 0 })
            .unwrap();
        s.put(Chunk::new(var, 0, 0, "raw", Bytes::from_static(b"on disk"))).unwrap();
        let c = s.get(var, 0, ReaderId(0)).unwrap();
        assert_eq!(c.data, Bytes::from_static(b"on disk"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
