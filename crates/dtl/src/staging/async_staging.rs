//! Asynchronous (in-transit style) staging: the producer never blocks.
//!
//! The paper's protocol is synchronous — the simulation stalls until its
//! previous chunk is consumed. In-transit analytics (Taufer et al.,
//! cited as \[26\]) instead let the simulation run free: chunks enter a
//! bounded queue and, when the analysis cannot keep up, the **oldest
//! unconsumed frames are dropped** and counted as *lost frames* — the
//! domain metric that work characterizes. This tier implements that
//! semantic for real threaded runs.
//!
//! Like [`SyncStaging`](crate::staging::SyncStaging), the area is
//! sharded per variable: each variable's queue lives behind its own
//! mutex and condition variable, so independent members never contend.
//! A `put` wakes only the readers of that variable; consuming a chunk
//! wakes nobody (puts never block, so nothing waits on consumption).
//!
//! Payloads live in a [`ChunkStore`] backing tier (in-memory by
//! default), so the queue holds handles, not bytes — and the fallible
//! store/load hop can carry a [`RetryPolicy`] for transient I/O faults,
//! with the same error-path guarantee as the synchronous tier: a failed
//! store drops no frames and a failed load leaves the reader's cursor
//! untouched, so the op stays retryable.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::chunk::{Chunk, ChunkId, ChunkMeta};
use crate::error::{DtlError, DtlResult};
use crate::protocol::ReaderId;
use crate::staging::retry::{op_key, run_with_retry, RetryPolicy};
use crate::staging::store::{ChunkStore, MemoryStore};
use crate::variable::{VariableId, VariableRegistry, VariableSpec};

/// A queued frame: identity + metadata in the queue, payload in the
/// backing store.
struct Staged<H> {
    id: ChunkId,
    meta: ChunkMeta,
    handle: H,
}

struct AsyncVar<H> {
    /// Retained frames, oldest first.
    queue: VecDeque<Staged<H>>,
    /// Highest step each reader has consumed (readers skip forward).
    last_consumed: HashMap<ReaderId, Option<u64>>,
    /// Frames dropped because the queue was full.
    lost: u64,
    /// Total frames staged.
    produced: u64,
    /// Producer finished.
    finished: bool,
}

/// One variable's queue with its own lock and reader wakeup channel.
struct AsyncShard<H> {
    state: Mutex<AsyncVar<H>>,
    /// Readers block here for new data, `finish`, or `close`.
    cv: Condvar,
}

/// A bounded non-blocking staging area with drop-oldest overflow.
pub struct AsyncStaging<B: ChunkStore = MemoryStore> {
    capacity: usize,
    store: B,
    retry: Option<RetryPolicy>,
    /// Read-mostly: written only by `register`.
    registry: RwLock<Registry<B::Handle>>,
    closed: AtomicBool,
    total_lost: AtomicU64,
    retries: AtomicU64,
    giveups: AtomicU64,
}

struct Registry<H> {
    names: VariableRegistry,
    /// Indexed by `VariableId` (dense ids, registration order).
    shards: Vec<Arc<AsyncShard<H>>>,
}

impl AsyncStaging<MemoryStore> {
    /// Creates an in-memory area retaining at most `capacity` chunks per
    /// variable.
    pub fn new(capacity: usize) -> Self {
        AsyncStaging::with_store(MemoryStore::new(), capacity)
    }
}

impl<B: ChunkStore> AsyncStaging<B> {
    /// Creates an area over `store` retaining at most `capacity` chunks
    /// per variable.
    pub fn with_store(store: B, capacity: usize) -> Self {
        assert!(capacity > 0);
        AsyncStaging {
            capacity,
            store,
            retry: None,
            registry: RwLock::new(Registry { names: VariableRegistry::new(), shards: Vec::new() }),
            closed: AtomicBool::new(false),
            total_lost: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }

    /// Enables retries of transient store errors on `put`/`next`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The backing store.
    pub fn store(&self) -> &B {
        &self.store
    }

    /// Store/load retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Transient errors returned to callers because the retry budget ran
    /// out.
    pub fn giveups(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }

    /// Registers a variable.
    pub fn register(&self, spec: VariableSpec) -> DtlResult<VariableId> {
        let mut registry = self.registry.write();
        let readers = spec.expected_readers;
        let id = registry.names.register(spec)?;
        if (id.0 as usize) >= registry.shards.len() {
            registry.shards.push(Arc::new(AsyncShard {
                state: Mutex::new(AsyncVar {
                    queue: VecDeque::new(),
                    last_consumed: (0..readers).map(|r| (ReaderId(r), None)).collect(),
                    lost: 0,
                    produced: 0,
                    finished: false,
                }),
                cv: Condvar::new(),
            }));
            debug_assert_eq!(registry.shards.len(), id.0 as usize + 1);
        }
        Ok(id)
    }

    /// The shard of `var`, or `UnknownVariable`.
    fn shard(&self, var: VariableId) -> DtlResult<Arc<AsyncShard<B::Handle>>> {
        self.registry
            .read()
            .shards
            .get(var.0 as usize)
            .cloned()
            .ok_or_else(|| DtlError::UnknownVariable { name: format!("id {}", var.0) })
    }

    /// Stages a chunk without blocking. If the queue is full the oldest
    /// retained chunk is dropped (a lost frame). A failed store drops
    /// nothing: the queue and counters are untouched, so the put stays
    /// retryable.
    pub fn put(&self, chunk: Chunk) -> DtlResult<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(DtlError::Closed);
        }
        let var = chunk.id.variable;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        if state.finished {
            return Err(DtlError::ProtocolViolation {
                detail: "producer already finished this variable".into(),
            });
        }
        let handle = run_with_retry(
            self.retry.as_ref(),
            None,
            op_key(var, chunk.id.step, 1),
            &self.retries,
            &self.giveups,
            || self.store.store(chunk.id, chunk.data.clone()),
        )?;
        if state.queue.len() >= self.capacity {
            if let Some(victim) = state.queue.pop_front() {
                let _ = self.store.remove(victim.handle);
            }
            state.lost += 1;
            self.total_lost.fetch_add(1, Ordering::Relaxed);
        }
        state.produced += 1;
        state.queue.push_back(Staged { id: chunk.id, meta: chunk.meta, handle });
        // Wake only this variable's readers.
        shard.cv.notify_all();
        Ok(())
    }

    /// Marks a variable's production as finished, letting readers drain
    /// and then observe end-of-stream.
    pub fn finish(&self, var: VariableId) -> DtlResult<()> {
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        state.finished = true;
        shard.cv.notify_all();
        Ok(())
    }

    /// Fetches the next chunk newer than the reader's last one, blocking
    /// until one exists. Returns `Ok(None)` at end of stream. Frames the
    /// reader skipped (dropped before it arrived) are simply absent. A
    /// failed load leaves the reader's cursor untouched, so the next
    /// call retries the same frame.
    pub fn next(
        &self,
        var: VariableId,
        reader: ReaderId,
        timeout: Duration,
    ) -> DtlResult<Option<Chunk>> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        loop {
            let last = *state.last_consumed.get(&reader).ok_or_else(|| {
                DtlError::ProtocolViolation { detail: format!("unknown reader {reader:?}") }
            })?;
            let found = state.queue.iter().position(|c| last.is_none_or(|l| c.id.step > l));
            if let Some(idx) = found {
                let id = state.queue[idx].id;
                let meta = state.queue[idx].meta.clone();
                // Load before mutating the cursor (the error-path
                // guarantee): a failed load leaves the frame consumable.
                let data = run_with_retry(
                    self.retry.as_ref(),
                    Some(deadline),
                    op_key(var, id.step, 0),
                    &self.retries,
                    &self.giveups,
                    || self.store.load(&state.queue[idx].handle),
                )?;
                state.last_consumed.insert(reader, Some(id.step));
                // Garbage-collect chunks every reader has passed. Nobody
                // waits on consumption (puts never block), so no wakeup.
                let min_last: Option<u64> =
                    state.last_consumed.values().map(|v| v.unwrap_or(0)).min();
                let all_started = state.last_consumed.values().all(Option::is_some);
                if all_started {
                    if let Some(min_last) = min_last {
                        while state.queue.front().is_some_and(|c| c.id.step <= min_last) {
                            if let Some(dead) = state.queue.pop_front() {
                                let _ = self.store.remove(dead.handle);
                            }
                        }
                    }
                }
                return Ok(Some(Chunk { id, meta, data }));
            }
            if state.finished {
                return Ok(None);
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if shard.cv.wait_until(&mut state, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "next",
                    variable: format!("id {}", var.0),
                    step: 0,
                });
            }
        }
    }

    /// Frames dropped for `var` so far.
    pub fn lost_frames(&self, var: VariableId) -> u64 {
        self.shard(var).map_or(0, |shard| shard.state.lock().lost)
    }

    /// Frames staged for `var` so far.
    pub fn produced_frames(&self, var: VariableId) -> u64 {
        self.shard(var).map_or(0, |shard| shard.state.lock().produced)
    }

    /// Total dropped frames across variables.
    pub fn total_lost(&self) -> u64 {
        self.total_lost.load(Ordering::Relaxed)
    }

    /// Closes the area, waking all blocked readers with an error.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let shards: Vec<_> = self.registry.read().shards.to_vec();
        for shard in shards {
            let _guard = shard.state.lock();
            shard.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::sync::Arc;

    fn spec(readers: u32) -> VariableSpec {
        VariableSpec { name: "traj".into(), expected_readers: readers, home_node: 0 }
    }

    fn chunk(var: VariableId, step: u64) -> Chunk {
        Chunk::new(var, step, 0, "raw", Bytes::from(vec![step as u8]))
    }

    #[test]
    fn producer_never_blocks_and_drops_oldest() {
        let s = AsyncStaging::new(2);
        let var = s.register(spec(1)).unwrap();
        for step in 0..5 {
            s.put(chunk(var, step)).unwrap();
        }
        assert_eq!(s.produced_frames(var), 5);
        assert_eq!(s.lost_frames(var), 3, "capacity 2 keeps only the newest 2 of 5");
        // Reader sees only steps 3 and 4.
        let c = s.next(var, ReaderId(0), Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(c.id.step, 3);
        let c = s.next(var, ReaderId(0), Duration::from_millis(50)).unwrap().unwrap();
        assert_eq!(c.id.step, 4);
    }

    #[test]
    fn end_of_stream_after_finish() {
        let s = AsyncStaging::new(4);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0)).unwrap();
        s.finish(var).unwrap();
        assert!(s.next(var, ReaderId(0), Duration::from_millis(50)).unwrap().is_some());
        assert!(s.next(var, ReaderId(0), Duration::from_millis(50)).unwrap().is_none());
        // Producing after finish is a violation.
        assert!(matches!(s.put(chunk(var, 1)), Err(DtlError::ProtocolViolation { .. })));
    }

    #[test]
    fn slow_reader_loses_frames_fast_reader_does_not() {
        let s = Arc::new(AsyncStaging::new(3));
        let var = s.register(spec(1)).unwrap();
        let producer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..50u64 {
                    s.put(chunk(var, step)).unwrap();
                    std::thread::sleep(Duration::from_micros(200));
                }
                s.finish(var).unwrap();
            })
        };
        let mut seen = Vec::new();
        while let Some(c) = s.next(var, ReaderId(0), Duration::from_secs(5)).unwrap() {
            seen.push(c.id.step);
            // A deliberately slow consumer.
            std::thread::sleep(Duration::from_millis(1));
        }
        producer.join().unwrap();
        // Steps are strictly increasing (never reordered, never repeated).
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.produced_frames(var), 50);
        assert_eq!(s.lost_frames(var) + count_retained(&seen, 50), 50);
    }

    fn count_retained(seen: &[u64], _total: u64) -> u64 {
        // Frames the reader consumed plus frames still skipped between
        // its reads were either consumed or dropped; with one reader and
        // a drained stream, consumed + lost = produced.
        seen.len() as u64
    }

    #[test]
    fn two_readers_progress_independently() {
        let s = AsyncStaging::new(8);
        let var = s.register(spec(2)).unwrap();
        for step in 0..4 {
            s.put(chunk(var, step)).unwrap();
        }
        // Reader 0 consumes two; reader 1 none yet.
        assert_eq!(
            s.next(var, ReaderId(0), Duration::from_millis(10)).unwrap().unwrap().id.step,
            0
        );
        assert_eq!(
            s.next(var, ReaderId(0), Duration::from_millis(10)).unwrap().unwrap().id.step,
            1
        );
        // Reader 1 still starts at step 0 (retained: capacity not hit).
        assert_eq!(
            s.next(var, ReaderId(1), Duration::from_millis(10)).unwrap().unwrap().id.step,
            0
        );
    }

    #[test]
    fn close_unblocks_waiting_reader() {
        let s = Arc::new(AsyncStaging::new(2));
        let var = s.register(spec(1)).unwrap();
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.next(var, ReaderId(0), Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(30));
        s.close();
        assert!(matches!(reader.join().unwrap(), Err(DtlError::Closed)));
    }

    #[test]
    fn timeout_when_no_data() {
        let s = AsyncStaging::new(2);
        let var = s.register(spec(1)).unwrap();
        let err = s.next(var, ReaderId(0), Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { .. }));
    }

    #[test]
    fn unknown_variable_rejected() {
        let s = AsyncStaging::new(2);
        let bogus = VariableId(7);
        assert!(matches!(s.put(chunk(bogus, 0)), Err(DtlError::UnknownVariable { .. })));
        assert!(matches!(
            s.next(bogus, ReaderId(0), Duration::from_millis(10)),
            Err(DtlError::UnknownVariable { .. })
        ));
        assert!(matches!(s.finish(bogus), Err(DtlError::UnknownVariable { .. })));
    }

    #[test]
    fn consumed_and_dropped_frames_release_store_bytes() {
        let s = AsyncStaging::new(2);
        let var = s.register(spec(1)).unwrap();
        for step in 0..6 {
            s.put(chunk(var, step)).unwrap();
        }
        // Overflow drops released their payloads: only 2 frames held.
        assert_eq!(s.store().bytes_held(), 2);
        s.finish(var).unwrap();
        while s.next(var, ReaderId(0), Duration::from_millis(50)).unwrap().is_some() {}
        assert_eq!(s.store().bytes_held(), 0, "drained queue holds no payloads");
    }

    #[test]
    fn retry_clears_transient_faults_on_both_sides() {
        use crate::fault::{FaultInjector, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::new(11)
            .with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1))
            .with_rule(FaultRule::fail(FaultOp::Load).first_attempts(1));
        let s = AsyncStaging::with_store(FaultInjector::new(MemoryStore::new(), plan), 4)
            .with_retry(RetryPolicy::with_attempts(3));
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0)).unwrap();
        let got = s.next(var, ReaderId(0), Duration::from_millis(500)).unwrap().unwrap();
        assert_eq!(got.id.step, 0);
        assert_eq!(s.retries(), 2, "one store retry + one load retry");
        assert_eq!(s.giveups(), 0);
        assert_eq!(s.produced_frames(var), 1);
    }

    #[test]
    fn failed_store_drops_no_frames() {
        use crate::fault::{FaultInjector, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::new(0).with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1));
        let s = AsyncStaging::with_store(FaultInjector::new(MemoryStore::new(), plan), 1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0)).unwrap_err();
        assert_eq!(s.produced_frames(var), 0);
        assert_eq!(s.lost_frames(var), 0, "a failed store must not evict the queue");
        // The same put succeeds on retry by the caller.
        s.put(chunk(var, 0)).unwrap();
        assert_eq!(s.produced_frames(var), 1);
    }
}
