//! The synchronous staging area: blocking put/get with the paper's
//! no-overwrite protocol, generic over the physical tier.
//!
//! # Concurrency model
//!
//! The staging area is sharded **per variable**: each registered
//! variable owns its own mutex (protocol state + slots) and a pair of
//! condition variables (one for the writer side, one for the reader
//! side). Operations on distinct variables — i.e. distinct ensemble
//! members — never contend on a shared lock, so the threaded runtime
//! measures the coupling protocol instead of lock contention. The
//! name → shard registry is behind a read-mostly `RwLock`: lookups on
//! the hot path take a shared read lock, only `register` takes the
//! write lock. Wakeups are targeted: a `put` wakes only the readers of
//! that variable, a consuming `get` wakes only its writer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::chunk::{Chunk, ChunkId, ChunkMeta};
use crate::error::{DtlError, DtlResult};
use crate::protocol::{ReaderId, StepProtocol};
use crate::staging::retry::{op_key as retry_key, run_with_retry, RetryPolicy};
use crate::staging::store::ChunkStore;
use crate::variable::{VariableId, VariableRegistry, VariableSpec};

/// Operation counters of a staging area.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagingStats {
    /// Chunks staged.
    pub puts: u64,
    /// Chunk reads served.
    pub gets: u64,
    /// Payload bytes staged.
    pub bytes_staged: u64,
    /// Payload bytes served to readers.
    pub bytes_served: u64,
    /// Transient store errors cleared by a retry.
    pub retries: u64,
    /// Transient store errors returned to the caller because the retry
    /// budget (attempts or deadline) ran out.
    pub giveups: u64,
}

struct Slot<H> {
    id: ChunkId,
    meta: ChunkMeta,
    handle: Option<H>,
    remaining: u32,
    consumed_by: Vec<ReaderId>,
}

struct VarState<H> {
    protocol: StepProtocol,
    slots: Vec<Slot<H>>,
    expected_readers: u32,
    /// Hard-closed independently of the whole area (member failure).
    closed: bool,
}

/// One variable's share of the staging area: its protocol state behind
/// its own lock, plus role-specific condition variables so wakeups only
/// reach threads coupled through this variable.
struct VarShard<H> {
    state: Mutex<VarState<H>>,
    /// The writer blocks here until the previous chunk is fully consumed.
    writer_cv: Condvar,
    /// Readers block here until the writer stages their next step.
    reader_cv: Condvar,
}

/// A blocking staging area enforcing `W₀ R₀ W₁ R₁ …` per variable.
///
/// With `capacity = 1` this is the paper's DIMES-style unbuffered
/// in-memory staging; higher capacities model burst-buffer-like queueing
/// (the buffering ablation).
pub struct SyncStaging<B: ChunkStore> {
    store: B,
    capacity: u64,
    /// Retry policy for transient store errors; `None` = fail fast.
    retry: Option<RetryPolicy>,
    /// Read-mostly: written only by `register`, read on every operation.
    registry: RwLock<Registry<B::Handle>>,
    closed: AtomicBool,
    puts: AtomicU64,
    gets: AtomicU64,
    bytes_staged: AtomicU64,
    bytes_served: AtomicU64,
    retries: AtomicU64,
    giveups: AtomicU64,
}

struct Registry<H> {
    names: VariableRegistry,
    /// Indexed by `VariableId` (dense ids, registration order).
    shards: Vec<Arc<VarShard<H>>>,
}

/// Default timeout for blocking operations — generous enough for real
/// kernels, small enough that a deadlocked test fails quickly.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

impl<B: ChunkStore> SyncStaging<B> {
    /// Creates a staging area over `store` with the given in-flight
    /// chunk capacity per variable.
    pub fn with_capacity(store: B, capacity: u64) -> Self {
        assert!(capacity > 0);
        SyncStaging {
            store,
            capacity,
            retry: None,
            registry: RwLock::new(Registry { names: VariableRegistry::new(), shards: Vec::new() }),
            closed: AtomicBool::new(false),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            bytes_staged: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }

    /// Enables retry of transient store errors on the put/get paths.
    /// Backoff sleeps happen with only the affected variable's shard
    /// locked: the peer of that variable cannot progress until the op
    /// settles anyway, and other variables are untouched.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The active retry policy, if any.
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// The physical tier name ("memory", "pfs", …).
    pub fn tier(&self) -> &'static str {
        self.store.tier()
    }

    /// Registers a variable.
    pub fn register(&self, spec: VariableSpec) -> DtlResult<VariableId> {
        let mut registry = self.registry.write();
        let readers = spec.expected_readers;
        let id = registry.names.register(spec)?;
        if (id.0 as usize) >= registry.shards.len() {
            registry.shards.push(Arc::new(VarShard {
                state: Mutex::new(VarState {
                    protocol: StepProtocol::new(readers, self.capacity),
                    slots: Vec::new(),
                    expected_readers: readers,
                    closed: false,
                }),
                writer_cv: Condvar::new(),
                reader_cv: Condvar::new(),
            }));
            debug_assert_eq!(registry.shards.len(), id.0 as usize + 1);
        }
        Ok(id)
    }

    /// Looks up a registered variable by name.
    pub fn lookup(&self, name: &str) -> DtlResult<VariableId> {
        self.registry.read().names.lookup(name)
    }

    /// The spec of a registered variable.
    pub fn variable_spec(&self, id: VariableId) -> VariableSpec {
        self.registry.read().names.spec(id).clone()
    }

    /// Number of registered variables (= independent shards).
    pub fn variable_count(&self) -> usize {
        self.registry.read().shards.len()
    }

    /// The shard of `var`, or `UnknownVariable`. Takes the registry read
    /// lock only long enough to clone the `Arc`.
    fn shard(&self, var: VariableId) -> DtlResult<Arc<VarShard<B::Handle>>> {
        self.registry
            .read()
            .shards
            .get(var.0 as usize)
            .cloned()
            .ok_or_else(|| DtlError::UnknownVariable { name: format!("id {}", var.0) })
    }

    /// Stages a chunk, blocking (up to `timeout`) until the protocol
    /// admits it — i.e. until the previous chunk is fully consumed when
    /// `capacity == 1`.
    pub fn put_timeout(&self, chunk: Chunk, timeout: Duration) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let var = chunk.id.variable;
        let step = chunk.id.step;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        if state.closed {
            return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
        }
        // Fail fast on out-of-sequence writes: they can never become valid.
        if step != state.protocol.next_write_step() {
            return Err(DtlError::ProtocolViolation {
                detail: format!(
                    "writer staged step {step} but the protocol expects step {}",
                    state.protocol.next_write_step()
                ),
            });
        }
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if state.closed {
                return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
            }
            if state.protocol.may_write(step) {
                // Persist the payload before advancing the protocol so a
                // failing store leaves the protocol state untouched and
                // the writer can retry. A configured retry policy does
                // that retrying in place (still before any protocol
                // mutation), budgeted against this op's deadline.
                let remaining = state.expected_readers;
                let data_len = chunk.data.len() as u64;
                let handle = run_with_retry(
                    self.retry.as_ref(),
                    Some(deadline),
                    retry_key(var, step, 1),
                    &self.retries,
                    &self.giveups,
                    || self.store.store(chunk.id, chunk.data.clone()),
                )?;
                state.protocol.record_write(step).expect("may_write checked under the same lock");
                state.slots.push(Slot {
                    id: chunk.id,
                    meta: chunk.meta,
                    handle: Some(handle),
                    remaining,
                    consumed_by: Vec::new(),
                });
                self.puts.fetch_add(1, Ordering::Relaxed);
                self.bytes_staged.fetch_add(data_len, Ordering::Relaxed);
                // Wake only this variable's readers.
                shard.reader_cv.notify_all();
                return Ok(());
            }
            if shard.writer_cv.wait_until(&mut state, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "put",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Stages a chunk with the default timeout.
    pub fn put(&self, chunk: Chunk) -> DtlResult<()> {
        self.put_timeout(chunk, DEFAULT_TIMEOUT)
    }

    /// Fetches the chunk of `step`, blocking until the writer stages it.
    /// Each reader must consume steps in order, exactly once.
    ///
    /// The protocol read is recorded only after the payload load
    /// succeeds: a failing store (e.g. file-system I/O error) leaves the
    /// protocol state untouched, so the reader can retry the same step.
    pub fn get_timeout(
        &self,
        var: VariableId,
        step: u64,
        reader: ReaderId,
        timeout: Duration,
    ) -> DtlResult<Chunk> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        {
            if state.closed {
                return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
            }
            let expected = state.protocol.next_read_step(reader)?;
            if step != expected {
                return Err(DtlError::ProtocolViolation {
                    detail: format!(
                        "{reader:?} requested step {step} but must consume step {expected} next"
                    ),
                });
            }
        }
        loop {
            // Closed staging serves nothing, including already-staged
            // chunks (see `close`).
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if state.closed {
                return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
            }
            if state.protocol.may_read(reader, step) {
                // Load the payload *before* touching any protocol state:
                // if the store fails here nothing has been consumed and
                // the reader may retry. A configured retry policy does
                // that retrying in place, still ahead of any mutation.
                let slot = state
                    .slots
                    .iter_mut()
                    .find(|s| s.id.step == step)
                    .expect("protocol admitted a read, slot must exist");
                let handle_ref =
                    slot.handle.as_ref().expect("payload present while readers remain");
                let data = run_with_retry(
                    self.retry.as_ref(),
                    Some(deadline),
                    retry_key(var, step, 0),
                    &self.retries,
                    &self.giveups,
                    || self.store.load(handle_ref),
                )?;
                let chunk = Chunk { id: slot.id, meta: slot.meta.clone(), data };
                slot.remaining -= 1;
                slot.consumed_by.push(reader);
                let release = if slot.remaining == 0 {
                    Some(slot.handle.take().expect("last reader releases the payload"))
                } else {
                    None
                };
                state
                    .protocol
                    .record_read(reader, step)
                    .expect("may_read checked under the same lock");
                if let Some(handle) = release {
                    let idx =
                        state.slots.iter().position(|s| s.id.step == step).expect("found above");
                    state.slots.remove(idx);
                    self.store.remove(handle)?;
                }
                self.gets.fetch_add(1, Ordering::Relaxed);
                self.bytes_served.fetch_add(chunk.data.len() as u64, Ordering::Relaxed);
                // A consumed read can only unblock this variable's
                // writer (reads never enable other reads).
                shard.writer_cv.notify_all();
                return Ok(chunk);
            }
            // Not yet written; wait for this variable's writer.
            if shard.reader_cv.wait_until(&mut state, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "get",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Fetches with the default timeout.
    pub fn get(&self, var: VariableId, step: u64, reader: ReaderId) -> DtlResult<Chunk> {
        self.get_timeout(var, step, reader, DEFAULT_TIMEOUT)
    }

    /// Blocks until the writer may stage `step` (all consumers of the
    /// previous chunk done under capacity 1) *without* writing — lets
    /// callers separate the idle wait (`Iˢ`) from the write itself (`W`)
    /// when measuring stages.
    pub fn wait_writable(&self, var: VariableId, step: u64, timeout: Duration) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if state.closed {
                return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
            }
            if state.protocol.may_write(step) {
                return Ok(());
            }
            if shard.writer_cv.wait_until(&mut state, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "wait_writable",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Blocks until `reader` may consume `step` *without* reading — lets
    /// callers separate the data wait (`Iᴬ`) from the read itself (`R`).
    pub fn wait_readable(
        &self,
        var: VariableId,
        step: u64,
        reader: ReaderId,
        timeout: Duration,
    ) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if state.closed {
                return Err(DtlError::VariableClosed { variable: format!("id {}", var.0) });
            }
            if state.protocol.may_read(reader, step) {
                return Ok(());
            }
            if shard.reader_cv.wait_until(&mut state, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "wait_readable",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Closes the area: pending and future blocking operations — puts
    /// *and* gets, including gets of already-staged chunks — fail with
    /// [`DtlError::Closed`]. Close is a hard teardown, not a drain:
    /// producers call it after consumers finish, and anything still in
    /// flight is an abort. (Use a capacity > 1 area and drain before
    /// closing if stragglers must finish.)
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Wake all waiters so they observe the flag. Taking each shard
        // lock orders the store before any waiter's re-check.
        let shards: Vec<_> = self.registry.read().shards.to_vec();
        for shard in shards {
            let _guard = shard.state.lock();
            shard.writer_cv.notify_all();
            shard.reader_cv.notify_all();
        }
    }

    /// Whether [`SyncStaging::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Hard-closes one variable while the rest of the area keeps
    /// running: pending and future operations on it — puts *and* gets —
    /// fail with [`DtlError::VariableClosed`]. Used by member
    /// supervision to unblock a failed member's peer without tearing
    /// the whole run down.
    pub fn close_variable(&self, var: VariableId) -> DtlResult<()> {
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        state.closed = true;
        shard.writer_cv.notify_all();
        shard.reader_cv.notify_all();
        Ok(())
    }

    /// Whether `var` is hard-closed (individually or via the area).
    pub fn is_variable_closed(&self, var: VariableId) -> bool {
        self.is_closed() || self.shard(var).map(|shard| shard.state.lock().closed).unwrap_or(false)
    }

    /// Reopens `var` with fresh protocol state and no staged chunks —
    /// the supervisor's restart path (the member reruns from step 0).
    /// Must only be called once the variable's old writer and readers
    /// have all returned.
    pub fn reset_variable(&self, var: VariableId) -> DtlResult<()> {
        let shard = self.shard(var)?;
        let mut state = shard.state.lock();
        state.closed = false;
        let readers = state.expected_readers;
        state.protocol = StepProtocol::new(readers, self.capacity);
        for slot in state.slots.drain(..) {
            if let Some(handle) = slot.handle {
                // Best effort: a store that fails to release a payload
                // must not block the restart.
                let _ = self.store.remove(handle);
            }
        }
        Ok(())
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StagingStats {
        StagingStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            bytes_staged: self.bytes_staged.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            giveups: self.giveups.load(Ordering::Relaxed),
        }
    }

    /// Access to the underlying store (e.g. memory accounting).
    pub fn store(&self) -> &B {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staging::store::MemoryStore;
    use bytes::Bytes;
    use std::sync::Arc;

    fn staging(capacity: u64) -> Arc<SyncStaging<MemoryStore>> {
        Arc::new(SyncStaging::with_capacity(MemoryStore::new(), capacity))
    }

    fn spec(readers: u32) -> VariableSpec {
        VariableSpec { name: "traj".into(), expected_readers: readers, home_node: 0 }
    }

    fn chunk(var: VariableId, step: u64, payload: &'static [u8]) -> Chunk {
        Chunk::new(var, step, 0, "raw", Bytes::from_static(payload))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"frame0")).unwrap();
        let got = s.get(var, 0, ReaderId(0)).unwrap();
        assert_eq!(got.data, Bytes::from_static(b"frame0"));
        let stats = s.stats();
        assert_eq!((stats.puts, stats.gets), (1, 1));
        assert_eq!(stats.bytes_staged, 6);
    }

    #[test]
    fn writer_blocks_until_all_readers_consume() {
        let s = staging(1);
        let var = s.register(spec(2)).unwrap();
        s.put(chunk(var, 0, b"a")).unwrap();
        // Second put must time out while readers are pending.
        let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { operation: "put", .. }), "{err}");
        s.get(var, 0, ReaderId(0)).unwrap();
        let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { .. }), "still one reader pending");
        s.get(var, 0, ReaderId(1)).unwrap();
        s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap();
    }

    #[test]
    fn reader_blocks_until_chunk_arrives() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { operation: "get", .. }));
        s.put(chunk(var, 0, b"x")).unwrap();
        assert!(s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).is_ok());
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let producer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..20u64 {
                    let c = Chunk::new(var, step, 0, "raw", Bytes::from(vec![step as u8; 64]));
                    s.put(c).unwrap();
                }
            })
        };
        let consumer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..20u64 {
                    let c = s.get(var, step, ReaderId(0)).unwrap();
                    assert_eq!(c.data[0], step as u8);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(s.stats().puts, 20);
        assert_eq!(s.stats().gets, 20);
    }

    #[test]
    fn fan_out_to_k_readers() {
        let s = staging(1);
        let var = s.register(spec(3)).unwrap();
        let producer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..10u64 {
                    s.put(Chunk::new(var, step, 0, "raw", Bytes::from(vec![1u8; 8]))).unwrap();
                }
            })
        };
        let consumers: Vec<_> = (0..3u32)
            .map(|r| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for step in 0..10u64 {
                        s.get(var, step, ReaderId(r)).unwrap();
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(s.stats().gets, 30);
        // All payloads released.
        assert_eq!(s.store().bytes_held(), 0);
    }

    #[test]
    fn out_of_order_put_rejected_immediately() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let err = s.put_timeout(chunk(var, 5, b"x"), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, DtlError::ProtocolViolation { .. }));
    }

    #[test]
    fn double_read_rejected() {
        let s = staging(1);
        let var = s.register(spec(2)).unwrap();
        s.put(chunk(var, 0, b"x")).unwrap();
        s.get(var, 0, ReaderId(0)).unwrap();
        let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, DtlError::ProtocolViolation { .. }));
    }

    #[test]
    fn close_wakes_blocked_reader() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.get_timeout(var, 0, ReaderId(0), Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        s.close();
        let res = reader.join().unwrap();
        assert!(matches!(res, Err(DtlError::Closed)));
        assert!(s.is_closed());
    }

    #[test]
    fn close_wakes_blocked_writer() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"a")).unwrap();
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.put_timeout(chunk(var, 1, b"b"), Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        s.close();
        assert!(matches!(writer.join().unwrap(), Err(DtlError::Closed)));
    }

    #[test]
    fn close_prevents_reading_already_staged_chunks() {
        // Close is a hard teardown: a chunk staged before close is not
        // served after it.
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"x")).unwrap();
        s.close();
        let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Closed), "{err}");
        // The waiting probes observe the same teardown.
        assert!(matches!(
            s.wait_readable(var, 0, ReaderId(0), Duration::from_millis(50)),
            Err(DtlError::Closed)
        ));
        assert!(matches!(
            s.wait_writable(var, 1, Duration::from_millis(50)),
            Err(DtlError::Closed)
        ));
    }

    #[test]
    fn put_after_close_fails() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.close();
        assert!(matches!(s.put(chunk(var, 0, b"x")), Err(DtlError::Closed)));
    }

    #[test]
    fn capacity_two_allows_pipelining() {
        let s = staging(2);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"a")).unwrap();
        // With double buffering the second put succeeds before any read.
        s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap();
        let err = s.put_timeout(chunk(var, 2, b"c"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { .. }));
        s.get(var, 0, ReaderId(0)).unwrap();
        s.put_timeout(chunk(var, 2, b"c"), Duration::from_millis(50)).unwrap();
    }

    #[test]
    fn unknown_variable_rejected() {
        let s = staging(1);
        let bogus = VariableId(42);
        assert!(matches!(s.put(chunk(bogus, 0, b"x")), Err(DtlError::UnknownVariable { .. })));
        assert!(matches!(
            s.get_timeout(bogus, 0, ReaderId(0), Duration::from_millis(10)),
            Err(DtlError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn close_variable_poisons_only_that_variable() {
        let s = staging(1);
        let a = s.register(spec(1)).unwrap();
        let b = s
            .register(VariableSpec { name: "other".into(), expected_readers: 1, home_node: 0 })
            .unwrap();
        s.close_variable(a).unwrap();
        assert!(s.is_variable_closed(a));
        assert!(!s.is_variable_closed(b));
        assert!(matches!(s.put(chunk(a, 0, b"x")), Err(DtlError::VariableClosed { .. })));
        assert!(matches!(
            s.get_timeout(a, 0, ReaderId(0), Duration::from_millis(10)),
            Err(DtlError::VariableClosed { .. })
        ));
        // The sibling variable still works end to end.
        s.put(chunk(b, 0, b"y")).unwrap();
        assert_eq!(s.get(b, 0, ReaderId(0)).unwrap().data, Bytes::from_static(b"y"));
    }

    #[test]
    fn close_variable_wakes_blocked_peer() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.get_timeout(var, 0, ReaderId(0), Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        s.close_variable(var).unwrap();
        assert!(matches!(reader.join().unwrap(), Err(DtlError::VariableClosed { .. })));
        assert!(!s.is_closed(), "the area itself stays open");
    }

    #[test]
    fn reset_variable_reopens_with_fresh_protocol() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"stale")).unwrap();
        s.close_variable(var).unwrap();
        s.reset_variable(var).unwrap();
        assert!(!s.is_variable_closed(var));
        // The protocol restarted from step 0 and the stale chunk is gone.
        s.put(chunk(var, 0, b"fresh")).unwrap();
        assert_eq!(s.get(var, 0, ReaderId(0)).unwrap().data, Bytes::from_static(b"fresh"));
        assert_eq!(s.store().bytes_held(), 0, "stale payload was released");
    }

    #[test]
    fn retry_policy_clears_transient_store_faults() {
        use crate::fault::{FaultInjector, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::new(5)
            .with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1))
            .with_rule(FaultRule::fail(FaultOp::Load).first_attempts(2));
        let s = SyncStaging::with_capacity(FaultInjector::new(MemoryStore::new(), plan), 1)
            .with_retry(crate::staging::retry::RetryPolicy::with_attempts(4));
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"frame")).unwrap();
        let got = s.get(var, 0, ReaderId(0)).unwrap();
        assert_eq!(got.data, Bytes::from_static(b"frame"));
        let stats = s.stats();
        assert_eq!(stats.retries, 3, "one store retry + two load retries");
        assert_eq!(stats.giveups, 0);
        assert_eq!((stats.puts, stats.gets), (1, 1));
    }

    #[test]
    fn exhausted_retries_count_as_giveups() {
        use crate::fault::{FaultInjector, FaultOp, FaultPlan, FaultRule};
        let plan = FaultPlan::new(0).with_rule(FaultRule::fail(FaultOp::Store));
        let s = SyncStaging::with_capacity(FaultInjector::new(MemoryStore::new(), plan), 1)
            .with_retry(crate::staging::retry::RetryPolicy::with_attempts(2));
        let var = s.register(spec(1)).unwrap();
        let err = s.put_timeout(chunk(var, 0, b"x"), Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, DtlError::Io(_)), "{err}");
        let stats = s.stats();
        assert_eq!((stats.retries, stats.giveups, stats.puts), (1, 1, 0));
    }

    #[test]
    fn reregistration_reuses_the_shard() {
        let s = staging(1);
        let a = s.register(spec(1)).unwrap();
        let b = s.register(spec(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.variable_count(), 1);
        // The shard still works after idempotent re-registration.
        s.put(chunk(a, 0, b"x")).unwrap();
        s.get(b, 0, ReaderId(0)).unwrap();
    }
}
