//! The synchronous staging area: blocking put/get with the paper's
//! no-overwrite protocol, generic over the physical tier.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::chunk::{Chunk, ChunkId, ChunkMeta};
use crate::error::{DtlError, DtlResult};
use crate::protocol::{ReaderId, StepProtocol};
use crate::staging::store::ChunkStore;
use crate::variable::{VariableId, VariableRegistry, VariableSpec};

/// Operation counters of a staging area.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagingStats {
    /// Chunks staged.
    pub puts: u64,
    /// Chunk reads served.
    pub gets: u64,
    /// Payload bytes staged.
    pub bytes_staged: u64,
    /// Payload bytes served to readers.
    pub bytes_served: u64,
}

struct Slot<H> {
    id: ChunkId,
    meta: ChunkMeta,
    handle: Option<H>,
    remaining: u32,
    consumed_by: Vec<ReaderId>,
}

struct VarState<H> {
    protocol: StepProtocol,
    slots: Vec<Slot<H>>,
}

struct Inner<H> {
    registry: VariableRegistry,
    vars: HashMap<VariableId, VarState<H>>,
}

/// A blocking staging area enforcing `W₀ R₀ W₁ R₁ …` per variable.
///
/// With `capacity = 1` this is the paper's DIMES-style unbuffered
/// in-memory staging; higher capacities model burst-buffer-like queueing
/// (the buffering ablation).
pub struct SyncStaging<B: ChunkStore> {
    store: B,
    capacity: u64,
    inner: Mutex<Inner<B::Handle>>,
    cv: Condvar,
    closed: AtomicBool,
    puts: AtomicU64,
    gets: AtomicU64,
    bytes_staged: AtomicU64,
    bytes_served: AtomicU64,
}

/// Default timeout for blocking operations — generous enough for real
/// kernels, small enough that a deadlocked test fails quickly.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

impl<B: ChunkStore> SyncStaging<B> {
    /// Creates a staging area over `store` with the given in-flight
    /// chunk capacity per variable.
    pub fn with_capacity(store: B, capacity: u64) -> Self {
        assert!(capacity > 0);
        SyncStaging {
            store,
            capacity,
            inner: Mutex::new(Inner { registry: VariableRegistry::new(), vars: HashMap::new() }),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            bytes_staged: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
        }
    }

    /// The physical tier name ("memory", "pfs", …).
    pub fn tier(&self) -> &'static str {
        self.store.tier()
    }

    /// Registers a variable.
    pub fn register(&self, spec: VariableSpec) -> DtlResult<VariableId> {
        let mut inner = self.inner.lock();
        let readers = spec.expected_readers;
        let id = inner.registry.register(spec)?;
        inner
            .vars
            .entry(id)
            .or_insert_with(|| VarState { protocol: StepProtocol::new(readers, self.capacity), slots: Vec::new() });
        Ok(id)
    }

    /// Looks up a registered variable by name.
    pub fn lookup(&self, name: &str) -> DtlResult<VariableId> {
        self.inner.lock().registry.lookup(name)
    }

    /// The spec of a registered variable.
    pub fn variable_spec(&self, id: VariableId) -> VariableSpec {
        self.inner.lock().registry.spec(id).clone()
    }

    /// Stages a chunk, blocking (up to `timeout`) until the protocol
    /// admits it — i.e. until the previous chunk is fully consumed when
    /// `capacity == 1`.
    pub fn put_timeout(&self, chunk: Chunk, timeout: Duration) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        let var = chunk.id.variable;
        let step = chunk.id.step;
        // Fail fast on out-of-sequence writes: they can never become valid.
        {
            let state = inner.vars.get(&var).ok_or_else(|| DtlError::UnknownVariable {
                name: format!("id {}", var.0),
            })?;
            if step != state.protocol.next_write_step() {
                return Err(DtlError::ProtocolViolation {
                    detail: format!(
                        "writer staged step {step} but the protocol expects step {}",
                        state.protocol.next_write_step()
                    ),
                });
            }
        }
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            let state = inner.vars.get_mut(&var).expect("validated above");
            if state.protocol.may_write(step) {
                state.protocol.record_write(step)?;
                let remaining = self.inner_spec_readers(&inner.registry, var);
                let data_len = chunk.data.len() as u64;
                let handle = self.store.store(chunk.id, chunk.data)?;
                let state = inner.vars.get_mut(&var).expect("still present");
                state.slots.push(Slot {
                    id: chunk.id,
                    meta: chunk.meta,
                    handle: Some(handle),
                    remaining,
                    consumed_by: Vec::new(),
                });
                self.puts.fetch_add(1, Ordering::Relaxed);
                self.bytes_staged.fetch_add(data_len, Ordering::Relaxed);
                self.cv.notify_all();
                return Ok(());
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "put",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    fn inner_spec_readers(&self, registry: &VariableRegistry, var: VariableId) -> u32 {
        registry.spec(var).expected_readers
    }

    /// Stages a chunk with the default timeout.
    pub fn put(&self, chunk: Chunk) -> DtlResult<()> {
        self.put_timeout(chunk, DEFAULT_TIMEOUT)
    }

    /// Fetches the chunk of `step`, blocking until the writer stages it.
    /// Each reader must consume steps in order, exactly once.
    pub fn get_timeout(
        &self,
        var: VariableId,
        step: u64,
        reader: ReaderId,
        timeout: Duration,
    ) -> DtlResult<Chunk> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        {
            let state = inner.vars.get(&var).ok_or_else(|| DtlError::UnknownVariable {
                name: format!("id {}", var.0),
            })?;
            let expected = state.protocol.next_read_step(reader)?;
            if step != expected {
                return Err(DtlError::ProtocolViolation {
                    detail: format!(
                        "{reader:?} requested step {step} but must consume step {expected} next"
                    ),
                });
            }
        }
        loop {
            let state = inner.vars.get_mut(&var).expect("validated above");
            if state.protocol.may_read(reader, step) {
                state.protocol.record_read(reader, step)?;
                let slot = state
                    .slots
                    .iter_mut()
                    .find(|s| s.id.step == step)
                    .expect("protocol admitted a read, slot must exist");
                slot.remaining -= 1;
                slot.consumed_by.push(reader);
                let handle_ref = slot.handle.as_ref().expect("payload present while readers remain");
                let data = self.store.load(handle_ref)?;
                let chunk = Chunk { id: slot.id, meta: slot.meta.clone(), data };
                if slot.remaining == 0 {
                    let handle = slot.handle.take().expect("last reader releases the payload");
                    let idx = state.slots.iter().position(|s| s.id.step == step).expect("found above");
                    state.slots.remove(idx);
                    self.store.remove(handle)?;
                }
                self.gets.fetch_add(1, Ordering::Relaxed);
                self.bytes_served.fetch_add(chunk.data.len() as u64, Ordering::Relaxed);
                self.cv.notify_all();
                return Ok(chunk);
            }
            // Not yet written. If the area is closed it never will be.
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "get",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Fetches with the default timeout.
    pub fn get(&self, var: VariableId, step: u64, reader: ReaderId) -> DtlResult<Chunk> {
        self.get_timeout(var, step, reader, DEFAULT_TIMEOUT)
    }

    /// Blocks until the writer may stage `step` (all consumers of the
    /// previous chunk done under capacity 1) *without* writing — lets
    /// callers separate the idle wait (`Iˢ`) from the write itself (`W`)
    /// when measuring stages.
    pub fn wait_writable(&self, var: VariableId, step: u64, timeout: Duration) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            let state = inner.vars.get(&var).ok_or_else(|| DtlError::UnknownVariable {
                name: format!("id {}", var.0),
            })?;
            if state.protocol.may_write(step) {
                return Ok(());
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "wait_writable",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Blocks until `reader` may consume `step` *without* reading — lets
    /// callers separate the data wait (`Iᴬ`) from the read itself (`R`).
    pub fn wait_readable(
        &self,
        var: VariableId,
        step: u64,
        reader: ReaderId,
        timeout: Duration,
    ) -> DtlResult<()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let state = inner.vars.get(&var).ok_or_else(|| DtlError::UnknownVariable {
                name: format!("id {}", var.0),
            })?;
            if state.protocol.may_read(reader, step) {
                return Ok(());
            }
            if self.closed.load(Ordering::Acquire) {
                return Err(DtlError::Closed);
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(DtlError::Timeout {
                    operation: "wait_readable",
                    variable: format!("id {}", var.0),
                    step,
                });
            }
        }
    }

    /// Closes the area: pending and future blocking operations fail with
    /// [`DtlError::Closed`] (already-staged chunks can no longer be read;
    /// producers call this after consumers finish).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Wake all waiters so they observe the flag.
        let _guard = self.inner.lock();
        self.cv.notify_all();
    }

    /// Whether [`SyncStaging::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StagingStats {
        StagingStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            bytes_staged: self.bytes_staged.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
        }
    }

    /// Access to the underlying store (e.g. memory accounting).
    pub fn store(&self) -> &B {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staging::store::MemoryStore;
    use bytes::Bytes;
    use std::sync::Arc;

    fn staging(capacity: u64) -> Arc<SyncStaging<MemoryStore>> {
        Arc::new(SyncStaging::with_capacity(MemoryStore::new(), capacity))
    }

    fn spec(readers: u32) -> VariableSpec {
        VariableSpec { name: "traj".into(), expected_readers: readers, home_node: 0 }
    }

    fn chunk(var: VariableId, step: u64, payload: &'static [u8]) -> Chunk {
        Chunk::new(var, step, 0, "raw", Bytes::from_static(payload))
    }

    #[test]
    fn put_get_roundtrip() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"frame0")).unwrap();
        let got = s.get(var, 0, ReaderId(0)).unwrap();
        assert_eq!(got.data, Bytes::from_static(b"frame0"));
        let stats = s.stats();
        assert_eq!((stats.puts, stats.gets), (1, 1));
        assert_eq!(stats.bytes_staged, 6);
    }

    #[test]
    fn writer_blocks_until_all_readers_consume() {
        let s = staging(1);
        let var = s.register(spec(2)).unwrap();
        s.put(chunk(var, 0, b"a")).unwrap();
        // Second put must time out while readers are pending.
        let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { operation: "put", .. }), "{err}");
        s.get(var, 0, ReaderId(0)).unwrap();
        let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { .. }), "still one reader pending");
        s.get(var, 0, ReaderId(1)).unwrap();
        s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap();
    }

    #[test]
    fn reader_blocks_until_chunk_arrives() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { operation: "get", .. }));
        s.put(chunk(var, 0, b"x")).unwrap();
        assert!(s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).is_ok());
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let producer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..20u64 {
                    let c = Chunk::new(var, step, 0, "raw", Bytes::from(vec![step as u8; 64]));
                    s.put(c).unwrap();
                }
            })
        };
        let consumer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..20u64 {
                    let c = s.get(var, step, ReaderId(0)).unwrap();
                    assert_eq!(c.data[0], step as u8);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert_eq!(s.stats().puts, 20);
        assert_eq!(s.stats().gets, 20);
    }

    #[test]
    fn fan_out_to_k_readers() {
        let s = staging(1);
        let var = s.register(spec(3)).unwrap();
        let producer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for step in 0..10u64 {
                    s.put(Chunk::new(var, step, 0, "raw", Bytes::from(vec![1u8; 8]))).unwrap();
                }
            })
        };
        let consumers: Vec<_> = (0..3u32)
            .map(|r| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for step in 0..10u64 {
                        s.get(var, step, ReaderId(r)).unwrap();
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(s.stats().gets, 30);
        // All payloads released.
        assert_eq!(s.store().bytes_held(), 0);
    }

    #[test]
    fn out_of_order_put_rejected_immediately() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let err = s.put_timeout(chunk(var, 5, b"x"), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, DtlError::ProtocolViolation { .. }));
    }

    #[test]
    fn double_read_rejected() {
        let s = staging(1);
        let var = s.register(spec(2)).unwrap();
        s.put(chunk(var, 0, b"x")).unwrap();
        s.get(var, 0, ReaderId(0)).unwrap();
        let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, DtlError::ProtocolViolation { .. }));
    }

    #[test]
    fn close_wakes_blocked_reader() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.get_timeout(var, 0, ReaderId(0), Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        s.close();
        let res = reader.join().unwrap();
        assert!(matches!(res, Err(DtlError::Closed)));
        assert!(s.is_closed());
    }

    #[test]
    fn put_after_close_fails() {
        let s = staging(1);
        let var = s.register(spec(1)).unwrap();
        s.close();
        assert!(matches!(s.put(chunk(var, 0, b"x")), Err(DtlError::Closed)));
    }

    #[test]
    fn capacity_two_allows_pipelining() {
        let s = staging(2);
        let var = s.register(spec(1)).unwrap();
        s.put(chunk(var, 0, b"a")).unwrap();
        // With double buffering the second put succeeds before any read.
        s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap();
        let err = s.put_timeout(chunk(var, 2, b"c"), Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, DtlError::Timeout { .. }));
        s.get(var, 0, ReaderId(0)).unwrap();
        s.put_timeout(chunk(var, 2, b"c"), Duration::from_millis(50)).unwrap();
    }

    #[test]
    fn unknown_variable_rejected() {
        let s = staging(1);
        let bogus = VariableId(42);
        assert!(matches!(s.put(chunk(bogus, 0, b"x")), Err(DtlError::UnknownVariable { .. })));
        assert!(matches!(
            s.get_timeout(bogus, 0, ReaderId(0), Duration::from_millis(10)),
            Err(DtlError::UnknownVariable { .. })
        ));
    }
}
