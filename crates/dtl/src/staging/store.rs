//! Chunk payload stores: where staged bytes physically live.
//!
//! The staging *protocol* is identical across tiers; what differs is the
//! backing medium — node memory (DIMES), a burst buffer, or the parallel
//! file system. [`ChunkStore`] abstracts that medium.

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::chunk::ChunkId;
use crate::error::DtlResult;

/// A physical backing store for chunk payloads.
pub trait ChunkStore: Send + Sync {
    /// Opaque handle to a stored payload.
    type Handle: Send;

    /// Persists a payload, returning its handle.
    fn store(&self, id: ChunkId, data: Bytes) -> DtlResult<Self::Handle>;

    /// Retrieves a payload.
    fn load(&self, handle: &Self::Handle) -> DtlResult<Bytes>;

    /// Releases a payload once fully consumed.
    fn remove(&self, handle: Self::Handle) -> DtlResult<()>;

    /// Human-readable tier name.
    fn tier(&self) -> &'static str;
}

/// In-memory store: payloads stay in the producing node's DRAM, as DIMES
/// keeps them. Loads are refcounted clones (no copy).
#[derive(Debug, Default)]
pub struct MemoryStore {
    bytes_held: AtomicU64,
}

impl MemoryStore {
    /// A fresh store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently resident.
    pub fn bytes_held(&self) -> u64 {
        self.bytes_held.load(Ordering::Relaxed)
    }
}

impl ChunkStore for MemoryStore {
    type Handle = Bytes;

    fn store(&self, _id: ChunkId, data: Bytes) -> DtlResult<Bytes> {
        self.bytes_held.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn load(&self, handle: &Bytes) -> DtlResult<Bytes> {
        Ok(handle.clone())
    }

    fn remove(&self, handle: Bytes) -> DtlResult<()> {
        self.bytes_held.fetch_sub(handle.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn tier(&self) -> &'static str {
        "memory"
    }
}

/// File-system store: each chunk becomes a file under the given root —
/// the parallel-file-system tier (real I/O, the loose-coupling baseline
/// the in situ paradigm replaces).
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl FileStore {
    /// Creates the root directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> DtlResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileStore { root, seq: AtomicU64::new(0) })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

impl ChunkStore for FileStore {
    type Handle = PathBuf;

    fn store(&self, id: ChunkId, data: Bytes) -> DtlResult<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.root.join(format!("var{}_step{}_{seq}.chunk", id.variable.0, id.step));
        let mut f = fs::File::create(&path)?;
        f.write_all(&data)?;
        f.sync_all()?;
        Ok(path)
    }

    fn load(&self, handle: &PathBuf) -> DtlResult<Bytes> {
        let mut f = fs::File::open(handle)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn remove(&self, handle: PathBuf) -> DtlResult<()> {
        fs::remove_file(handle)?;
        Ok(())
    }

    fn tier(&self) -> &'static str {
        "pfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variable::VariableId;

    fn id() -> ChunkId {
        ChunkId { variable: VariableId(0), step: 3 }
    }

    #[test]
    fn memory_store_roundtrip_and_accounting() {
        let s = MemoryStore::new();
        let h = s.store(id(), Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.bytes_held(), 5);
        assert_eq!(s.load(&h).unwrap(), Bytes::from_static(b"hello"));
        s.remove(h).unwrap();
        assert_eq!(s.bytes_held(), 0);
        assert_eq!(s.tier(), "memory");
    }

    #[test]
    fn file_store_roundtrip_and_cleanup() {
        let dir = std::env::temp_dir().join(format!("dtl-test-{}", std::process::id()));
        let s = FileStore::new(&dir).unwrap();
        let h = s.store(id(), Bytes::from_static(b"persisted")).unwrap();
        assert!(h.exists());
        assert_eq!(s.load(&h).unwrap(), Bytes::from_static(b"persisted"));
        s.remove(h.clone()).unwrap();
        assert!(!h.exists());
        assert_eq!(s.tier(), "pfs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_distinct_paths_for_same_id() {
        let dir = std::env::temp_dir().join(format!("dtl-test2-{}", std::process::id()));
        let s = FileStore::new(&dir).unwrap();
        let a = s.store(id(), Bytes::from_static(b"a")).unwrap();
        let b = s.store(id(), Bytes::from_static(b"b")).unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
