//! Retry policy for transient store errors on the staging hot paths.
//!
//! Only backing-store I/O ([`DtlError::Io`]) is considered transient —
//! protocol violations, timeouts, and closure are permanent for the
//! attempted operation. Backoff is capped exponential with seeded,
//! deterministic jitter, and every retry is budgeted against the
//! operation's own deadline: a retrying op never outlives the timeout
//! the caller asked for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::error::{DtlError, DtlResult};

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the jitter (mixed with the op key, so concurrent
    /// retries don't sleep in lockstep).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter: 0.25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and default backoff.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), ..Default::default() }
    }

    /// The backoff before retry number `retry` (1-based) of the op
    /// identified by `key`.
    pub fn backoff_for(&self, retry: u32, key: u64) -> Duration {
        let exp =
            self.base_backoff.saturating_mul(1u32 << (retry - 1).min(16)).min(self.max_backoff);
        if self.jitter <= 0.0 {
            return exp;
        }
        let h = splitmix64(self.seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(retry));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 - self.jitter.clamp(0.0, 1.0) * unit;
        exp.mul_f64(factor)
    }
}

/// Deterministic jitter key for one staging op (`side`: 0 = read,
/// 1 = write).
pub(crate) fn op_key(var: crate::variable::VariableId, step: u64, side: u64) -> u64 {
    (u64::from(var.0) << 33) ^ (step << 1) ^ side
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// True for errors a retry may clear.
pub(crate) fn is_transient(e: &DtlError) -> bool {
    matches!(e, DtlError::Io(_))
}

/// Runs `op`, retrying transient errors under `policy` until the
/// attempts or the `deadline` budget run out. `retries`/`giveups` are
/// the caller's counters (a giveup is a transient error returned to the
/// caller because the budget was exhausted).
pub(crate) fn run_with_retry<T>(
    policy: Option<&RetryPolicy>,
    deadline: Option<Instant>,
    key: u64,
    retries: &AtomicU64,
    giveups: &AtomicU64,
    mut op: impl FnMut() -> DtlResult<T>,
) -> DtlResult<T> {
    let mut attempt: u32 = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) => {
                let Some(policy) = policy else { return Err(e) };
                if attempt >= policy.max_attempts {
                    giveups.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                let backoff = policy.backoff_for(attempt, key);
                if deadline.is_some_and(|d| Instant::now() + backoff >= d) {
                    giveups.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(fail_first: u32) -> impl FnMut() -> DtlResult<u32> {
        let mut calls = 0u32;
        move || {
            calls += 1;
            if calls <= fail_first {
                Err(DtlError::Io(std::io::Error::other("transient")))
            } else {
                Ok(calls)
            }
        }
    }

    #[test]
    fn no_policy_means_single_attempt() {
        let (r, g) = (AtomicU64::new(0), AtomicU64::new(0));
        let out = run_with_retry(None, None, 0, &r, &g, flaky(1));
        assert!(out.is_err());
        assert_eq!((r.load(Ordering::Relaxed), g.load(Ordering::Relaxed)), (0, 0));
    }

    #[test]
    fn retries_clear_transient_errors() {
        let policy = RetryPolicy::with_attempts(3);
        let (r, g) = (AtomicU64::new(0), AtomicU64::new(0));
        let out = run_with_retry(Some(&policy), None, 7, &r, &g, flaky(2)).unwrap();
        assert_eq!(out, 3, "succeeded on the third attempt");
        assert_eq!((r.load(Ordering::Relaxed), g.load(Ordering::Relaxed)), (2, 0));
    }

    #[test]
    fn attempts_exhausted_is_a_giveup() {
        let policy = RetryPolicy::with_attempts(2);
        let (r, g) = (AtomicU64::new(0), AtomicU64::new(0));
        let out = run_with_retry(Some(&policy), None, 0, &r, &g, flaky(10));
        assert!(matches!(out, Err(DtlError::Io(_))));
        assert_eq!((r.load(Ordering::Relaxed), g.load(Ordering::Relaxed)), (1, 1));
    }

    #[test]
    fn deadline_bounds_the_budget() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            jitter: 0.0,
            seed: 0,
        };
        let (r, g) = (AtomicU64::new(0), AtomicU64::new(0));
        let deadline = Instant::now() + Duration::from_millis(50);
        let t0 = Instant::now();
        let out = run_with_retry(Some(&policy), Some(deadline), 0, &r, &g, flaky(1000));
        assert!(out.is_err());
        assert!(t0.elapsed() < Duration::from_millis(500), "must stop near the deadline");
        assert_eq!(g.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let policy = RetryPolicy::with_attempts(5);
        let (r, g) = (AtomicU64::new(0), AtomicU64::new(0));
        let out: DtlResult<()> =
            run_with_retry(Some(&policy), None, 0, &r, &g, || Err(DtlError::Closed));
        assert!(matches!(out, Err(DtlError::Closed)));
        assert_eq!(r.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(16),
            jitter: 0.0,
            seed: 0,
        };
        assert_eq!(policy.backoff_for(1, 0), Duration::from_millis(2));
        assert_eq!(policy.backoff_for(2, 0), Duration::from_millis(4));
        assert_eq!(policy.backoff_for(4, 0), Duration::from_millis(16));
        assert_eq!(policy.backoff_for(9, 0), Duration::from_millis(16), "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(10),
            jitter: 0.5,
            seed: 3,
        };
        let a = policy.backoff_for(1, 42);
        let b = policy.backoff_for(1, 42);
        assert_eq!(a, b);
        assert!(a <= Duration::from_millis(10));
        assert!(a >= Duration::from_millis(5));
        assert_ne!(policy.backoff_for(1, 42), policy.backoff_for(1, 43), "key varies jitter");
    }
}
