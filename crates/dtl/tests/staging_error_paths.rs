//! Error-path regressions for the staging protocol.
//!
//! The protocol state machine must only advance when the operation it
//! gates actually happened. A store that fails mid-operation (the PFS
//! tier does real I/O) must leave the protocol exactly where it was, so
//! the caller can retry — not silently consume a read it never served.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use dtl::staging::{ChunkStore, MemoryStore, SyncStaging};
use dtl::{Chunk, ChunkId, DtlError, ReaderId, VariableSpec};

/// A memory store whose `load`/`store` can be made to fail on demand —
/// stands in for a flaky parallel file system.
#[derive(Default)]
struct FlakyStore {
    inner: MemoryStore,
    fail_loads: AtomicBool,
    fail_stores: AtomicBool,
    loads_attempted: AtomicU64,
}

impl FlakyStore {
    fn fail_loads(&self, on: bool) {
        self.fail_loads.store(on, Ordering::SeqCst);
    }
    fn fail_stores(&self, on: bool) {
        self.fail_stores.store(on, Ordering::SeqCst);
    }
}

impl ChunkStore for FlakyStore {
    type Handle = Bytes;

    fn store(&self, id: ChunkId, data: Bytes) -> Result<Bytes, DtlError> {
        if self.fail_stores.load(Ordering::SeqCst) {
            return Err(std::io::Error::other("injected store failure").into());
        }
        self.inner.store(id, data)
    }

    fn load(&self, handle: &Bytes) -> Result<Bytes, DtlError> {
        self.loads_attempted.fetch_add(1, Ordering::SeqCst);
        if self.fail_loads.load(Ordering::SeqCst) {
            return Err(std::io::Error::other("injected load failure").into());
        }
        self.inner.load(handle)
    }

    fn remove(&self, handle: Bytes) -> Result<(), DtlError> {
        self.inner.remove(handle)
    }

    fn tier(&self) -> &'static str {
        "flaky"
    }
}

fn staging() -> SyncStaging<FlakyStore> {
    SyncStaging::with_capacity(FlakyStore::default(), 1)
}

fn spec(readers: u32) -> VariableSpec {
    VariableSpec { name: "traj".into(), expected_readers: readers, home_node: 0 }
}

fn chunk(var: dtl::VariableId, step: u64, payload: &'static [u8]) -> Chunk {
    Chunk::new(var, step, 0, "raw", Bytes::from_static(payload))
}

#[test]
fn failed_load_leaves_the_read_retryable() {
    let s = staging();
    let var = s.register(spec(1)).unwrap();
    s.put(chunk(var, 0, b"frame0")).unwrap();

    // First read attempt hits a store failure.
    s.store().fail_loads(true);
    let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::Io(_)), "load failure must surface as Io, got {err}");
    assert_eq!(s.store().loads_attempted.load(Ordering::SeqCst), 1);

    // Nothing was consumed: no get recorded, no bytes served.
    let stats = s.stats();
    assert_eq!(stats.gets, 0, "a failed load must not count as a served read");
    assert_eq!(stats.bytes_served, 0);

    // The store recovers; the *same* step must still be readable.
    s.store().fail_loads(false);
    let got = s
        .get_timeout(var, 0, ReaderId(0), Duration::from_millis(200))
        .expect("step 0 must remain consumable after a transient load failure");
    assert_eq!(got.data, Bytes::from_static(b"frame0"));
    let stats = s.stats();
    assert_eq!((stats.gets, stats.bytes_served), (1, 6));
}

#[test]
fn failed_load_does_not_unblock_the_writer() {
    let s = staging();
    let var = s.register(spec(1)).unwrap();
    s.put(chunk(var, 0, b"a")).unwrap();

    s.store().fail_loads(true);
    let _ = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();

    // Step 0 was *not* consumed, so capacity-1 staging must still refuse
    // the next write.
    let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
    assert!(
        matches!(err, DtlError::Timeout { .. }),
        "writer must stay blocked after a failed read, got {err}"
    );

    // After a successful retry the writer proceeds.
    s.store().fail_loads(false);
    s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(200)).unwrap();
}

#[test]
fn failed_load_with_two_readers_only_retries_the_failed_one() {
    let s = staging();
    let var = s.register(spec(2)).unwrap();
    s.put(chunk(var, 0, b"xy")).unwrap();

    // Reader 0 succeeds, then reader 1 hits the failure.
    s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    s.store().fail_loads(true);
    let _ = s.get_timeout(var, 0, ReaderId(1), Duration::from_millis(50)).unwrap_err();
    s.store().fail_loads(false);

    // Reader 1 retries its step; reader 0 must not be able to re-read.
    s.get_timeout(var, 0, ReaderId(1), Duration::from_millis(200)).unwrap();
    let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::ProtocolViolation { .. }));

    let stats = s.stats();
    assert_eq!(stats.gets, 2);
    assert_eq!(stats.bytes_served, 4);
}

#[test]
fn failed_store_leaves_the_write_retryable() {
    let s = staging();
    let var = s.register(spec(1)).unwrap();

    s.store().fail_stores(true);
    let err = s.put_timeout(chunk(var, 0, b"a"), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::Io(_)), "{err}");
    assert_eq!(s.stats().puts, 0, "a failed store must not count as staged");

    // Same step writes fine once the store recovers — the protocol never
    // advanced.
    s.store().fail_stores(false);
    s.put_timeout(chunk(var, 0, b"a"), Duration::from_millis(200)).unwrap();
    let got = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    assert_eq!(got.data, Bytes::from_static(b"a"));
}
