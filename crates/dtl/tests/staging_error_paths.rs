//! Error-path regressions for the staging protocol, driven by the
//! library's own fault injector.
//!
//! The protocol state machine must only advance when the operation it
//! gates actually happened. A store that fails mid-operation (the PFS
//! tier does real I/O) must leave the protocol exactly where it was, so
//! the caller can retry — not silently consume a read it never served.

use std::time::Duration;

use bytes::Bytes;
use dtl::staging::{MemoryStore, SyncStaging};
use dtl::{Chunk, DtlError, FaultInjector, FaultOp, FaultPlan, FaultRule, ReaderId, VariableSpec};

/// Staging over a fault-injecting memory store — stands in for a flaky
/// parallel file system. Each rule's `first_attempts(1)` window models
/// a transient fault that clears on retry.
fn staging(plan: FaultPlan) -> SyncStaging<FaultInjector<MemoryStore>> {
    SyncStaging::with_capacity(FaultInjector::new(MemoryStore::new(), plan), 1)
}

fn spec(readers: u32) -> VariableSpec {
    VariableSpec { name: "traj".into(), expected_readers: readers, home_node: 0 }
}

fn chunk(var: dtl::VariableId, step: u64, payload: &'static [u8]) -> Chunk {
    Chunk::new(var, step, 0, "raw", Bytes::from_static(payload))
}

#[test]
fn failed_load_leaves_the_read_retryable() {
    let plan = FaultPlan::new(1).with_rule(FaultRule::fail(FaultOp::Load).first_attempts(1));
    let s = staging(plan);
    let var = s.register(spec(1)).unwrap();
    s.put(chunk(var, 0, b"frame0")).unwrap();

    // First read attempt hits the injected store failure.
    let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::Io(_)), "load failure must surface as Io, got {err}");
    assert_eq!(s.store().stats().loads, 1);

    // Nothing was consumed: no get recorded, no bytes served.
    let stats = s.stats();
    assert_eq!(stats.gets, 0, "a failed load must not count as a served read");
    assert_eq!(stats.bytes_served, 0);

    // The fault window has passed; the *same* step must still be
    // readable.
    let got = s
        .get_timeout(var, 0, ReaderId(0), Duration::from_millis(200))
        .expect("step 0 must remain consumable after a transient load failure");
    assert_eq!(got.data, Bytes::from_static(b"frame0"));
    let stats = s.stats();
    assert_eq!((stats.gets, stats.bytes_served), (1, 6));
    assert_eq!(s.store().stats().injected_failures, 1);
}

#[test]
fn failed_load_does_not_unblock_the_writer() {
    let plan = FaultPlan::new(2).with_rule(FaultRule::fail(FaultOp::Load).first_attempts(1));
    let s = staging(plan);
    let var = s.register(spec(1)).unwrap();
    s.put(chunk(var, 0, b"a")).unwrap();

    let _ = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();

    // Step 0 was *not* consumed, so capacity-1 staging must still refuse
    // the next write.
    let err = s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(50)).unwrap_err();
    assert!(
        matches!(err, DtlError::Timeout { .. }),
        "writer must stay blocked after a failed read, got {err}"
    );

    // After a successful retry the writer proceeds.
    s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    s.put_timeout(chunk(var, 1, b"b"), Duration::from_millis(200)).unwrap();
}

#[test]
fn failed_load_with_two_readers_only_retries_the_failed_one() {
    // Reader 0's load is the key's first attempt (passes); reader 1's is
    // the second (fails); reader 1's retry is the third (passes again).
    let plan = FaultPlan::new(3)
        .with_rule(FaultRule::fail(FaultOp::Load).after_attempts(1).first_attempts(1));
    let s = staging(plan);
    let var = s.register(spec(2)).unwrap();
    s.put(chunk(var, 0, b"xy")).unwrap();

    s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    let _ = s.get_timeout(var, 0, ReaderId(1), Duration::from_millis(50)).unwrap_err();

    // Reader 1 retries its step; reader 0 must not be able to re-read.
    s.get_timeout(var, 0, ReaderId(1), Duration::from_millis(200)).unwrap();
    let err = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::ProtocolViolation { .. }));

    let stats = s.stats();
    assert_eq!(stats.gets, 2);
    assert_eq!(stats.bytes_served, 4);
}

#[test]
fn failed_store_leaves_the_write_retryable() {
    let plan = FaultPlan::new(4).with_rule(FaultRule::fail(FaultOp::Store).first_attempts(1));
    let s = staging(plan);
    let var = s.register(spec(1)).unwrap();

    let err = s.put_timeout(chunk(var, 0, b"a"), Duration::from_millis(50)).unwrap_err();
    assert!(matches!(err, DtlError::Io(_)), "{err}");
    assert_eq!(s.stats().puts, 0, "a failed store must not count as staged");

    // Same step writes fine once the fault window passes — the protocol
    // never advanced.
    s.put_timeout(chunk(var, 0, b"a"), Duration::from_millis(200)).unwrap();
    let got = s.get_timeout(var, 0, ReaderId(0), Duration::from_millis(200)).unwrap();
    assert_eq!(got.data, Bytes::from_static(b"a"));
    assert_eq!(s.store().stats().injected_failures, 1);
}
