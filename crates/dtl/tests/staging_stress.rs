//! Multi-threaded stress tests for the sharded staging area: many
//! writers and readers over many variables, all at once. An ensemble of
//! N members is N independent `W₀ R₀ W₁ R₁ …` couplings; per-variable
//! locking must keep them independent in practice — correct ordering,
//! consistent stats, and no deadlock.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use dtl::staging::{self, InMemoryStaging};
use dtl::{Chunk, DtlError, ReaderId, VariableId, VariableSpec};

const VARIABLES: usize = 12;
const STEPS: u64 = 64;
const READERS: u32 = 3;
const TIMEOUT: Duration = Duration::from_secs(30);

fn payload(var: VariableId, step: u64) -> Bytes {
    // Distinct, checkable content per (variable, step).
    let tag = (var.0 as u64) << 32 | step;
    Bytes::from(tag.to_le_bytes().to_vec())
}

fn run_ensemble(staging: &Arc<InMemoryStaging>, vars: &[VariableId]) {
    std::thread::scope(|scope| {
        for &var in vars {
            let s = Arc::clone(staging);
            scope.spawn(move || {
                for step in 0..STEPS {
                    let c = Chunk::new(var, step, 0, "raw", payload(var, step));
                    s.put_timeout(c, TIMEOUT).unwrap();
                }
            });
            for reader in 0..READERS {
                let s = Arc::clone(staging);
                scope.spawn(move || {
                    for step in 0..STEPS {
                        let c = s.get_timeout(var, step, ReaderId(reader), TIMEOUT).unwrap();
                        assert_eq!(c.id.variable, var);
                        assert_eq!(c.id.step, step, "reads must arrive in protocol order");
                        assert_eq!(c.data, payload(var, step), "no cross-variable bleed");
                    }
                });
            }
        }
    });
}

#[test]
fn many_writers_and_readers_no_deadlock_and_stats_balance() {
    let staging = Arc::new(staging::dimes());
    let vars: Vec<VariableId> = (0..VARIABLES)
        .map(|i| {
            staging
                .register(VariableSpec {
                    name: format!("var{i}"),
                    expected_readers: READERS,
                    home_node: 0,
                })
                .unwrap()
        })
        .collect();

    run_ensemble(&staging, &vars);

    let stats = staging.stats();
    let puts = (VARIABLES as u64) * STEPS;
    assert_eq!(stats.puts, puts);
    assert_eq!(stats.gets, puts * READERS as u64, "gets == puts × readers_per_chunk");
    assert_eq!(stats.bytes_served, stats.bytes_staged * READERS as u64);
    // Every chunk fully consumed → memory fully reclaimed.
    assert_eq!(staging.store().bytes_held(), 0);
}

#[test]
fn pipelined_capacity_stress_keeps_per_variable_fifo() {
    let staging = Arc::new(staging::burst_buffer(4));
    let vars: Vec<VariableId> = (0..VARIABLES)
        .map(|i| {
            staging
                .register(VariableSpec {
                    name: format!("var{i}"),
                    expected_readers: READERS,
                    home_node: 0,
                })
                .unwrap()
        })
        .collect();

    run_ensemble(&staging, &vars);

    let stats = staging.stats();
    assert_eq!(stats.puts, (VARIABLES as u64) * STEPS);
    assert_eq!(stats.gets, stats.puts * READERS as u64);
    assert_eq!(staging.store().bytes_held(), 0);
}

#[test]
fn stalled_variable_does_not_stall_its_neighbors() {
    // One member's consumer never shows up; its writer times out. Every
    // other member keeps streaming at full rate meanwhile — per-variable
    // locking means a stuck coupling is contained.
    let staging = Arc::new(staging::dimes());
    let stuck = staging
        .register(VariableSpec { name: "stuck".into(), expected_readers: 1, home_node: 0 })
        .unwrap();
    let vars: Vec<VariableId> = (0..8)
        .map(|i| {
            staging
                .register(VariableSpec {
                    name: format!("live{i}"),
                    expected_readers: 1,
                    home_node: 0,
                })
                .unwrap()
        })
        .collect();

    std::thread::scope(|scope| {
        // The stuck writer: first put lands, second must time out because
        // nobody consumes step 0.
        let s = Arc::clone(&staging);
        scope.spawn(move || {
            s.put_timeout(Chunk::new(stuck, 0, 0, "raw", payload(stuck, 0)), TIMEOUT).unwrap();
            let err = s
                .put_timeout(
                    Chunk::new(stuck, 1, 0, "raw", payload(stuck, 1)),
                    Duration::from_millis(300),
                )
                .unwrap_err();
            assert!(matches!(err, DtlError::Timeout { operation: "put", .. }), "{err}");
        });
        // Healthy couplings stream while the stuck writer waits.
        for &var in &vars {
            let s = Arc::clone(&staging);
            scope.spawn(move || {
                for step in 0..STEPS {
                    s.put_timeout(Chunk::new(var, step, 0, "raw", payload(var, step)), TIMEOUT)
                        .unwrap();
                }
            });
            let s = Arc::clone(&staging);
            scope.spawn(move || {
                for step in 0..STEPS {
                    let c = s.get_timeout(var, step, ReaderId(0), TIMEOUT).unwrap();
                    assert_eq!(c.id.step, step);
                }
            });
        }
    });

    let stats = staging.stats();
    assert_eq!(stats.puts, 8 * STEPS + 1, "healthy members all completed");
    assert_eq!(stats.gets, 8 * STEPS);
}

#[test]
fn timeout_reader_can_resume_when_data_arrives_late() {
    let staging = Arc::new(staging::dimes());
    let var = staging
        .register(VariableSpec { name: "late".into(), expected_readers: 1, home_node: 0 })
        .unwrap();

    // The reader times out first (writer not there yet) …
    let err = staging.get_timeout(var, 0, ReaderId(0), Duration::from_millis(30)).unwrap_err();
    assert!(matches!(err, DtlError::Timeout { operation: "get", .. }));

    // … and succeeds on retry once the writer catches up; a timeout
    // consumes nothing.
    staging.put_timeout(Chunk::new(var, 0, 0, "raw", payload(var, 0)), TIMEOUT).unwrap();
    let c = staging.get_timeout(var, 0, ReaderId(0), TIMEOUT).unwrap();
    assert_eq!(c.data, payload(var, 0));
    assert_eq!(staging.stats().gets, 1);
}
