//! Property and stress tests of the staging tiers: the synchronous
//! protocol's ordering guarantees must survive arbitrary thread
//! interleavings and payload shapes.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use dtl::protocol::ReaderId;
use dtl::staging::{burst_buffer, dimes, SyncStaging};
use dtl::{Chunk, VariableSpec};
use proptest::prelude::*;

fn spec(name: &str, readers: u32) -> VariableSpec {
    VariableSpec { name: name.into(), expected_readers: readers, home_node: 0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn payloads_arrive_intact_in_order(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..24),
        readers in 1u32..4,
        capacity in 1u64..4
    ) {
        let staging = Arc::new(burst_buffer(capacity));
        let var = staging.register(spec("t", readers)).unwrap();
        let expected: Vec<Bytes> = payloads.iter().cloned().map(Bytes::from).collect();

        let producer = {
            let staging = Arc::clone(&staging);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for (step, payload) in expected.into_iter().enumerate() {
                    staging
                        .put_timeout(
                            Chunk::new(var, step as u64, 0, "raw", payload),
                            Duration::from_secs(30),
                        )
                        .unwrap();
                }
            })
        };
        let consumers: Vec<_> = (0..readers)
            .map(|r| {
                let staging = Arc::clone(&staging);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for (step, want) in expected.iter().enumerate() {
                        let got = staging
                            .get_timeout(var, step as u64, ReaderId(r), Duration::from_secs(30))
                            .unwrap();
                        assert_eq!(&got.data, want, "payload corrupted at step {step}");
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        let stats = staging.stats();
        prop_assert_eq!(stats.puts, expected.len() as u64);
        prop_assert_eq!(stats.gets, expected.len() as u64 * readers as u64);
        // Every byte staged was served to every reader.
        let bytes: u64 = expected.iter().map(|p| p.len() as u64).sum();
        prop_assert_eq!(stats.bytes_staged, bytes);
        prop_assert_eq!(stats.bytes_served, bytes * readers as u64);
    }

    #[test]
    fn memory_is_fully_reclaimed(
        steps in 1u64..32,
        payload_len in 1usize..2048
    ) {
        let staging = dimes();
        let var = staging.register(spec("t", 1)).unwrap();
        for step in 0..steps {
            staging
                .put(Chunk::new(var, step, 0, "raw", Bytes::from(vec![7u8; payload_len])))
                .unwrap();
            staging.get(var, step, ReaderId(0)).unwrap();
        }
        prop_assert_eq!(staging.store().bytes_held(), 0, "all chunks must be released");
    }
}

#[test]
fn many_members_interleave_without_cross_talk() {
    // 8 members, each with its own variable and reader, all through one
    // staging area concurrently.
    let staging: Arc<SyncStaging<_>> = Arc::new(dimes());
    let vars: Vec<_> =
        (0..8).map(|m| staging.register(spec(&format!("m{m}"), 1)).unwrap()).collect();
    let mut handles = Vec::new();
    for (m, &var) in vars.iter().enumerate() {
        let staging_w = Arc::clone(&staging);
        handles.push(std::thread::spawn(move || {
            for step in 0..40u64 {
                let payload = Bytes::from(vec![m as u8; 32]);
                staging_w.put(Chunk::new(var, step, m, "raw", payload)).unwrap();
            }
        }));
        let staging_r = Arc::clone(&staging);
        handles.push(std::thread::spawn(move || {
            for step in 0..40u64 {
                let c = staging_r.get(var, step, ReaderId(0)).unwrap();
                assert!(c.data.iter().all(|&b| b == m as u8), "cross-talk at member {m}");
                assert_eq!(c.meta.home_node, m);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(staging.stats().puts, 8 * 40);
}

#[test]
fn pipelined_capacity_preserves_fifo_under_load() {
    let staging = Arc::new(burst_buffer(3));
    let var = staging.register(spec("t", 1)).unwrap();
    let producer = {
        let staging = Arc::clone(&staging);
        std::thread::spawn(move || {
            for step in 0..200u64 {
                staging
                    .put(Chunk::new(var, step, 0, "raw", Bytes::from(step.to_le_bytes().to_vec())))
                    .unwrap();
            }
        })
    };
    for step in 0..200u64 {
        let c = staging.get(var, step, ReaderId(0)).unwrap();
        assert_eq!(u64::from_le_bytes(c.data[..].try_into().unwrap()), step);
    }
    producer.join().unwrap();
}
