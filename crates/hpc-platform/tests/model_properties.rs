//! Property-based tests of the platform models: monotonicity and
//! conservation laws the interference machinery must obey for the
//! paper's comparisons to be meaningful.

use hpc_platform::cache::CacheContender;
use hpc_platform::{
    BindPolicy, CacheModel, InterferenceModel, MemoryModel, NetworkSpec, PlacedWorkload, Platform,
    Workload,
};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        1e8f64..1e12, // instructions
        0.3f64..2.0,  // base cpi
        0.0f64..0.2,  // refs/instr
        0.0f64..0.3,  // base miss
        1e6f64..5e8,  // working set
        0.5f64..1.0,  // parallel fraction
        0.0f64..4.0,  // streaming bytes/instr
        0.0f64..0.95, // mlp overlap
    )
        .prop_map(|(i, cpi, refs, miss, ws, f, stream, mlp)| Workload {
            instructions_per_step: i,
            base_cpi: cpi,
            llc_refs_per_instr: refs,
            base_miss_ratio: miss,
            working_set_bytes: ws,
            parallel_fraction: f,
            streaming_bytes_per_instr: stream,
            mlp_overlap: mlp,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_partition_conserves_capacity(
        llc in 1e6f64..1e8,
        pressures in prop::collection::vec((1e6f64..1e10, 1e6f64..1e9), 1..6)
    ) {
        let model = CacheModel::default();
        let contenders: Vec<CacheContender> = pressures
            .iter()
            .map(|&(refs, ws)| CacheContender {
                refs_per_sec: refs,
                working_set_bytes: ws,
                base_miss_ratio: 0.05,
            })
            .collect();
        let shares = model.partition(llc, &contenders);
        let total: f64 = shares.iter().sum();
        // Shares never exceed capacity (surplus may stay unassigned when
        // everyone's working set is already satisfied).
        prop_assert!(total <= llc * (1.0 + 1e-9), "total {total} > llc {llc}");
        prop_assert!(shares.iter().all(|s| *s >= 0.0));
        // Nobody gets more than their working set plus rounding.
        for (share, c) in shares.iter().zip(&contenders) {
            prop_assert!(*share <= c.working_set_bytes.max(llc) + 1e-6);
        }
    }

    #[test]
    fn miss_ratio_is_monotone_in_share(
        ws in 1e6f64..1e9,
        base in 0.0f64..0.5,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0
    ) {
        let model = CacheModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let m_lo = model.miss_ratio(lo * ws, ws, base);
        let m_hi = model.miss_ratio(hi * ws, ws, base);
        prop_assert!(m_lo >= m_hi - 1e-12, "more cache cannot miss more");
        prop_assert!((0.0..=1.0).contains(&m_lo) && (0.0..=1.0).contains(&m_hi));
    }

    #[test]
    fn bandwidth_pressure_is_monotone(
        bw in 1e9f64..1e11,
        d1 in 0.0f64..2e11,
        d2 in 0.0f64..2e11
    ) {
        let model = MemoryModel::default();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.pressure_multiplier(lo, bw) <= model.pressure_multiplier(hi, bw) + 1e-12);
        prop_assert!(model.pressure_multiplier(lo, bw) >= 1.0);
    }

    #[test]
    fn adding_a_neighbour_never_speeds_you_up(
        w1 in workload_strategy(),
        w2 in workload_strategy()
    ) {
        let spec = hpc_platform::cori::cori_node();
        let net = hpc_platform::cori::aries_network();
        let model = InterferenceModel::default();

        let mut alone = Platform::new(1, spec.clone(), net.clone());
        let a = PlacedWorkload {
            alloc: alone.allocate(0, 16, BindPolicy::Spread).unwrap(),
            workload: w1.clone(),
        };
        let est_alone = model.solve_node(&spec, std::slice::from_ref(&a), &[])[0].clone();

        let mut shared = Platform::new(1, spec.clone(), net);
        let b = PlacedWorkload {
            alloc: shared.allocate(0, 16, BindPolicy::Spread).unwrap(),
            workload: w1,
        };
        let c = PlacedWorkload {
            alloc: shared.allocate(0, 16, BindPolicy::Spread).unwrap(),
            workload: w2,
        };
        let est_shared = model.solve_node(&spec, &[b, c], &[])[0].clone();
        prop_assert!(
            est_shared.seconds_per_step >= est_alone.seconds_per_step * (1.0 - 1e-6),
            "neighbour sped us up: {} vs {}",
            est_shared.seconds_per_step,
            est_alone.seconds_per_step
        );
        prop_assert!(est_shared.llc_miss_ratio >= est_alone.llc_miss_ratio - 1e-9);
    }

    #[test]
    fn estimates_are_always_finite_and_sane(w in workload_strategy(), cores in 1u32..33) {
        let spec = hpc_platform::cori::cori_node();
        let model = InterferenceModel::default();
        let mut p = Platform::new(1, spec.clone(), hpc_platform::cori::aries_network());
        let placed = PlacedWorkload {
            alloc: p.allocate(0, cores, BindPolicy::Spread).unwrap(),
            workload: w,
        };
        for est in model.solve_node(&spec, &[placed], &[]) {
            prop_assert!(est.seconds_per_step.is_finite() && est.seconds_per_step > 0.0);
            prop_assert!((0.0..=1.0).contains(&est.llc_miss_ratio));
            prop_assert!(est.cpi > 0.0 && est.ipc > 0.0);
            prop_assert!(est.llc_misses_per_step <= est.llc_refs_per_step + 1e-6);
            prop_assert!(est.peak_bw_pressure >= 1.0);
        }
    }

    #[test]
    fn network_latency_respects_identity_and_symmetry(
        a in 0usize..1000,
        b in 0usize..1000
    ) {
        let net = NetworkSpec::default();
        prop_assert_eq!(net.transfer_time(a, a, 12345), 0.0);
        let ab = net.transfer_time(a, b, 1 << 20);
        let ba = net.transfer_time(b, a, 1 << 20);
        prop_assert!((ab - ba).abs() < 1e-15, "dragonfly routes are symmetric here");
        if a != b {
            prop_assert!(ab > 0.0);
        }
    }

    #[test]
    fn allocation_release_restores_platform(
        requests in prop::collection::vec(1u32..17, 1..5)
    ) {
        let spec = hpc_platform::cori::cori_node();
        let mut p = Platform::new(2, spec, hpc_platform::cori::aries_network());
        let before: Vec<u32> = (0..2).map(|n| p.free_cores(n).unwrap()).collect();
        let mut allocs = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            if let Ok(a) = p.allocate(i % 2, *r, BindPolicy::Spread) {
                allocs.push(a);
            }
        }
        for a in &allocs {
            p.release(a);
        }
        let after: Vec<u32> = (0..2).map(|n| p.free_cores(n).unwrap()).collect();
        prop_assert_eq!(before, after);
    }
}
