//! Architectural workload descriptions consumed by the interference model.
//!
//! A [`Workload`] characterizes one ensemble component (a simulation or an
//! analysis) by the quantities that determine its interaction with the
//! memory hierarchy. The values are per *in situ step* (the paper's unit of
//! progress).

use serde::{Deserialize, Serialize};

/// Architectural profile of one component, per in situ step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Total dynamic instructions retired per step (across all threads).
    pub instructions_per_step: f64,
    /// Cycles per instruction with a perfect (never-missing) LLC.
    pub base_cpi: f64,
    /// LLC references per instruction.
    pub llc_refs_per_instr: f64,
    /// Miss ratio when the working set fits in the component's LLC share
    /// (compulsory + coherence misses).
    pub base_miss_ratio: f64,
    /// Bytes the component re-touches each step (its resident hot data).
    pub working_set_bytes: f64,
    /// Fraction of the step's work that parallelizes (Amdahl's law).
    pub parallel_fraction: f64,
    /// DRAM traffic per instruction that bypasses LLC refills
    /// (streaming/non-temporal accesses), in bytes.
    pub streaming_bytes_per_instr: f64,
    /// Fraction of DRAM latency this workload hides through memory-level
    /// parallelism and prefetching (0 = fully exposed, 1 = fully hidden).
    /// Streaming simulations sit near 0.9; irregular analyses much lower.
    pub mlp_overlap: f64,
}

impl Workload {
    /// Validates value ranges.
    pub fn validate(&self) -> bool {
        self.instructions_per_step > 0.0
            && self.base_cpi > 0.0
            && self.llc_refs_per_instr >= 0.0
            && (0.0..=1.0).contains(&self.base_miss_ratio)
            && self.working_set_bytes >= 0.0
            && (0.0..=1.0).contains(&self.parallel_fraction)
            && self.streaming_bytes_per_instr >= 0.0
            && (0.0..=1.0).contains(&self.mlp_overlap)
    }

    /// Amdahl speedup of this workload on `cores` cores.
    pub fn speedup(&self, cores: u32) -> f64 {
        amdahl_speedup(self.parallel_fraction, cores)
    }

    /// Scales the amount of work per step (e.g. a different stride or
    /// system size) leaving architectural ratios unchanged.
    pub fn scaled(&self, work_factor: f64) -> Workload {
        Workload {
            instructions_per_step: self.instructions_per_step * work_factor,
            working_set_bytes: self.working_set_bytes * work_factor,
            ..self.clone()
        }
    }
}

/// Amdahl's law: speedup of a workload with parallel fraction `f` on `p`
/// cores.
pub fn amdahl_speedup(parallel_fraction: f64, cores: u32) -> f64 {
    let p = cores.max(1) as f64;
    let f = parallel_fraction.clamp(0.0, 1.0);
    1.0 / ((1.0 - f) + f / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload {
            instructions_per_step: 1e9,
            base_cpi: 0.5,
            llc_refs_per_instr: 0.02,
            base_miss_ratio: 0.05,
            working_set_bytes: 64e6,
            parallel_fraction: 0.95,
            streaming_bytes_per_instr: 0.0,
            mlp_overlap: 0.6,
        }
    }

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_speedup(1.0, 8) - 8.0).abs() < 1e-12);
        assert!((amdahl_speedup(0.0, 8) - 1.0).abs() < 1e-12);
        // Serial fraction bounds the speedup.
        assert!(amdahl_speedup(0.9, 1_000) < 10.0);
        assert!(amdahl_speedup(0.9, 1_000) > 9.0);
    }

    #[test]
    fn speedup_monotone_in_cores() {
        let w = wl();
        let mut prev = 0.0;
        for c in 1..=32 {
            let s = w.speedup(c);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn scaled_preserves_ratios() {
        let w = wl();
        let s = w.scaled(2.0);
        assert!((s.instructions_per_step - 2e9).abs() < 1.0);
        assert!((s.working_set_bytes - 128e6).abs() < 1.0);
        assert_eq!(s.base_cpi, w.base_cpi);
    }

    #[test]
    fn validation() {
        assert!(wl().validate());
        let mut bad = wl();
        bad.base_miss_ratio = 1.5;
        assert!(!bad.validate());
    }
}
