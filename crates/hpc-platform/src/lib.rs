//! # hpc-platform — analytical model of the experimental HPC machine
//!
//! The paper's experiments ran on Cori, a Cray XC40 (NERSC): two 16-core
//! Haswell sockets per node, 128 GB DRAM, Aries dragonfly interconnect.
//! This crate substitutes that hardware with an analytical model:
//!
//! * [`NodeSpec`] / [`Platform`] — topology and core-allocation bookkeeping
//!   with spread/compact socket binding;
//! * [`NetworkSpec`] — dragonfly latency/bandwidth transfer costs;
//! * [`CacheModel`] — pressure-proportional LLC partitioning with a
//!   capacity-miss curve;
//! * [`MemoryModel`] — DRAM bandwidth saturation;
//! * [`InterferenceModel`] — the fixed-point solver combining the above
//!   into per-component step times, miss ratios, and IPC;
//! * [`HwCounters`] — synthetic PAPI-style counters derived from the solved
//!   steady state;
//! * [`cori`] — the preset matching the paper's platform.
//!
//! The model reproduces the paper's qualitative phenomena mechanistically:
//! co-locating memory-intensive components raises LLC miss ratios and step
//! times; spreading them over dedicated nodes avoids contention but pays
//! network staging costs (captured by [`NetworkSpec`] in the runtime).

#![warn(missing_docs)]

pub mod cache;
pub mod cori;
pub mod counters;
pub mod error;
pub mod interference;
pub mod memory;
pub mod network;
pub mod node;
pub mod power;
pub mod topology;
pub mod workload;

pub use cache::{CacheContender, CacheModel};
pub use counters::HwCounters;
pub use error::PlatformError;
pub use interference::{InterferenceModel, PerfEstimate, PlacedWorkload};
pub use memory::MemoryModel;
pub use network::NetworkSpec;
pub use node::NodeSpec;
pub use power::PowerModel;
pub use topology::{BindPolicy, CoreAllocation, Platform};
pub use workload::{amdahl_speedup, Workload};
