//! Shared last-level-cache model.
//!
//! Components co-resident on a socket compete for LLC capacity. The model
//! partitions capacity proportionally to each component's *access pressure*
//! (LLC references per second it would issue), which approximates the
//! steady-state occupancy a thrashing-prone shared cache converges to.
//! Each component's miss ratio then follows a capacity-miss curve in the
//! ratio of its share to its working set.

use serde::{Deserialize, Serialize};

/// Tunables of the cache model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    /// Exponent of the capacity-miss curve. 1.0 = linear growth of the
    /// miss ratio as the share shrinks below the working set; values < 1
    /// make the curve steeper near the fit point.
    pub miss_curve_exponent: f64,
}

impl Default for CacheModel {
    fn default() -> Self {
        CacheModel { miss_curve_exponent: 1.0 }
    }
}

/// One contender for a socket's LLC.
#[derive(Debug, Clone, Copy)]
pub struct CacheContender {
    /// LLC references per second the contender issues at its current
    /// execution rate.
    pub refs_per_sec: f64,
    /// Bytes of hot data it re-touches (working set on this socket).
    pub working_set_bytes: f64,
    /// Miss ratio floor when fully cache-resident.
    pub base_miss_ratio: f64,
}

impl CacheModel {
    /// Splits `llc_bytes` among contenders proportionally to access
    /// pressure. Zero-pressure contenders receive zero share (they also
    /// don't miss). Returns one share per contender, in bytes.
    pub fn partition(&self, llc_bytes: f64, contenders: &[CacheContender]) -> Vec<f64> {
        let total_pressure: f64 = contenders.iter().map(|c| c.refs_per_sec.max(0.0)).sum();
        if total_pressure <= 0.0 {
            // No pressure: nominal equal split (miss ratios won't use it).
            let n = contenders.len().max(1) as f64;
            return vec![llc_bytes / n; contenders.len()];
        }
        // A component never benefits from more capacity than its working
        // set; redistribute the surplus to the still-needy in proportion to
        // pressure. Two passes suffice for the accuracy we need.
        let mut shares: Vec<f64> = contenders
            .iter()
            .map(|c| llc_bytes * c.refs_per_sec.max(0.0) / total_pressure)
            .collect();
        for _ in 0..2 {
            let mut surplus = 0.0;
            let mut needy_pressure = 0.0;
            for (share, c) in shares.iter_mut().zip(contenders) {
                if *share > c.working_set_bytes {
                    surplus += *share - c.working_set_bytes;
                    *share = c.working_set_bytes;
                } else if *share < c.working_set_bytes {
                    needy_pressure += c.refs_per_sec.max(0.0);
                }
            }
            if surplus <= 0.0 || needy_pressure <= 0.0 {
                break;
            }
            for (share, c) in shares.iter_mut().zip(contenders) {
                if *share < c.working_set_bytes {
                    *share += surplus * c.refs_per_sec.max(0.0) / needy_pressure;
                }
            }
        }
        shares
    }

    /// Capacity-miss curve: the miss ratio of a contender granted `share`
    /// bytes of LLC against a working set of `ws` bytes.
    pub fn miss_ratio(&self, share: f64, ws: f64, base_miss_ratio: f64) -> f64 {
        let base = base_miss_ratio.clamp(0.0, 1.0);
        if ws <= 0.0 || share >= ws {
            return base;
        }
        let deficit = (1.0 - (share / ws).clamp(0.0, 1.0)).powf(self.miss_curve_exponent);
        (base + (1.0 - base) * deficit).clamp(0.0, 1.0)
    }

    /// Convenience: partition then compute each contender's miss ratio.
    pub fn miss_ratios(&self, llc_bytes: f64, contenders: &[CacheContender]) -> Vec<f64> {
        let shares = self.partition(llc_bytes, contenders);
        shares
            .iter()
            .zip(contenders)
            .map(|(&share, c)| self.miss_ratio(share, c.working_set_bytes, c.base_miss_ratio))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LLC: f64 = 40e6;

    fn contender(refs: f64, ws: f64) -> CacheContender {
        CacheContender { refs_per_sec: refs, working_set_bytes: ws, base_miss_ratio: 0.02 }
    }

    #[test]
    fn sole_tenant_fitting_working_set_hits_base_ratio() {
        let m = CacheModel::default();
        let r = m.miss_ratios(LLC, &[contender(1e9, 20e6)]);
        assert!((r[0] - 0.02).abs() < 1e-12);
    }

    #[test]
    fn sole_tenant_overflowing_working_set_misses_more() {
        let m = CacheModel::default();
        let r = m.miss_ratios(LLC, &[contender(1e9, 80e6)]);
        assert!(r[0] > 0.02);
        assert!(r[0] < 1.0);
    }

    #[test]
    fn co_located_tenants_increase_each_others_misses() {
        let m = CacheModel::default();
        let alone = m.miss_ratios(LLC, &[contender(1e9, 30e6)])[0];
        let shared = m.miss_ratios(LLC, &[contender(1e9, 30e6), contender(1e9, 30e6)])[0];
        assert!(
            shared > alone,
            "co-location must raise miss ratio: alone {alone}, shared {shared}"
        );
    }

    #[test]
    fn higher_pressure_wins_more_capacity() {
        let m = CacheModel::default();
        let shares = m.partition(LLC, &[contender(3e9, 100e6), contender(1e9, 100e6)]);
        assert!(shares[0] > shares[1]);
        assert!((shares[0] + shares[1] - LLC).abs() < 1.0);
    }

    #[test]
    fn surplus_redistributes_to_needy() {
        let m = CacheModel::default();
        // First contender needs only 5 MB; the rest should flow to the
        // second, which wants 100 MB.
        let shares = m.partition(LLC, &[contender(3e9, 5e6), contender(1e9, 100e6)]);
        assert!((shares[0] - 5e6).abs() < 1.0);
        assert!(shares[1] > 30e6);
    }

    #[test]
    fn miss_ratio_monotone_in_share() {
        let m = CacheModel::default();
        let mut prev = 1.0;
        for share in [0.0, 10e6, 20e6, 30e6, 40e6] {
            let r = m.miss_ratio(share, 40e6, 0.02);
            assert!(r <= prev + 1e-12, "miss ratio must fall as share grows");
            prev = r;
        }
        assert!((m.miss_ratio(40e6, 40e6, 0.02) - 0.02).abs() < 1e-12);
        assert!((m.miss_ratio(0.0, 40e6, 0.02) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_pressure_is_safe() {
        let m = CacheModel::default();
        let shares = m.partition(LLC, &[contender(0.0, 10e6), contender(0.0, 10e6)]);
        assert_eq!(shares.len(), 2);
        assert!(shares.iter().all(|s| s.is_finite()));
    }
}
