//! Error types for platform modeling and core allocation.

use std::fmt;

/// Errors produced by the platform model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A node index outside the provisioned allocation was referenced.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the platform.
        nodes: usize,
    },
    /// A component asked for more cores than remain free on a node.
    InsufficientCores {
        /// Node on which the allocation was attempted.
        node: usize,
        /// Cores requested.
        requested: u32,
        /// Cores still free.
        available: u32,
    },
    /// A component asked for zero cores.
    EmptyAllocation,
    /// The memory demand of components placed on a node exceeds its DRAM.
    InsufficientMemory {
        /// Node on which the placement was attempted.
        node: usize,
        /// Bytes requested in total.
        requested: u64,
        /// DRAM capacity of the node.
        capacity: u64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownNode { node, nodes } => {
                write!(f, "node index {node} out of range (platform has {nodes} nodes)")
            }
            PlatformError::InsufficientCores { node, requested, available } => {
                write!(f, "node {node}: requested {requested} cores but only {available} free")
            }
            PlatformError::EmptyAllocation => {
                write!(f, "allocation must request at least one core")
            }
            PlatformError::InsufficientMemory { node, requested, capacity } => {
                write!(f, "node {node}: {requested} B of memory requested, capacity {capacity} B")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PlatformError::InsufficientCores { node: 2, requested: 40, available: 8 };
        let s = e.to_string();
        assert!(s.contains("node 2"));
        assert!(s.contains("40"));
        assert!(s.contains("8"));
    }
}
