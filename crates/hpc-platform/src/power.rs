//! Node power model and DVFS-style power capping.
//!
//! The paper's related work (SeeSAw, Marincic et al. 2020) optimizes in
//! situ analytics under power constraints. This module provides the
//! machinery to reproduce that setting on the simulated platform: a
//! simple socket-level power model (idle + per-core active + per-GB/s
//! DRAM draw) and a frequency-scaling response that inflates compute
//! time when a node exceeds its power cap.

use serde::{Deserialize, Serialize};

/// Node-level power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Baseline node draw with idle cores, watts.
    pub idle_watts: f64,
    /// Additional draw per busy core, watts.
    pub active_watts_per_core: f64,
    /// Additional draw per GB/s of DRAM traffic, watts.
    pub watts_per_gbs: f64,
    /// Exponent of the frequency/power relation used for capping
    /// (dynamic power ≈ f^exponent; 3.0 for classical voltage scaling).
    pub dvfs_exponent: f64,
}

impl Default for PowerModel {
    /// Values representative of a Haswell Cori node (≈ 90 W idle,
    /// ≈ 6.5 W per busy core, ≈ 1 W per GB/s of DRAM traffic).
    fn default() -> Self {
        PowerModel {
            idle_watts: 90.0,
            active_watts_per_core: 6.5,
            watts_per_gbs: 1.0,
            dvfs_exponent: 3.0,
        }
    }
}

impl PowerModel {
    /// Node draw with `busy_cores` active cores moving
    /// `dram_bytes_per_s` of memory traffic.
    pub fn node_watts(&self, busy_cores: u32, dram_bytes_per_s: f64) -> f64 {
        self.idle_watts
            + self.active_watts_per_core * busy_cores as f64
            + self.watts_per_gbs * dram_bytes_per_s / 1e9
    }

    /// Execution-time multiplier imposed by capping a node drawing
    /// `draw` watts at `cap` watts (≥ 1.0; 1.0 when under the cap).
    ///
    /// Only the dynamic share (draw − idle) responds to frequency; the
    /// model solves for the frequency ratio that brings the node to the
    /// cap and returns its reciprocal as the slowdown.
    pub fn cap_slowdown(&self, draw: f64, cap: f64) -> f64 {
        if draw <= cap || draw <= self.idle_watts {
            return 1.0;
        }
        let dynamic = draw - self.idle_watts;
        let budget = (cap - self.idle_watts).max(dynamic * 1e-3);
        // dynamic × r^e = budget  ⇒  r = (budget/dynamic)^(1/e); time × 1/r.
        let ratio = (budget / dynamic).powf(1.0 / self.dvfs_exponent.max(1.0));
        1.0 / ratio.clamp(1e-3, 1.0)
    }

    /// Energy (joules) of running at `watts` for `seconds`.
    pub fn energy_joules(&self, watts: f64, seconds: f64) -> f64 {
        watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_watts_scales_with_load() {
        let p = PowerModel::default();
        let idle = p.node_watts(0, 0.0);
        let half = p.node_watts(16, 30e9);
        let full = p.node_watts(32, 60e9);
        assert_eq!(idle, 90.0);
        assert!(half > idle && full > half);
        assert!((full - (90.0 + 6.5 * 32.0 + 60.0)).abs() < 1e-9);
    }

    #[test]
    fn under_cap_is_free() {
        let p = PowerModel::default();
        assert_eq!(p.cap_slowdown(200.0, 300.0), 1.0);
        assert_eq!(p.cap_slowdown(300.0, 300.0), 1.0);
    }

    #[test]
    fn over_cap_slows_down_monotonically() {
        let p = PowerModel::default();
        let mild = p.cap_slowdown(320.0, 300.0);
        let harsh = p.cap_slowdown(400.0, 300.0);
        assert!(mild > 1.0);
        assert!(harsh > mild);
    }

    #[test]
    fn cubic_dvfs_is_gentle() {
        // Cutting dynamic power in half at e = 3 costs only 2^(1/3) ≈
        // 1.26x in time.
        let p = PowerModel::default();
        let draw = p.idle_watts + 100.0;
        let cap = p.idle_watts + 50.0;
        let s = p.cap_slowdown(draw, cap);
        assert!((s - 2f64.powf(1.0 / 3.0)).abs() < 1e-9, "slowdown {s}");
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerModel::default();
        assert_eq!(p.energy_joules(250.0, 4.0), 1000.0);
    }

    #[test]
    fn cap_below_idle_saturates_safely() {
        let p = PowerModel::default();
        let s = p.cap_slowdown(300.0, 10.0);
        assert!(s.is_finite() && s >= 1.0);
    }
}
