//! Co-location interference: the model that turns *placements* into
//! *performance*.
//!
//! Given the set of components placed on one node (with their core
//! allocations and architectural workloads), the model solves a fixed point
//! over execution rates:
//!
//! 1. components issue LLC references in proportion to their instruction
//!    throughput;
//! 2. each socket's LLC is partitioned by access pressure
//!    ([`crate::cache::CacheModel`]), yielding per-component miss ratios;
//! 3. DRAM traffic (refills + streaming) accumulates per socket; demand
//!    past the saturation knee stretches every access
//!    ([`crate::memory::MemoryModel`]);
//! 4. miss stalls inflate each component's CPI, which feeds back into (1).
//!
//! The negative feedback (slower components issue less traffic) makes the
//! iteration converge; we run a damped fixed number of rounds.

use serde::{Deserialize, Serialize};

use crate::cache::{CacheContender, CacheModel};
use crate::memory::MemoryModel;
use crate::node::NodeSpec;
use crate::topology::CoreAllocation;
use crate::workload::Workload;

/// Number of damped fixed-point rounds. Convergence is geometric; 24
/// rounds put the residual far below measurement noise.
const FIXED_POINT_ROUNDS: usize = 24;
/// Damping factor applied to CPI updates.
const DAMPING: f64 = 0.5;

/// A component placed on a node: where its threads run and what they do.
#[derive(Debug, Clone)]
pub struct PlacedWorkload {
    /// Core allocation (must all be on the node being analyzed).
    pub alloc: CoreAllocation,
    /// Architectural profile.
    pub workload: Workload,
}

/// Solved steady-state performance of one placed component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfEstimate {
    /// Wall-clock seconds one step of this component takes under the
    /// solved contention (its computational stage duration).
    pub seconds_per_step: f64,
    /// Dynamic instructions retired per step (copied from the workload;
    /// lets callers synthesize counters without the workload in hand).
    pub instructions_per_step: f64,
    /// Steady-state LLC miss ratio (misses / references).
    pub llc_miss_ratio: f64,
    /// Effective cycles per instruction.
    pub cpi: f64,
    /// Effective instructions per cycle (= 1 / cpi).
    pub ipc: f64,
    /// LLC references issued per step.
    pub llc_refs_per_step: f64,
    /// LLC misses per step.
    pub llc_misses_per_step: f64,
    /// DRAM traffic per step, bytes.
    pub dram_bytes_per_step: f64,
    /// Highest bandwidth-pressure multiplier seen across the sockets this
    /// component touches (1.0 = unsaturated).
    pub peak_bw_pressure: f64,
}

/// The combined interference model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Shared-cache component.
    pub cache: CacheModel,
    /// Bandwidth component.
    pub memory: MemoryModel,
    /// When true, co-residents do not affect each other at all (ablation:
    /// every component behaves as if alone on the node).
    pub disabled: bool,
}

impl InterferenceModel {
    /// Solves the steady state for all components placed on one node.
    ///
    /// `extra_traffic_per_socket` injects additional DRAM traffic (bytes/s)
    /// per socket, e.g. staging-server activity; pass `&[]` for none.
    ///
    /// # Panics
    /// Panics if allocations reference different nodes or workloads are
    /// invalid.
    pub fn solve_node(
        &self,
        spec: &NodeSpec,
        placed: &[PlacedWorkload],
        extra_traffic_per_socket: &[f64],
    ) -> Vec<PerfEstimate> {
        if placed.is_empty() {
            return Vec::new();
        }
        let node = placed[0].alloc.node;
        for p in placed {
            assert_eq!(p.alloc.node, node, "solve_node requires a single node");
            assert!(p.workload.validate(), "invalid workload");
            assert_eq!(
                p.alloc.per_socket.len(),
                spec.sockets as usize,
                "allocation socket count must match node spec"
            );
        }
        if self.disabled {
            return placed.iter().map(|p| self.solve_isolated(spec, p)).collect();
        }

        let sockets = spec.sockets as usize;
        let line = spec.cache_line_bytes as f64;
        let n = placed.len();
        let mut cpi: Vec<f64> = placed.iter().map(|p| p.workload.base_cpi).collect();
        let mut miss: Vec<Vec<f64>> = vec![vec![0.0; sockets]; n];
        let mut pressure = vec![1.0f64; sockets];

        for _ in 0..FIXED_POINT_ROUNDS {
            // (1) instruction throughput at current CPI.
            let thr: Vec<f64> = placed
                .iter()
                .zip(&cpi)
                .map(|(p, &c)| {
                    let w = &p.workload;
                    spec.core_freq_hz * w.speedup(p.alloc.total_cores()) / c
                })
                .collect();

            // (2) per-socket cache partitioning.
            #[allow(clippy::needless_range_loop)] // `s` indexes the inner dim of `miss[i][s]`
            for s in 0..sockets {
                let mut contenders = Vec::with_capacity(n);
                let mut idx_map = Vec::with_capacity(n);
                for (i, p) in placed.iter().enumerate() {
                    let frac = p.alloc.socket_fraction(s);
                    if frac <= 0.0 {
                        continue;
                    }
                    let w = &p.workload;
                    contenders.push(CacheContender {
                        refs_per_sec: thr[i] * frac * w.llc_refs_per_instr,
                        working_set_bytes: w.working_set_bytes * frac,
                        base_miss_ratio: w.base_miss_ratio,
                    });
                    idx_map.push(i);
                }
                let ratios = self.cache.miss_ratios(spec.llc_bytes_per_socket as f64, &contenders);
                for (k, &i) in idx_map.iter().enumerate() {
                    miss[i][s] = ratios[k];
                }
            }

            // (3) per-socket DRAM traffic and pressure.
            for (s, pr) in pressure.iter_mut().enumerate() {
                let mut demand = extra_traffic_per_socket.get(s).copied().unwrap_or(0.0);
                for (i, p) in placed.iter().enumerate() {
                    let frac = p.alloc.socket_fraction(s);
                    if frac <= 0.0 {
                        continue;
                    }
                    let w = &p.workload;
                    let refill = w.llc_refs_per_instr * miss[i][s] * line;
                    demand += thr[i] * frac * (refill + w.streaming_bytes_per_instr);
                }
                *pr = self.memory.pressure_multiplier(demand, spec.mem_bw_per_socket);
            }

            // (4) stall-inflated CPI (damped update).
            for (i, p) in placed.iter().enumerate() {
                let w = &p.workload;
                let mut stall = 0.0;
                for s in 0..sockets {
                    let frac = p.alloc.socket_fraction(s);
                    if frac <= 0.0 {
                        continue;
                    }
                    let events_per_instr =
                        w.llc_refs_per_instr * miss[i][s] + w.streaming_bytes_per_instr / line;
                    stall += frac
                        * events_per_instr
                        * self.memory.exposed_stall_cycles(
                            spec.llc_miss_penalty_cycles,
                            w.mlp_overlap,
                            pressure[s],
                        );
                }
                let target = w.base_cpi + stall;
                cpi[i] = cpi[i] * (1.0 - DAMPING) + target * DAMPING;
            }
        }

        placed
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = &p.workload;
                let overall_miss: f64 =
                    (0..sockets).map(|s| p.alloc.socket_fraction(s) * miss[i][s]).sum();
                let refs = w.instructions_per_step * w.llc_refs_per_instr;
                let misses = refs * overall_miss;
                let peak = (0..sockets)
                    .filter(|&s| p.alloc.socket_fraction(s) > 0.0)
                    .map(|s| pressure[s])
                    .fold(1.0f64, f64::max);
                PerfEstimate {
                    seconds_per_step: w.instructions_per_step * cpi[i]
                        / (spec.core_freq_hz * w.speedup(p.alloc.total_cores())),
                    instructions_per_step: w.instructions_per_step,
                    llc_miss_ratio: overall_miss,
                    cpi: cpi[i],
                    ipc: 1.0 / cpi[i],
                    llc_refs_per_step: refs,
                    llc_misses_per_step: misses,
                    dram_bytes_per_step: misses * line
                        + w.instructions_per_step * w.streaming_bytes_per_instr,
                    peak_bw_pressure: peak,
                }
            })
            .collect()
    }

    /// Performance of a component as if alone on the node (used by the
    /// `disabled` ablation and by baseline estimation).
    pub fn solve_isolated(&self, spec: &NodeSpec, placed: &PlacedWorkload) -> PerfEstimate {
        let w = &placed.workload;
        let line = spec.cache_line_bytes as f64;
        // Alone, the component sees each socket's full LLC against its
        // per-socket working-set slice.
        let sockets = spec.sockets as usize;
        let mut overall_miss = 0.0;
        for s in 0..sockets {
            let frac = placed.alloc.socket_fraction(s);
            if frac <= 0.0 {
                continue;
            }
            let m = self.cache.miss_ratio(
                spec.llc_bytes_per_socket as f64,
                w.working_set_bytes * frac,
                w.base_miss_ratio,
            );
            overall_miss += frac * m;
        }
        let events = w.llc_refs_per_instr * overall_miss + w.streaming_bytes_per_instr / line;
        let stall = events
            * self.memory.exposed_stall_cycles(spec.llc_miss_penalty_cycles, w.mlp_overlap, 1.0);
        let cpi = w.base_cpi + stall;
        let refs = w.instructions_per_step * w.llc_refs_per_instr;
        let misses = refs * overall_miss;
        PerfEstimate {
            seconds_per_step: w.instructions_per_step * cpi
                / (spec.core_freq_hz * w.speedup(placed.alloc.total_cores())),
            instructions_per_step: w.instructions_per_step,
            llc_miss_ratio: overall_miss,
            cpi,
            ipc: 1.0 / cpi,
            llc_refs_per_step: refs,
            llc_misses_per_step: misses,
            dram_bytes_per_step: misses * line
                + w.instructions_per_step * w.streaming_bytes_per_instr,
            peak_bw_pressure: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cori::cori_node;
    use crate::topology::{BindPolicy, Platform};

    fn compute_heavy() -> Workload {
        Workload {
            instructions_per_step: 2e11,
            base_cpi: 0.6,
            llc_refs_per_instr: 0.004,
            base_miss_ratio: 0.03,
            working_set_bytes: 25e6,
            parallel_fraction: 0.98,
            streaming_bytes_per_instr: 0.0,
            mlp_overlap: 0.85,
        }
    }

    fn memory_heavy() -> Workload {
        Workload {
            instructions_per_step: 2e10,
            base_cpi: 0.8,
            llc_refs_per_instr: 0.05,
            base_miss_ratio: 0.08,
            working_set_bytes: 60e6,
            parallel_fraction: 0.92,
            streaming_bytes_per_instr: 0.05,
            mlp_overlap: 0.4,
        }
    }

    fn place(p: &mut Platform, node: usize, cores: u32, w: Workload) -> PlacedWorkload {
        PlacedWorkload { alloc: p.allocate(node, cores, BindPolicy::Spread).unwrap(), workload: w }
    }

    #[test]
    fn isolated_component_hits_base_profile() {
        let spec = cori_node();
        let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let placed = place(&mut p, 0, 16, compute_heavy());
        let model = InterferenceModel::default();
        let est = model.solve_node(&spec, std::slice::from_ref(&placed), &[])[0].clone();
        // Working set fits: miss ratio at the base floor.
        assert!((est.llc_miss_ratio - 0.03).abs() < 1e-6, "miss {}", est.llc_miss_ratio);
        assert!(est.seconds_per_step > 0.0);
        assert!(est.ipc > 0.0 && est.ipc <= spec.peak_ipc * 2.0);
    }

    #[test]
    fn co_location_raises_miss_ratio_and_time() {
        let spec = cori_node();
        let model = InterferenceModel::default();

        let mut alone = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let a = place(&mut alone, 0, 16, memory_heavy());
        let est_alone = model.solve_node(&spec, std::slice::from_ref(&a), &[])[0].clone();

        let mut shared = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let b = place(&mut shared, 0, 16, memory_heavy());
        let c = place(&mut shared, 0, 16, memory_heavy());
        let est_shared = model.solve_node(&spec, &[b, c], &[])[0].clone();

        assert!(
            est_shared.llc_miss_ratio > est_alone.llc_miss_ratio,
            "co-location must raise miss ratio ({} vs {})",
            est_shared.llc_miss_ratio,
            est_alone.llc_miss_ratio
        );
        assert!(est_shared.seconds_per_step > est_alone.seconds_per_step);
        assert!(est_shared.ipc < est_alone.ipc);
    }

    #[test]
    fn memory_heavy_pair_contends_more_than_compute_heavy_pair() {
        let spec = cori_node();
        let model = InterferenceModel::default();

        let solo_mem = {
            let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
            let a = place(&mut p, 0, 8, memory_heavy());
            model.solve_node(&spec, &[a], &[])[0].clone()
        };
        let pair_mem = {
            let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
            let a = place(&mut p, 0, 8, memory_heavy());
            let b = place(&mut p, 0, 8, memory_heavy());
            model.solve_node(&spec, &[a, b], &[])[0].clone()
        };
        let solo_cpu = {
            let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
            let a = place(&mut p, 0, 16, compute_heavy());
            model.solve_node(&spec, &[a], &[])[0].clone()
        };
        let pair_cpu = {
            let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
            let a = place(&mut p, 0, 16, compute_heavy());
            let b = place(&mut p, 0, 16, compute_heavy());
            model.solve_node(&spec, &[a, b], &[])[0].clone()
        };
        let slowdown_mem = pair_mem.seconds_per_step / solo_mem.seconds_per_step;
        let slowdown_cpu = pair_cpu.seconds_per_step / solo_cpu.seconds_per_step;
        assert!(
            slowdown_mem > slowdown_cpu,
            "memory-bound co-location should hurt more: {slowdown_mem} vs {slowdown_cpu}"
        );
    }

    #[test]
    fn disabled_model_ignores_neighbours() {
        let spec = cori_node();
        let model = InterferenceModel { disabled: true, ..Default::default() };
        let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let a = place(&mut p, 0, 8, memory_heavy());
        let b = place(&mut p, 0, 8, memory_heavy());
        let ests = model.solve_node(&spec, &[a.clone(), b], &[]);
        let solo = model.solve_isolated(&spec, &a);
        assert!((ests[0].seconds_per_step - solo.seconds_per_step).abs() < 1e-12);
        assert!((ests[0].llc_miss_ratio - solo.llc_miss_ratio).abs() < 1e-12);
    }

    #[test]
    fn more_cores_make_steps_faster() {
        let spec = cori_node();
        let model = InterferenceModel::default();
        let mut prev = f64::INFINITY;
        for cores in [1u32, 2, 4, 8, 16, 32] {
            let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
            let a = place(&mut p, 0, cores, compute_heavy());
            let est = model.solve_node(&spec, &[a], &[])[0].clone();
            assert!(est.seconds_per_step < prev, "{cores} cores should beat fewer cores");
            prev = est.seconds_per_step;
        }
    }

    #[test]
    fn extra_traffic_increases_pressure() {
        let spec = cori_node();
        let model = InterferenceModel::default();
        let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let a = place(&mut p, 0, 16, memory_heavy());
        let calm = model.solve_node(&spec, std::slice::from_ref(&a), &[])[0].clone();
        let noisy = model.solve_node(&spec, &[a], &[80e9, 80e9])[0].clone();
        assert!(noisy.seconds_per_step >= calm.seconds_per_step);
        assert!(noisy.peak_bw_pressure >= calm.peak_bw_pressure);
    }

    #[test]
    fn estimates_are_finite_and_consistent() {
        let spec = cori_node();
        let model = InterferenceModel::default();
        let mut p = Platform::new(1, spec.clone(), crate::cori::aries_network());
        let a = place(&mut p, 0, 16, compute_heavy());
        let b = place(&mut p, 0, 8, memory_heavy());
        for est in model.solve_node(&spec, &[a, b], &[]) {
            assert!(est.seconds_per_step.is_finite() && est.seconds_per_step > 0.0);
            assert!((0.0..=1.0).contains(&est.llc_miss_ratio));
            assert!((est.ipc * est.cpi - 1.0).abs() < 1e-9);
            assert!(est.llc_misses_per_step <= est.llc_refs_per_step);
        }
    }
}
