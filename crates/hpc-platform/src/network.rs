//! Interconnect model: a dragonfly-style network parameterized by base
//! latency, per-hop latency, and injection bandwidth.
//!
//! The model is intentionally analytical: transfer time =
//! `latency(hops) + bytes / bandwidth`. Hop count is derived from a
//! dragonfly grouping — nodes in the same group reach each other in one
//! hop, different groups pay a global-link detour. This captures the
//! locality structure that makes DIMES-style node-local staging attractive
//! without simulating individual packets.

use serde::{Deserialize, Serialize};

/// Static description of the interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Latency of a minimal (same-group) route, seconds.
    pub base_latency_s: f64,
    /// Additional latency per extra hop, seconds.
    pub per_hop_latency_s: f64,
    /// Injection bandwidth per node, bytes/second.
    pub bandwidth: f64,
    /// Number of nodes per dragonfly group (electrical group on Aries).
    pub nodes_per_group: usize,
    /// Extra hops paid by inter-group (global-link) routes.
    pub rng_detour_hops: u32,
}

impl NetworkSpec {
    /// Number of hops between two nodes under dragonfly minimal routing.
    pub fn hops(&self, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        let group_a = from / self.nodes_per_group.max(1);
        let group_b = to / self.nodes_per_group.max(1);
        if group_a == group_b {
            // router -> (intra-group link) -> router
            2
        } else {
            2 + self.rng_detour_hops + 1
        }
    }

    /// Latency of a message between two nodes, seconds.
    pub fn latency(&self, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        self.base_latency_s + self.per_hop_latency_s * self.hops(from, to) as f64
    }

    /// Time to move `bytes` from `from` to `to`, seconds. Zero-byte
    /// messages still pay latency (control messages).
    pub fn transfer_time(&self, from: usize, to: usize, bytes: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.latency(from, to) + bytes as f64 / self.bandwidth
    }

    /// Effective point-to-point bandwidth for large messages between two
    /// distinct nodes (asymptotic bytes/second).
    pub fn effective_bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> bool {
        self.base_latency_s >= 0.0
            && self.per_hop_latency_s >= 0.0
            && self.bandwidth > 0.0
            && self.nodes_per_group > 0
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        crate::cori::aries_network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkSpec {
        NetworkSpec {
            base_latency_s: 1.0e-6,
            per_hop_latency_s: 0.5e-6,
            bandwidth: 8.0e9,
            nodes_per_group: 4,
            rng_detour_hops: 1,
        }
    }

    #[test]
    fn same_node_is_free() {
        let n = net();
        assert_eq!(n.transfer_time(3, 3, 1 << 20), 0.0);
        assert_eq!(n.hops(3, 3), 0);
    }

    #[test]
    fn intra_group_cheaper_than_inter_group() {
        let n = net();
        // Nodes 0 and 1 share group 0; node 5 is in group 1.
        assert!(n.latency(0, 1) < n.latency(0, 5));
        assert_eq!(n.hops(0, 1), 2);
        assert_eq!(n.hops(0, 5), 4);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let n = net();
        let small = n.transfer_time(0, 1, 1024);
        let big = n.transfer_time(0, 1, 1024 * 1024);
        assert!(big > small);
        // Asymptotically bandwidth-bound.
        let huge = n.transfer_time(0, 1, 8_000_000_000);
        assert!((huge - (n.latency(0, 1) + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_pays_latency_only() {
        let n = net();
        assert!((n.transfer_time(0, 1, 0) - n.latency(0, 1)).abs() < 1e-15);
    }

    #[test]
    fn validate_catches_bad_bandwidth() {
        let mut n = net();
        n.bandwidth = 0.0;
        assert!(!n.validate());
    }
}
