//! Memory-bandwidth contention model.
//!
//! Each socket sustains a finite DRAM bandwidth. When the aggregate traffic
//! demanded by co-resident components (LLC refills plus streaming stores)
//! exceeds it, every memory access stretches by the over-subscription
//! factor — the standard M/D/1-free approximation used by co-location
//! interference studies (Dauwe et al. 2014).

use serde::{Deserialize, Serialize};

/// Tunables of the bandwidth model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Demand beyond this utilization of the socket bandwidth starts to
    /// queue (sustained bandwidth is below nominal peak).
    pub saturation_knee: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel { saturation_knee: 0.85 }
    }
}

impl MemoryModel {
    /// Bandwidth pressure multiplier for a socket with total demand
    /// `demand_bytes_per_s` against capacity `bw_bytes_per_s`.
    ///
    /// Returns 1.0 when unsaturated; grows linearly with over-subscription
    /// past the knee.
    pub fn pressure_multiplier(&self, demand_bytes_per_s: f64, bw_bytes_per_s: f64) -> f64 {
        if bw_bytes_per_s <= 0.0 {
            return 1.0;
        }
        let knee = self.saturation_knee.clamp(0.01, 1.0);
        let utilization = demand_bytes_per_s / bw_bytes_per_s;
        if utilization <= knee {
            1.0
        } else {
            1.0 + (utilization - knee) / knee
        }
    }

    /// Exposed (non-overlapped) stall cycles per memory event, given the
    /// uncontended penalty, the workload's memory-level-parallelism
    /// overlap, and the socket's pressure multiplier.
    pub fn exposed_stall_cycles(
        &self,
        penalty_cycles: f64,
        mlp_overlap: f64,
        pressure: f64,
    ) -> f64 {
        penalty_cycles * (1.0 - mlp_overlap.clamp(0.0, 1.0)) * pressure.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsaturated_socket_has_no_pressure() {
        let m = MemoryModel::default();
        assert_eq!(m.pressure_multiplier(10e9, 60e9), 1.0);
    }

    #[test]
    fn pressure_grows_past_knee() {
        let m = MemoryModel::default();
        let p1 = m.pressure_multiplier(60e9, 60e9);
        let p2 = m.pressure_multiplier(120e9, 60e9);
        assert!(p1 > 1.0);
        assert!(p2 > p1);
    }

    #[test]
    fn pressure_monotone_in_demand() {
        let m = MemoryModel::default();
        let mut prev = 0.0;
        for demand in [0.0, 20e9, 40e9, 60e9, 80e9, 100e9] {
            let p = m.pressure_multiplier(demand, 60e9);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn overlap_hides_stalls() {
        let m = MemoryModel::default();
        assert!((m.exposed_stall_cycles(200.0, 0.5, 1.0) - 100.0).abs() < 1e-9);
        assert!((m.exposed_stall_cycles(200.0, 0.0, 1.0) - 200.0).abs() < 1e-9);
        assert!((m.exposed_stall_cycles(200.0, 0.5, 2.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_is_safe() {
        let m = MemoryModel::default();
        assert_eq!(m.pressure_multiplier(10e9, 0.0), 1.0);
    }
}
