//! Platform topology: a homogeneous set of compute nodes plus the
//! interconnect, with core-allocation bookkeeping.

use serde::{Deserialize, Serialize};

use crate::error::PlatformError;
use crate::network::NetworkSpec;
use crate::node::NodeSpec;

/// How the cores of an allocation are bound to sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BindPolicy {
    /// Threads spread round-robin across sockets (default Linux scheduler
    /// behaviour for unbound processes, and what the paper's runs exhibit:
    /// co-located components contend on both LLCs).
    #[default]
    Spread,
    /// Threads packed onto as few sockets as possible (socket-compact
    /// binding, e.g. `--cpu-bind=sockets`).
    Compact,
}

/// A set of physical cores granted to one component on one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreAllocation {
    /// Node index within the platform.
    pub node: usize,
    /// Cores taken from each socket of that node; `per_socket.len()`
    /// equals the node's socket count and the entries sum to the total.
    pub per_socket: Vec<u32>,
}

impl CoreAllocation {
    /// Total cores in the allocation.
    pub fn total_cores(&self) -> u32 {
        self.per_socket.iter().sum()
    }

    /// Fraction of the allocation's cores living on socket `s`.
    pub fn socket_fraction(&self, s: usize) -> f64 {
        let total = self.total_cores();
        if total == 0 {
            0.0
        } else {
            self.per_socket[s] as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeState {
    free_per_socket: Vec<u32>,
    mem_reserved: u64,
}

/// A provisioned allocation of homogeneous compute nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    spec: NodeSpec,
    network: NetworkSpec,
    nodes: Vec<NodeState>,
}

impl Platform {
    /// Creates a platform of `num_nodes` nodes of the given spec.
    pub fn new(num_nodes: usize, spec: NodeSpec, network: NetworkSpec) -> Self {
        assert!(spec.validate(), "invalid node spec");
        assert!(network.validate(), "invalid network spec");
        let state = NodeState {
            free_per_socket: vec![spec.cores_per_socket; spec.sockets as usize],
            mem_reserved: 0,
        };
        Platform { spec, network, nodes: vec![state; num_nodes] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The (homogeneous) node hardware description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The interconnect description.
    pub fn network(&self) -> &NetworkSpec {
        &self.network
    }

    /// Cores still free on `node`.
    pub fn free_cores(&self, node: usize) -> Result<u32, PlatformError> {
        self.node_state(node).map(|n| n.free_per_socket.iter().sum())
    }

    fn node_state(&self, node: usize) -> Result<&NodeState, PlatformError> {
        self.nodes.get(node).ok_or(PlatformError::UnknownNode { node, nodes: self.nodes.len() })
    }

    /// Allocates `cores` physical cores on `node` under `policy`.
    pub fn allocate(
        &mut self,
        node: usize,
        cores: u32,
        policy: BindPolicy,
    ) -> Result<CoreAllocation, PlatformError> {
        if cores == 0 {
            return Err(PlatformError::EmptyAllocation);
        }
        let nodes_len = self.nodes.len();
        let state = self
            .nodes
            .get_mut(node)
            .ok_or(PlatformError::UnknownNode { node, nodes: nodes_len })?;
        let available: u32 = state.free_per_socket.iter().sum();
        if cores > available {
            return Err(PlatformError::InsufficientCores { node, requested: cores, available });
        }
        let sockets = state.free_per_socket.len();
        let mut per_socket = vec![0u32; sockets];
        let mut remaining = cores;
        match policy {
            BindPolicy::Spread => {
                // Round-robin across sockets, skipping exhausted ones.
                let mut s = 0usize;
                let mut stalled = 0usize;
                while remaining > 0 {
                    if state.free_per_socket[s] > per_socket[s] {
                        per_socket[s] += 1;
                        remaining -= 1;
                        stalled = 0;
                    } else {
                        stalled += 1;
                        debug_assert!(stalled <= sockets, "allocation accounting broken");
                    }
                    s = (s + 1) % sockets;
                }
            }
            BindPolicy::Compact => {
                // Fill sockets in index order.
                for (slot, &free) in per_socket.iter_mut().zip(&state.free_per_socket) {
                    let take = remaining.min(free);
                    *slot = take;
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
        for (s, taken) in per_socket.iter().enumerate() {
            state.free_per_socket[s] -= taken;
        }
        Ok(CoreAllocation { node, per_socket })
    }

    /// Returns the cores of an allocation to the free pool.
    pub fn release(&mut self, alloc: &CoreAllocation) {
        let state = &mut self.nodes[alloc.node];
        for (s, &taken) in alloc.per_socket.iter().enumerate() {
            state.free_per_socket[s] += taken;
            debug_assert!(state.free_per_socket[s] <= self.spec.cores_per_socket);
        }
    }

    /// Reserves `bytes` of DRAM on `node` (e.g. for a staging area).
    pub fn reserve_memory(&mut self, node: usize, bytes: u64) -> Result<(), PlatformError> {
        let capacity = self.spec.dram_bytes;
        let nodes_len = self.nodes.len();
        let state = self
            .nodes
            .get_mut(node)
            .ok_or(PlatformError::UnknownNode { node, nodes: nodes_len })?;
        let requested = state.mem_reserved + bytes;
        if requested > capacity {
            return Err(PlatformError::InsufficientMemory { node, requested, capacity });
        }
        state.mem_reserved = requested;
        Ok(())
    }

    /// DRAM currently reserved on `node`.
    pub fn reserved_memory(&self, node: usize) -> Result<u64, PlatformError> {
        self.node_state(node).map(|n| n.mem_reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cori::{aries_network, cori_node};

    fn platform(n: usize) -> Platform {
        Platform::new(n, cori_node(), aries_network())
    }

    #[test]
    fn spread_allocation_splits_across_sockets() {
        let mut p = platform(1);
        let a = p.allocate(0, 16, BindPolicy::Spread).unwrap();
        assert_eq!(a.per_socket, vec![8, 8]);
        assert_eq!(a.total_cores(), 16);
        assert_eq!(p.free_cores(0).unwrap(), 16);
    }

    #[test]
    fn compact_allocation_fills_first_socket() {
        let mut p = platform(1);
        let a = p.allocate(0, 16, BindPolicy::Compact).unwrap();
        assert_eq!(a.per_socket, vec![16, 0]);
        let b = p.allocate(0, 8, BindPolicy::Compact).unwrap();
        assert_eq!(b.per_socket, vec![0, 8]);
    }

    #[test]
    fn odd_spread_allocation() {
        let mut p = platform(1);
        let a = p.allocate(0, 7, BindPolicy::Spread).unwrap();
        assert_eq!(a.per_socket.iter().sum::<u32>(), 7);
        assert_eq!(a.per_socket[0], 4);
        assert_eq!(a.per_socket[1], 3);
    }

    #[test]
    fn spread_handles_uneven_free_cores() {
        let mut p = platform(1);
        let _first = p.allocate(0, 20, BindPolicy::Compact).unwrap(); // [16, 4]
                                                                      // Only 12 cores free, all on socket 1.
        let second = p.allocate(0, 10, BindPolicy::Spread).unwrap();
        assert_eq!(second.per_socket, vec![0, 10]);
    }

    #[test]
    fn over_allocation_fails() {
        let mut p = platform(1);
        p.allocate(0, 30, BindPolicy::Spread).unwrap();
        let err = p.allocate(0, 4, BindPolicy::Spread).unwrap_err();
        assert_eq!(err, PlatformError::InsufficientCores { node: 0, requested: 4, available: 2 });
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = platform(1);
        let a = p.allocate(0, 32, BindPolicy::Spread).unwrap();
        assert_eq!(p.free_cores(0).unwrap(), 0);
        p.release(&a);
        assert_eq!(p.free_cores(0).unwrap(), 32);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut p = platform(2);
        assert!(matches!(
            p.allocate(5, 1, BindPolicy::Spread),
            Err(PlatformError::UnknownNode { node: 5, nodes: 2 })
        ));
    }

    #[test]
    fn zero_core_allocation_rejected() {
        let mut p = platform(1);
        assert_eq!(
            p.allocate(0, 0, BindPolicy::Spread).unwrap_err(),
            PlatformError::EmptyAllocation
        );
    }

    #[test]
    fn memory_reservation_tracks_and_limits() {
        let mut p = platform(1);
        p.reserve_memory(0, 64 * 1024 * 1024 * 1024).unwrap();
        assert_eq!(p.reserved_memory(0).unwrap(), 64 * 1024 * 1024 * 1024);
        let err = p.reserve_memory(0, 100 * 1024 * 1024 * 1024).unwrap_err();
        assert!(matches!(err, PlatformError::InsufficientMemory { .. }));
    }

    #[test]
    fn socket_fraction() {
        let a = CoreAllocation { node: 0, per_socket: vec![12, 4] };
        assert!((a.socket_fraction(0) - 0.75).abs() < 1e-12);
        assert!((a.socket_fraction(1) - 0.25).abs() < 1e-12);
    }
}
