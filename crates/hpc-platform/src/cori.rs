//! Preset matching the paper's experimental platform: Cori, a Cray XC40 at
//! NERSC. Each compute node has two Intel Xeon E5-2698 v3 ("Haswell")
//! sockets with 16 cores each, 128 GB of DRAM, and nodes are connected by a
//! Cray Aries dragonfly interconnect.
//!
//! Values are public figures for the Haswell partition; they parameterize
//! the analytical model — the experiments depend on their *ratios*, not on
//! exact absolute numbers.

use crate::network::NetworkSpec;
use crate::node::NodeSpec;
use crate::topology::Platform;

/// One Cori Haswell compute node.
pub fn cori_node() -> NodeSpec {
    NodeSpec {
        sockets: 2,
        cores_per_socket: 16,
        core_freq_hz: 2.3e9,
        peak_ipc: 2.0,
        // 40 MB L3 per socket.
        llc_bytes_per_socket: 40 * 1024 * 1024,
        cache_line_bytes: 64,
        llc_miss_penalty_cycles: 220.0,
        // ~60 GB/s per socket sustainable (STREAM-like).
        mem_bw_per_socket: 60.0e9,
        // 128 GB per node.
        dram_bytes: 128 * 1024 * 1024 * 1024,
        // In-memory staging copy bandwidth within a node.
        local_copy_bw: 10.0e9,
        local_latency_s: 2.0e-6,
    }
}

/// The Cray Aries dragonfly interconnect of Cori.
pub fn aries_network() -> NetworkSpec {
    NetworkSpec {
        // Aries: ~1.3 us nearest-neighbour latency.
        base_latency_s: 1.3e-6,
        per_hop_latency_s: 0.6e-6,
        // ~8 GB/s injection bandwidth per node.
        bandwidth: 8.0e9,
        nodes_per_group: 384,
        rng_detour_hops: 1,
    }
}

/// A Cori-like platform with `nodes` compute nodes.
pub fn cori_platform(nodes: usize) -> Platform {
    Platform::new(nodes, cori_node(), aries_network())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_node_matches_paper_description() {
        let n = cori_node();
        assert_eq!(n.sockets, 2);
        assert_eq!(n.cores_per_socket, 16);
        assert_eq!(n.cores_per_node(), 32);
        assert_eq!(n.dram_bytes, 128 * 1024 * 1024 * 1024);
        assert!(n.validate());
    }

    #[test]
    fn platform_builds() {
        let p = cori_platform(3);
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.spec().cores_per_node(), 32);
    }
}
