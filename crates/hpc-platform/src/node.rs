//! Per-node hardware description.

use serde::{Deserialize, Serialize};

/// Static hardware description of one compute node. All nodes of a
/// [`crate::topology::Platform`] are homogeneous, as on Cori.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU sockets per node.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Core clock frequency in Hz.
    pub core_freq_hz: f64,
    /// Peak (contention-free) instructions per cycle of one core.
    pub peak_ipc: f64,
    /// Last-level cache capacity per socket, in bytes.
    pub llc_bytes_per_socket: u64,
    /// Cache line size in bytes.
    pub cache_line_bytes: u64,
    /// Average DRAM access penalty, in core cycles, paid by an LLC miss
    /// when memory bandwidth is uncontended.
    pub llc_miss_penalty_cycles: f64,
    /// Sustainable memory bandwidth per socket, bytes/second.
    pub mem_bw_per_socket: f64,
    /// DRAM capacity per node, bytes.
    pub dram_bytes: u64,
    /// Intra-node (shared-memory) staging copy bandwidth, bytes/second.
    /// Used when a component reads a chunk homed on its own node.
    pub local_copy_bw: f64,
    /// Intra-node staging latency per operation, seconds.
    pub local_latency_s: f64,
}

impl NodeSpec {
    /// Total physical cores per node.
    pub fn cores_per_node(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total LLC capacity per node.
    pub fn llc_bytes_per_node(&self) -> u64 {
        self.llc_bytes_per_socket * self.sockets as u64
    }

    /// Validates internal consistency (positive quantities).
    pub fn validate(&self) -> bool {
        self.sockets > 0
            && self.cores_per_socket > 0
            && self.core_freq_hz > 0.0
            && self.peak_ipc > 0.0
            && self.llc_bytes_per_socket > 0
            && self.cache_line_bytes > 0
            && self.llc_miss_penalty_cycles > 0.0
            && self.mem_bw_per_socket > 0.0
            && self.dram_bytes > 0
            && self.local_copy_bw > 0.0
            && self.local_latency_s >= 0.0
    }
}

impl Default for NodeSpec {
    /// A generic two-socket server; the Cori preset in [`crate::cori`] is
    /// the one used by the paper's experiments.
    fn default() -> Self {
        crate::cori::cori_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let n = NodeSpec::default();
        assert_eq!(n.cores_per_node(), n.sockets * n.cores_per_socket);
        assert_eq!(n.llc_bytes_per_node(), n.llc_bytes_per_socket * n.sockets as u64);
        assert!(n.validate());
    }

    #[test]
    fn invalid_spec_detected() {
        let n = NodeSpec { core_freq_hz: 0.0, ..NodeSpec::default() };
        assert!(!n.validate());
    }
}
