//! Synthetic hardware performance counters.
//!
//! The paper collects counters with TAU/PAPI on real Haswell nodes. Here
//! counters are synthesized from the interference model's solved steady
//! state, so the same counter→metric pipeline (Table 1 of the paper) runs
//! unmodified on simulated executions.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::interference::PerfEstimate;

/// Accumulated hardware counters for one component over some interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HwCounters {
    /// Dynamic instructions retired.
    pub instructions: f64,
    /// Core cycles consumed while retiring them (busy cycles).
    pub cycles: f64,
    /// Last-level-cache references.
    pub llc_references: f64,
    /// Last-level-cache misses.
    pub llc_misses: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: f64,
}

impl HwCounters {
    /// Counters for `steps` steady-state steps of a solved component.
    pub fn from_estimate(est: &PerfEstimate, instructions_per_step: f64, steps: u64) -> Self {
        let n = steps as f64;
        HwCounters {
            instructions: instructions_per_step * n,
            cycles: instructions_per_step * est.cpi * n,
            llc_references: est.llc_refs_per_step * n,
            llc_misses: est.llc_misses_per_step * n,
            dram_bytes: est.dram_bytes_per_step * n,
        }
    }

    /// LLC miss ratio: misses / references (Table 1). NaN-free.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.llc_references <= 0.0 {
            0.0
        } else {
            self.llc_misses / self.llc_references
        }
    }

    /// Memory intensity: misses / instructions (Table 1). NaN-free.
    pub fn memory_intensity(&self) -> f64 {
        if self.instructions <= 0.0 {
            0.0
        } else {
            self.llc_misses / self.instructions
        }
    }

    /// Instructions per cycle (Table 1). NaN-free.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions / self.cycles
        }
    }

    /// True iff every field is finite and non-negative and misses do not
    /// exceed references.
    pub fn is_consistent(&self) -> bool {
        let fields =
            [self.instructions, self.cycles, self.llc_references, self.llc_misses, self.dram_bytes];
        fields.iter().all(|v| v.is_finite() && *v >= 0.0)
            && self.llc_misses <= self.llc_references + 1e-9
    }
}

impl Add for HwCounters {
    type Output = HwCounters;
    fn add(self, rhs: HwCounters) -> HwCounters {
        HwCounters {
            instructions: self.instructions + rhs.instructions,
            cycles: self.cycles + rhs.cycles,
            llc_references: self.llc_references + rhs.llc_references,
            llc_misses: self.llc_misses + rhs.llc_misses,
            dram_bytes: self.dram_bytes + rhs.dram_bytes,
        }
    }
}

impl AddAssign for HwCounters {
    fn add_assign(&mut self, rhs: HwCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> HwCounters {
        HwCounters {
            instructions: 1e9,
            cycles: 2e9,
            llc_references: 2e7,
            llc_misses: 4e6,
            dram_bytes: 4e6 * 64.0,
        }
    }

    #[test]
    fn table1_metrics() {
        let c = counters();
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.llc_miss_ratio() - 0.2).abs() < 1e-12);
        assert!((c.memory_intensity() - 4e-3).abs() < 1e-15);
        assert!(c.is_consistent());
    }

    #[test]
    fn zero_counters_are_safe() {
        let c = HwCounters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_miss_ratio(), 0.0);
        assert_eq!(c.memory_intensity(), 0.0);
        assert!(c.is_consistent());
    }

    #[test]
    fn addition_accumulates() {
        let mut a = counters();
        a += counters();
        assert!((a.instructions - 2e9).abs() < 1.0);
        assert!((a.ipc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_detected() {
        let mut c = counters();
        c.llc_misses = c.llc_references * 2.0;
        assert!(!c.is_consistent());
    }
}
