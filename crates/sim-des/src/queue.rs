//! The pending-event queue: a binary min-heap keyed by (time, sequence).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::event::{EventId, EventKey, ScheduledEvent};

/// Min-heap of scheduled events with O(log n) push/pop and lazy cancellation.
pub(crate) struct EventQueue<S> {
    heap: BinaryHeap<HeapEntry<S>>,
    cancelled: HashSet<u64>,
    live: usize,
}

struct HeapEntry<S>(Reverse<EventKey>, ScheduledEvent<S>);

impl<S> PartialEq for HeapEntry<S> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<S> Eq for HeapEntry<S> {}
impl<S> PartialOrd for HeapEntry<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for HeapEntry<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl<S> EventQueue<S> {
    pub(crate) fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), live: 0 }
    }

    /// Number of live (non-cancelled) pending events.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    #[allow(dead_code)] // used by queue tests; the engine tracks via len()
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub(crate) fn push(&mut self, ev: ScheduledEvent<S>) {
        self.live += 1;
        self.heap.push(HeapEntry(Reverse(ev.key), ev));
    }

    /// Marks an event as cancelled. Returns true if it was pending.
    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.insert(id.0) {
            // The event may have already fired; the flag is only honoured
            // when the entry is still in the heap, so probe conservatively.
            // We cannot cheaply verify membership, so `live` is adjusted on
            // pop instead (see `pop`).
            true
        } else {
            false
        }
    }

    /// Earliest pending event key, skipping cancelled entries.
    pub(crate) fn peek_key(&mut self) -> Option<EventKey> {
        self.drop_cancelled_head();
        self.heap.peek().map(|e| e.1.key)
    }

    /// Pops the earliest live event.
    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent<S>> {
        self.drop_cancelled_head();
        let entry = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some(entry.1)
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.1.key.seq) || head.1.cancelled {
                self.heap.pop();
                self.live = self.live.saturating_sub(1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventAction;
    use crate::time::SimTime;

    fn ev(t: u64, seq: u64) -> ScheduledEvent<()> {
        ScheduledEvent {
            key: EventKey { time: SimTime::from_nanos(t), seq },
            action: EventAction::Call(Box::new(|_, _| {})),
            cancelled: false,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().key.time, SimTime::from_nanos(10));
        assert_eq!(q.pop().unwrap().key.time, SimTime::from_nanos(20));
        assert_eq!(q.pop().unwrap().key.time, SimTime::from_nanos(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        q.push(ev(10, 7));
        q.push(ev(10, 3));
        q.push(ev(10, 5));
        assert_eq!(q.pop().unwrap().key.seq, 3);
        assert_eq!(q.pop().unwrap().key.seq, 5);
        assert_eq!(q.pop().unwrap().key.seq, 7);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.cancel(EventId(0));
        let first = q.pop().unwrap();
        assert_eq!(first.key.seq, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        q.push(ev(10, 0));
        q.push(ev(20, 1));
        q.cancel(EventId(0));
        assert_eq!(q.peek_key().unwrap().seq, 1);
    }
}
