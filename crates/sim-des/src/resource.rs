//! Counted resources with FIFO admission, usable from processes.
//!
//! A [`Resource`] is plain data living inside the engine's shared state.
//! Processes try to [`Resource::try_acquire`]; on failure they block on the
//! resource's [`Signal`] and retry when a release fires it. FIFO fairness is
//! enforced with ticket numbers: a process may only acquire when its ticket
//! is at the head of the queue.

use crate::process::Signal;
use crate::time::{SimDuration, SimTime};

/// A ticket in a resource's FIFO queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

/// A counted resource (e.g. cores of a node, staging-buffer slots).
#[derive(Debug)]
pub struct Resource {
    capacity: u64,
    in_use: u64,
    signal: Signal,
    next_ticket: u64,
    serving: u64,
    /// Utilization bookkeeping (time-weighted busy tokens).
    busy_integral: f64,
    last_change: SimTime,
}

impl Resource {
    /// Creates a resource with `capacity` tokens, waking blocked processes
    /// through `signal`.
    pub fn new(capacity: u64, signal: Signal) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Resource {
            capacity,
            in_use: 0,
            signal,
            next_ticket: 0,
            serving: 0,
            busy_integral: 0.0,
            last_change: SimTime::ZERO,
        }
    }

    /// The wake-up signal processes should block on when acquisition fails.
    pub fn signal(&self) -> Signal {
        self.signal
    }

    /// Total capacity in tokens.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Tokens currently held.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Tokens currently free.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Draws a FIFO ticket. Call once per acquisition attempt sequence.
    pub fn enqueue(&mut self) -> Ticket {
        let t = Ticket(self.next_ticket);
        self.next_ticket += 1;
        t
    }

    /// Attempts to take `tokens` with FIFO fairness: succeeds only when the
    /// ticket is being served and enough tokens are free. On success the
    /// ticket is consumed.
    pub fn try_acquire(&mut self, ticket: Ticket, tokens: u64, now: SimTime) -> bool {
        assert!(tokens <= self.capacity, "request exceeds resource capacity");
        if ticket.0 != self.serving {
            return false;
        }
        if self.in_use + tokens > self.capacity {
            return false;
        }
        self.account(now);
        self.in_use += tokens;
        self.serving += 1;
        true
    }

    /// Returns `tokens` to the pool. The caller must then emit
    /// [`Resource::signal`] so blocked processes retry.
    pub fn release(&mut self, tokens: u64, now: SimTime) {
        assert!(tokens <= self.in_use, "releasing more tokens than held");
        self.account(now);
        self.in_use -= tokens;
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_change).as_secs_f64();
        self.busy_integral += dt * self.in_use as f64;
        self.last_change = now;
    }

    /// Mean utilization (busy tokens / capacity) over `[0, now]`.
    pub fn mean_utilization(&mut self, now: SimTime) -> f64 {
        self.account(now);
        let elapsed = now.duration_since(SimTime::ZERO).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.busy_integral / (elapsed * self.capacity as f64)
        }
    }
}

/// Helper: the retry loop a process runs to acquire a resource, expressed as
/// a reusable state machine fragment.
#[derive(Debug, Clone, Copy)]
pub enum AcquireState {
    /// No ticket drawn yet.
    Idle,
    /// Holding a ticket, waiting to be served.
    Queued(Ticket),
    /// Tokens held.
    Held(u64),
}

impl AcquireState {
    /// Drives one step of the acquire protocol. Returns `Ok(true)` when the
    /// tokens are held, `Ok(false)` when the caller should block on the
    /// resource signal and call again after wake-up.
    pub fn advance(&mut self, res: &mut Resource, tokens: u64, now: SimTime) -> bool {
        loop {
            match *self {
                AcquireState::Idle => {
                    let t = res.enqueue();
                    *self = AcquireState::Queued(t);
                }
                AcquireState::Queued(ticket) => {
                    if res.try_acquire(ticket, tokens, now) {
                        *self = AcquireState::Held(tokens);
                        return true;
                    }
                    return false;
                }
                AcquireState::Held(_) => return true,
            }
        }
    }

    /// Releases held tokens (if any), resetting to `Idle`. Returns true if
    /// a release actually happened (caller must emit the resource signal).
    pub fn release(&mut self, res: &mut Resource, now: SimTime) -> bool {
        if let AcquireState::Held(tokens) = *self {
            res.release(tokens, now);
            *self = AcquireState::Idle;
            true
        } else {
            *self = AcquireState::Idle;
            false
        }
    }
}

/// Computes the service time of a fixed amount of work on `tokens` parallel
/// servers (work conservation, no overhead).
pub fn service_time(work_token_seconds: f64, tokens: u64) -> SimDuration {
    assert!(tokens > 0);
    SimDuration::from_secs_f64(work_token_seconds / tokens as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn acquire_release_cycle() {
        let mut r = Resource::new(4, Signal(1));
        let ticket = r.enqueue();
        assert!(r.try_acquire(ticket, 3, t(0.0)));
        assert_eq!(r.available(), 1);
        r.release(3, t(1.0));
        assert_eq!(r.available(), 4);
    }

    #[test]
    fn fifo_order_enforced() {
        let mut r = Resource::new(2, Signal(1));
        let first = r.enqueue();
        let second = r.enqueue();
        // Second in line cannot jump the queue even though tokens are free.
        assert!(!r.try_acquire(second, 1, t(0.0)));
        assert!(r.try_acquire(first, 1, t(0.0)));
        assert!(r.try_acquire(second, 1, t(0.0)));
    }

    #[test]
    fn capacity_respected() {
        let mut r = Resource::new(2, Signal(1));
        let a = r.enqueue();
        assert!(r.try_acquire(a, 2, t(0.0)));
        let b = r.enqueue();
        assert!(!r.try_acquire(b, 1, t(0.0)));
        r.release(2, t(1.0));
        assert!(r.try_acquire(b, 1, t(1.0)));
    }

    #[test]
    #[should_panic(expected = "request exceeds resource capacity")]
    fn oversized_request_panics() {
        let mut r = Resource::new(2, Signal(1));
        let a = r.enqueue();
        r.try_acquire(a, 3, t(0.0));
    }

    #[test]
    fn utilization_is_time_weighted() {
        let mut r = Resource::new(2, Signal(1));
        let a = r.enqueue();
        assert!(r.try_acquire(a, 2, t(0.0)));
        r.release(2, t(1.0));
        // Busy 2 tokens for 1s out of 2s at capacity 2 => 50%.
        let u = r.mean_utilization(t(2.0));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn acquire_state_machine() {
        let mut r = Resource::new(1, Signal(1));
        let mut holder = AcquireState::Idle;
        let mut waiter = AcquireState::Idle;
        assert!(holder.advance(&mut r, 1, t(0.0)));
        assert!(!waiter.advance(&mut r, 1, t(0.0)));
        assert!(holder.release(&mut r, t(1.0)));
        assert!(waiter.advance(&mut r, 1, t(1.0)));
    }

    #[test]
    fn service_time_scales_inverse_with_tokens() {
        assert_eq!(service_time(8.0, 2), SimDuration::from_secs(4));
        assert_eq!(service_time(8.0, 8), SimDuration::from_secs(1));
    }
}
