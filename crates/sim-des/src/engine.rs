//! The discrete-event engine: a virtual clock, a pending-event queue, and a
//! registry of [`Process`]es.
//!
//! Determinism guarantees:
//! * events at equal times fire in the order they were scheduled;
//! * signal wake-ups are scheduled in process-registration order;
//! * no wall-clock or OS entropy is consulted anywhere.

use std::collections::HashMap;

use crate::event::{EventAction, EventId, EventKey, ScheduledEvent};
use crate::process::{Poll, Process, ProcessId, Signal};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Execution context passed into event actions and process polls.
///
/// It carries the current virtual time and collects side requests (signal
/// emissions) that the engine applies after the action returns.
pub struct Context {
    now: SimTime,
    emitted: Vec<Signal>,
}

impl Context {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Emits a signal, waking every process blocked on it. Wake-ups happen
    /// at the current virtual time, after the running action completes.
    pub fn emit(&mut self, signal: Signal) {
        self.emitted.push(signal);
    }
}

/// Outcome of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: no process can make further progress.
    Quiescent,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The configured event budget was exhausted (livelock guard).
    EventBudgetExhausted,
}

struct ProcessSlot<S> {
    process: Box<dyn Process<S>>,
    finished: bool,
    /// True while the process has a pending poll event or is wait-listed,
    /// preventing duplicate scheduling.
    scheduled: bool,
}

/// A deterministic discrete-event simulation engine over shared state `S`.
pub struct Engine<S> {
    state: S,
    now: SimTime,
    queue: EventQueue<S>,
    next_seq: u64,
    processes: Vec<ProcessSlot<S>>,
    waiters: HashMap<Signal, Vec<ProcessId>>,
    events_fired: u64,
    event_budget: u64,
}

impl<S> Engine<S> {
    /// Creates an engine owning `state`, with the clock at zero.
    pub fn new(state: S) -> Self {
        Engine {
            state,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            next_seq: 0,
            processes: Vec::new(),
            waiters: HashMap::new(),
            events_fired: 0,
            event_budget: u64::MAX,
        }
    }

    /// Caps the total number of events the engine will fire (livelock
    /// guard for zero-delay loops). Default: unlimited.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared state accessor.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable shared state accessor.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Total number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute time `at` (must not be in the
    /// past). Returns an id that can cancel the event.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut S, &mut Context) + Send + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        self.push_event(at, EventAction::Call(Box::new(action)))
    }

    /// Schedules `action` to run after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut S, &mut Context) + Send + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a pending event. Returns true if it had not fired yet.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Registers a process and schedules its first poll at the current time.
    pub fn spawn(&mut self, process: Box<dyn Process<S>>) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(ProcessSlot { process, finished: false, scheduled: true });
        self.push_event(self.now, EventAction::PollProcess(id));
        id
    }

    /// True iff the given process has returned [`Poll::Done`].
    pub fn is_finished(&self, id: ProcessId) -> bool {
        self.processes[id.0].finished
    }

    /// True iff every registered process has finished.
    pub fn all_finished(&self) -> bool {
        self.processes.iter().all(|p| p.finished)
    }

    fn push_event(&mut self, at: SimTime, action: EventAction<S>) -> EventId {
        let key = EventKey { time: at, seq: self.next_seq };
        self.next_seq += 1;
        let ev = ScheduledEvent { key, action, cancelled: false };
        let id = ev.id();
        self.queue.push(ev);
        id
    }

    /// Fires the single earliest pending event. Returns false if the queue
    /// was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.key.time >= self.now, "event queue went backwards");
        self.now = ev.key.time;
        self.events_fired += 1;

        let mut ctx = Context { now: self.now, emitted: Vec::new() };
        match ev.action {
            EventAction::Call(f) => f(&mut self.state, &mut ctx),
            EventAction::PollProcess(pid) => self.poll_process(pid, &mut ctx),
        }
        let emitted = ctx.emitted;
        for signal in emitted {
            self.fire_signal(signal);
        }
        true
    }

    fn poll_process(&mut self, pid: ProcessId, ctx: &mut Context) {
        let slot = &mut self.processes[pid.0];
        if slot.finished {
            return;
        }
        slot.scheduled = false;
        // The process is temporarily detached so it can receive `&mut state`
        // without aliasing the engine's process table.
        let mut process = std::mem::replace(&mut slot.process, Box::new(NoopProcess));
        let poll = process.poll(&mut self.state, ctx);
        let slot = &mut self.processes[pid.0];
        slot.process = process;
        match poll {
            Poll::Sleep(d) => {
                slot.scheduled = true;
                self.push_event(self.now + d, EventAction::PollProcess(pid));
            }
            Poll::WaitSignal(sig) => {
                slot.scheduled = true;
                self.waiters.entry(sig).or_default().push(pid);
            }
            Poll::Done => {
                slot.finished = true;
            }
        }
    }

    fn fire_signal(&mut self, signal: Signal) {
        let Some(waiting) = self.waiters.remove(&signal) else {
            return;
        };
        for pid in waiting {
            // Wake-up = a poll scheduled at the current instant; schedule
            // order (and therefore wait order) is preserved.
            self.push_event(self.now, EventAction::PollProcess(pid));
        }
    }

    /// Emits a signal from outside any event (e.g. before starting the run).
    pub fn emit_signal(&mut self, signal: Signal) {
        self.fire_signal(signal);
    }

    /// Runs until the queue drains, `horizon` is passed, or the event budget
    /// is exhausted.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.events_fired >= self.event_budget {
                return RunOutcome::EventBudgetExhausted;
            }
            match self.queue.peek_key() {
                None => return RunOutcome::Quiescent,
                Some(key) if key.time > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until the queue drains or the event budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

/// Placeholder swapped in while a process is being polled.
struct NoopProcess;
impl<S> Process<S> for NoopProcess {
    fn poll(&mut self, _state: &mut S, _ctx: &mut Context) -> Poll {
        unreachable!("NoopProcess must never be polled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Poll;

    #[test]
    fn events_fire_in_time_order_and_advance_clock() {
        let mut engine = Engine::new(Vec::<u32>::new());
        engine.schedule_in(SimDuration::from_secs(2), |s: &mut Vec<u32>, _| s.push(2));
        engine.schedule_in(SimDuration::from_secs(1), |s: &mut Vec<u32>, _| s.push(1));
        engine.schedule_in(SimDuration::from_secs(3), |s: &mut Vec<u32>, _| s.push(3));
        assert_eq!(engine.run(), RunOutcome::Quiescent);
        assert_eq!(engine.state(), &vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_secs_f64(3.0));
        assert_eq!(engine.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut engine = Engine::new(Vec::<u32>::new());
        for i in 0..10u32 {
            engine.schedule_in(SimDuration::from_secs(1), move |s: &mut Vec<u32>, _| s.push(i));
        }
        engine.run();
        assert_eq!(engine.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_event_does_not_fire() {
        let mut engine = Engine::new(0u32);
        let id = engine.schedule_in(SimDuration::from_secs(1), |s: &mut u32, _| *s += 1);
        engine.schedule_in(SimDuration::from_secs(2), |s: &mut u32, _| *s += 10);
        assert!(engine.cancel(id));
        engine.run();
        assert_eq!(*engine.state(), 10);
    }

    #[test]
    fn events_can_schedule_into_engine_via_processes() {
        // A process that sleeps twice then finishes.
        struct TwoSleeps {
            polls: u32,
        }
        impl Process<Vec<SimTime>> for TwoSleeps {
            fn poll(&mut self, state: &mut Vec<SimTime>, ctx: &mut Context) -> Poll {
                state.push(ctx.now());
                self.polls += 1;
                if self.polls <= 2 {
                    Poll::Sleep(SimDuration::from_secs(5))
                } else {
                    Poll::Done
                }
            }
        }
        let mut engine = Engine::new(Vec::new());
        let pid = engine.spawn(Box::new(TwoSleeps { polls: 0 }));
        engine.run();
        assert!(engine.is_finished(pid));
        assert_eq!(
            engine.state(),
            &vec![SimTime::ZERO, SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(10.0)]
        );
    }

    #[test]
    fn signal_wakes_waiting_process() {
        // Producer emits a signal at t=3; consumer waits for it.
        struct Consumer {
            woke: bool,
        }
        impl Process<Option<SimTime>> for Consumer {
            fn poll(&mut self, state: &mut Option<SimTime>, ctx: &mut Context) -> Poll {
                if self.woke {
                    *state = Some(ctx.now());
                    Poll::Done
                } else {
                    self.woke = true;
                    Poll::WaitSignal(Signal(7))
                }
            }
        }
        let mut engine = Engine::new(None);
        engine.spawn(Box::new(Consumer { woke: false }));
        engine.schedule_in(SimDuration::from_secs(3), |_s, ctx| ctx.emit(Signal(7)));
        assert_eq!(engine.run(), RunOutcome::Quiescent);
        assert_eq!(*engine.state(), Some(SimTime::from_secs_f64(3.0)));
    }

    #[test]
    fn condvar_semantics_recheck_condition() {
        // Consumer needs state >= 2; two increments are needed, each
        // followed by a signal. The consumer must re-wait after the first.
        struct Consumer;
        impl Process<(u32, bool)> for Consumer {
            fn poll(&mut self, state: &mut (u32, bool), _ctx: &mut Context) -> Poll {
                if state.0 >= 2 {
                    state.1 = true;
                    Poll::Done
                } else {
                    Poll::WaitSignal(Signal(1))
                }
            }
        }
        let mut engine = Engine::new((0u32, false));
        engine.spawn(Box::new(Consumer));
        engine.schedule_in(SimDuration::from_secs(1), |s: &mut (u32, bool), ctx| {
            s.0 += 1;
            ctx.emit(Signal(1));
        });
        engine.schedule_in(SimDuration::from_secs(2), |s: &mut (u32, bool), ctx| {
            s.0 += 1;
            ctx.emit(Signal(1));
        });
        engine.run();
        assert!(engine.state().1, "consumer should have observed the condition");
    }

    #[test]
    fn run_until_horizon_stops_early() {
        let mut engine = Engine::new(0u32);
        engine.schedule_in(SimDuration::from_secs(1), |s: &mut u32, _| *s += 1);
        engine.schedule_in(SimDuration::from_secs(10), |s: &mut u32, _| *s += 1);
        let outcome = engine.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(*engine.state(), 1);
        assert_eq!(engine.pending_events(), 1);
    }

    #[test]
    fn event_budget_guards_livelock() {
        // A process that never advances time.
        struct Spinner;
        impl Process<()> for Spinner {
            fn poll(&mut self, _s: &mut (), _ctx: &mut Context) -> Poll {
                Poll::Sleep(SimDuration::ZERO)
            }
        }
        let mut engine = Engine::new(());
        engine.spawn(Box::new(Spinner));
        engine.set_event_budget(100);
        assert_eq!(engine.run(), RunOutcome::EventBudgetExhausted);
        assert_eq!(engine.events_fired(), 100);
    }

    #[test]
    fn closure_processes_work() {
        let mut polls = 0;
        let proc = move |s: &mut u32, _ctx: &mut Context| {
            polls += 1;
            *s += 1;
            if polls < 3 {
                Poll::Sleep(SimDuration::from_secs(1))
            } else {
                Poll::Done
            }
        };
        let mut engine = Engine::new(0u32);
        engine.spawn(Box::new(proc));
        engine.run();
        assert_eq!(*engine.state(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut engine = Engine::new(0u32);
        engine.schedule_in(SimDuration::from_secs(1), |_s, _c| {});
        engine.run();
        engine.schedule_at(SimTime::ZERO, |_s, _c| {});
    }
}
