//! A light process abstraction on top of the event engine.
//!
//! A [`Process`] is a resumable state machine: the engine repeatedly calls
//! [`Process::poll`], and the process answers with what it wants to do next —
//! sleep for a virtual duration, block on a [`Signal`], or finish. Blocking
//! on a signal has condition-variable semantics: a process woken by a signal
//! re-runs its `poll`, re-checks its condition against the shared state, and
//! may decide to wait again.

use crate::engine::Context;
use crate::time::SimDuration;

/// Identifier of a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// The raw index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A broadcast wake-up channel. Every process blocked on a signal is woken
/// when it is emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(pub u64);

/// What a process wants to do after being polled.
#[derive(Debug)]
pub enum Poll {
    /// Advance virtual time by `0` or more nanoseconds, then poll again.
    Sleep(SimDuration),
    /// Block until the signal is emitted, then poll again.
    WaitSignal(Signal),
    /// The process has finished and will never be polled again.
    Done,
}

/// A resumable simulation actor operating on shared state `S`.
pub trait Process<S>: Send {
    /// Resumes the process. Returns what it wants to do next.
    ///
    /// `ctx` exposes the current virtual time and lets the process emit
    /// signals that wake other processes.
    fn poll(&mut self, state: &mut S, ctx: &mut Context) -> Poll;

    /// Human-readable name used in diagnostics.
    fn name(&self) -> &str {
        "process"
    }
}

/// Blanket impl so plain closures can act as processes in tests and simple
/// simulations.
impl<S, F> Process<S> for F
where
    F: FnMut(&mut S, &mut Context) -> Poll + Send,
{
    fn poll(&mut self, state: &mut S, ctx: &mut Context) -> Poll {
        self(state, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        assert_eq!(ProcessId(3).index(), 3);
    }

    #[test]
    fn signal_equality() {
        assert_eq!(Signal(1), Signal(1));
        assert_ne!(Signal(1), Signal(2));
    }
}
