//! # sim-des — deterministic discrete-event simulation engine
//!
//! The substrate on which the workflow-ensemble experiments run when not
//! executing on real threads. It provides:
//!
//! * an integer-nanosecond virtual clock ([`SimTime`], [`SimDuration`]);
//! * an event queue with deterministic tie-breaking ([`Engine`]);
//! * a resumable-process abstraction with condition-variable style signals
//!   ([`Process`], [`Signal`]);
//! * counted FIFO resources ([`Resource`]);
//! * streaming statistics ([`RunningStats`], [`TimeWeighted`], [`Histogram`]).
//!
//! Determinism is a design requirement: two runs of the same model produce
//! identical event orders and timestamps, which is what makes the paper's
//! experiment grid reproducible.
//!
//! ## Example
//!
//! ```
//! use sim_des::{Engine, SimDuration};
//!
//! let mut engine = Engine::new(0u64);
//! engine.schedule_in(SimDuration::from_secs(1), |count: &mut u64, _ctx| *count += 1);
//! engine.schedule_in(SimDuration::from_secs(2), |count: &mut u64, _ctx| *count += 1);
//! engine.run();
//! assert_eq!(*engine.state(), 2);
//! assert_eq!(engine.now().as_secs_f64(), 2.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod process;
pub mod queue;
pub mod resource;
pub mod stats;
pub mod time;

pub use engine::{Context, Engine, RunOutcome};
pub use event::EventId;
pub use process::{Poll, Process, ProcessId, Signal};
pub use resource::{AcquireState, Resource, Ticket};
pub use stats::{Histogram, RunningStats, TimeWeighted};
pub use time::{SimDuration, SimTime};
