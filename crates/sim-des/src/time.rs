//! Virtual time for the discrete-event engine.
//!
//! Time is stored as an integer number of **nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Floating-point
//! seconds are accepted and produced at the API boundary only.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock.
///
/// `SimTime::ZERO` is the epoch at which every run starts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from integer nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from (possibly fractional) seconds since the epoch.
    ///
    /// Negative and non-finite inputs saturate to zero; values beyond the
    /// representable range saturate to [`SimTime::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The duration since an earlier instant, saturating to zero if
    /// `earlier` is actually later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from integer nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a span from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Builds a span from integer milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Builds a span from integer seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(NANOS_PER_SEC))
    }

    /// Builds a span from (possibly fractional) seconds.
    ///
    /// Negative and non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// The span in integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// The larger of two spans.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two spans.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(*self >= rhs, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrip() {
        let t = SimTime::from_nanos(1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!((t + d).as_nanos(), 1_750_000_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d * 3u64, SimDuration::from_secs(3));
        assert_eq!(d / 4, SimDuration::from_millis(250));
        let half = d * 0.5f64;
        assert_eq!(half, SimDuration::from_millis(500));
    }

    #[test]
    fn min_max_and_zero() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn ordering_is_total_on_nanos() {
        let mut v = vec![SimTime::from_nanos(5), SimTime::from_nanos(1), SimTime::from_nanos(3)];
        v.sort();
        assert_eq!(v, vec![SimTime::from_nanos(1), SimTime::from_nanos(3), SimTime::from_nanos(5)]);
    }
}
