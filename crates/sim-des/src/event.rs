//! Scheduled events and their deterministic ordering.

use crate::time::SimTime;

/// Identifier handed back when an event is scheduled; can be used to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number of this event.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The key by which pending events are ordered: primary by time, secondary
/// by insertion sequence so that simultaneous events fire in schedule order
/// (deterministic tie-breaking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
}

/// A scheduled event: an ordering key plus the action to run.
pub(crate) struct ScheduledEvent<S> {
    pub(crate) key: EventKey,
    pub(crate) action: EventAction<S>,
    pub(crate) cancelled: bool,
}

/// A boxed event callback run against the shared state and engine context.
pub(crate) type EventCallback<S> = Box<dyn FnOnce(&mut S, &mut crate::engine::Context) + Send>;

/// The kinds of work an event can carry.
pub(crate) enum EventAction<S> {
    /// Run an arbitrary closure against the shared state.
    Call(EventCallback<S>),
    /// Poll a registered process.
    PollProcess(crate::process::ProcessId),
}

impl<S> ScheduledEvent<S> {
    pub(crate) fn id(&self) -> EventId {
        EventId(self.key.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = EventKey { time: SimTime::from_nanos(10), seq: 5 };
        let b = EventKey { time: SimTime::from_nanos(10), seq: 6 };
        let c = EventKey { time: SimTime::from_nanos(11), seq: 0 };
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }
}
