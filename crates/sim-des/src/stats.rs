//! Streaming statistics used across the workspace: Welford mean/variance,
//! time-weighted averages, and simple fixed-bin histograms.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by N, matching the paper's Eq. 9).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// tokens in use, …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    integral: f64,
    last_value: f64,
    last_time: SimTime,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted { integral: 0.0, last_value: value, last_time: start, start }
    }

    /// Records a change of value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_time).as_secs_f64();
        self.integral += dt * self.last_value;
        self.last_value = value;
        self.last_time = now;
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let dt = now.duration_since(self.last_time).as_secs_f64();
        let total = now.duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.integral + dt * self.last_value) / total
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `n_bins` equal bins across `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(hi > lo && n_bins > 0, "invalid histogram bounds");
        Histogram { lo, hi, bins: vec![0; n_bins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in `[0,1]` from bin midpoints.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs_f64(1.0), 10.0); // 0 for 1s
        tw.set(SimTime::from_secs_f64(3.0), 0.0); // 10 for 2s
        let mean = tw.mean(SimTime::from_secs_f64(4.0)); // 0 for 1s
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.bins().iter().sum::<u64>(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        let med = h.quantile(0.5);
        assert!((med - 4.5).abs() <= 1.0, "median {med}");
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins().iter().sum::<u64>(), 1);
    }
}
