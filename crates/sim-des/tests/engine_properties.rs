//! Property-based tests of the discrete-event engine: determinism,
//! causal ordering, and clock monotonicity under arbitrary schedules.

use proptest::prelude::*;
use sim_des::{Context, Engine, Poll, Process, Signal, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn events_fire_in_nondecreasing_time_order(
        delays in prop::collection::vec(0u64..1_000_000, 1..100)
    ) {
        let mut engine = Engine::new(Vec::<u64>::new());
        for &d in &delays {
            engine.schedule_in(SimDuration::from_nanos(d), move |log: &mut Vec<u64>, ctx| {
                log.push(ctx.now().as_nanos());
            });
        }
        engine.run();
        let log = engine.state();
        prop_assert_eq!(log.len(), delays.len());
        prop_assert!(log.windows(2).all(|w| w[0] <= w[1]), "clock went backwards");
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        prop_assert_eq!(log, &sorted);
    }

    #[test]
    fn identical_schedules_replay_identically(
        delays in prop::collection::vec(0u64..1_000_000, 1..60)
    ) {
        let run = |delays: &[u64]| {
            let mut engine = Engine::new(Vec::<(u64, usize)>::new());
            for (i, &d) in delays.iter().enumerate() {
                engine.schedule_in(
                    SimDuration::from_nanos(d),
                    move |log: &mut Vec<(u64, usize)>, ctx| {
                        log.push((ctx.now().as_nanos(), i));
                    },
                );
            }
            engine.run();
            engine.into_state()
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }

    #[test]
    fn processes_advance_clock_by_their_sleeps(
        sleeps in prop::collection::vec(1u64..1_000_000, 1..50)
    ) {
        struct Sleeper {
            sleeps: Vec<u64>,
            idx: usize,
        }
        impl Process<()> for Sleeper {
            fn poll(&mut self, _s: &mut (), _ctx: &mut Context) -> Poll {
                if self.idx < self.sleeps.len() {
                    let d = self.sleeps[self.idx];
                    self.idx += 1;
                    Poll::Sleep(SimDuration::from_nanos(d))
                } else {
                    Poll::Done
                }
            }
        }
        let total: u64 = sleeps.iter().sum();
        let mut engine = Engine::new(());
        engine.spawn(Box::new(Sleeper { sleeps, idx: 0 }));
        engine.run();
        prop_assert_eq!(engine.now(), SimTime::from_nanos(total));
        prop_assert!(engine.all_finished());
    }

    #[test]
    fn signals_wake_every_waiter_exactly_once(
        waiters in 1usize..20,
        fire_at in 1u64..1_000_000
    ) {
        let mut engine = Engine::new(0u32);
        for _ in 0..waiters {
            // Closure process: first poll waits on the signal, the
            // wake-up poll counts itself and finishes.
            let mut waited = false;
            engine.spawn(Box::new(move |count: &mut u32, _ctx: &mut Context| {
                if !waited {
                    waited = true;
                    Poll::WaitSignal(Signal(9))
                } else {
                    *count += 1;
                    Poll::Done
                }
            }));
        }
        engine.schedule_in(SimDuration::from_nanos(fire_at), |_s, ctx| ctx.emit(Signal(9)));
        engine.run();
        prop_assert_eq!(*engine.state(), waiters as u32);
        prop_assert!(engine.all_finished());
    }
}
