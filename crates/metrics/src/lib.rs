//! # metrics — measurement pipeline for workflow-ensemble executions
//!
//! The paper's TAU-based measurement stack, reproduced over traces:
//!
//! * [`trace`] — timestamped stage intervals recorded by either runtime
//!   (virtual or wall-clock seconds), reducible to the steady-state
//!   per-step samples the model consumes;
//! * [`traditional`] — the Table 1 component metrics (execution time,
//!   LLC miss ratio, memory intensity, IPC) derived from synthetic
//!   hardware counters;
//! * [`makespan`] — member makespan (simulation start → latest analysis
//!   end) and ensemble makespan (max over members);
//! * [`report`] — serializable experiment reports, one per configuration
//!   run;
//! * [`aggregate`] — five-trials-style averaging across repeated runs;
//! * [`gantt`] — ASCII stage timelines (the paper's Figure 6 from real
//!   traces).

#![warn(missing_docs)]

pub mod aggregate;
pub mod energy;
pub mod export;
pub mod gantt;
pub mod makespan;
pub mod report;
pub mod trace;
pub mod traditional;

pub use aggregate::{summarize_trials, TrialStat, TrialSummary};
pub use energy::{run_energy, EnergyReport};
pub use export::{components_csv, members_csv, trace_csv};
pub use gantt::{render_gantt, GanttOptions};
pub use makespan::{ensemble_makespan, member_makespan};
pub use report::{ComponentReport, EnsembleReport, MemberReport};
pub use trace::{ExecutionTrace, StageInterval, TraceRecorder};
pub use traditional::TraditionalMetrics;
