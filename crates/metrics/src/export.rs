//! CSV export of reports and traces for external plotting tools.
//!
//! No external CSV crate: the rows are simple numeric tables, and
//! fields are escaped conservatively (quotes around anything containing
//! a comma, quote, or newline).

use crate::report::EnsembleReport;
use crate::trace::ExecutionTrace;

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// One CSV row per member: the model quantities of the report.
pub fn members_csv(reports: &[&EnsembleReport]) -> String {
    let mut out = String::from(
        "config,member,sigma_star_s,makespan_s,makespan_model_s,efficiency,cp,lost_frames\n",
    );
    for report in reports {
        for m in &report.members {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                escape(&report.config),
                m.member,
                m.sigma_star,
                m.makespan,
                m.makespan_model,
                m.efficiency,
                m.cp,
                m.lost_frames
            ));
        }
    }
    out
}

/// One CSV row per component: the Table 1 metrics.
pub fn components_csv(reports: &[&EnsembleReport]) -> String {
    let mut out = String::from(
        "config,member,component,cores,exec_time_s,llc_miss_ratio,memory_intensity,ipc\n",
    );
    for report in reports {
        for m in &report.members {
            for c in &m.components {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{}\n",
                    escape(&report.config),
                    m.member,
                    escape(&c.name),
                    c.cores,
                    c.metrics.execution_time,
                    c.metrics.llc_miss_ratio,
                    c.metrics.memory_intensity,
                    c.metrics.ipc
                ));
            }
        }
    }
    out
}

/// Generic `metric,value` CSV for point-in-time gauge/counter snapshots
/// (the provisioning service exports its request metrics through this).
pub fn kv_csv(rows: &[(&str, f64)]) -> String {
    let mut out = String::from("metric,value\n");
    for (name, value) in rows {
        out.push_str(&format!("{},{}\n", escape(name), value));
    }
    out
}

/// One CSV row per stage interval of a trace (for Gantt-style plots).
pub fn trace_csv(trace: &ExecutionTrace) -> String {
    let mut out = String::from("component,stage,step,start_s,end_s,duration_s\n");
    for i in trace.intervals() {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            i.component,
            i.kind.label(),
            i.step,
            i.start,
            i.end,
            i.duration()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use ensemble_core::{ComponentRef, StageKind};

    #[test]
    fn trace_csv_has_header_and_rows() {
        let rec = TraceRecorder::new();
        rec.record(ComponentRef::simulation(0), StageKind::Simulate, 0, 0.0, 1.5);
        rec.record(ComponentRef::analysis(0, 1), StageKind::Analyze, 0, 1.5, 2.0);
        let csv = trace_csv(&rec.into_trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("component,stage"));
        assert!(lines[1].starts_with("Sim1,S,0,0,1.5,1.5"));
        assert!(lines[2].starts_with("Ana1.1,A,0,1.5,2,0.5"));
    }

    #[test]
    fn kv_csv_renders_rows_in_order() {
        let csv = kv_csv(&[("queue_depth", 3.0), ("latency_p99_ms", 12.5)]);
        assert_eq!(csv, "metric,value\nqueue_depth,3\nlatency_p99_ms,12.5\n");
    }

    #[test]
    fn escaping_handles_commas_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
