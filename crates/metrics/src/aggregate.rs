//! Multi-trial aggregation: the paper averages every measurement over
//! five trials; this module merges repeated [`EnsembleReport`]s the same
//! way.

use sim_des::RunningStats;

use crate::report::EnsembleReport;

/// Mean and spread of one scalar across trials.
#[derive(Debug, Clone, Default)]
pub struct TrialStat {
    stats: RunningStats,
}

impl TrialStat {
    /// Adds one trial observation.
    pub fn push(&mut self, value: f64) {
        self.stats.push(value);
    }

    /// Mean across trials.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation across trials.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.stats.count()
    }
}

/// Averages of the headline scalars of repeated runs of one
/// configuration.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Configuration label.
    pub config: String,
    /// Ensemble-makespan statistics across trials.
    pub ensemble_makespan: TrialStat,
    /// Per-member efficiency statistics across trials.
    pub member_efficiency: Vec<TrialStat>,
    /// Per-member makespan statistics across trials.
    pub member_makespan: Vec<TrialStat>,
}

/// Merges trials of the same configuration.
///
/// # Panics
/// Panics if the reports are for different configurations or member
/// counts (they would not be comparable).
pub fn summarize_trials(reports: &[EnsembleReport]) -> TrialSummary {
    assert!(!reports.is_empty(), "need at least one trial");
    let config = reports[0].config.clone();
    let n = reports[0].members.len();
    let mut summary = TrialSummary {
        config: config.clone(),
        ensemble_makespan: TrialStat::default(),
        member_efficiency: vec![TrialStat::default(); n],
        member_makespan: vec![TrialStat::default(); n],
    };
    for r in reports {
        assert_eq!(r.config, config, "mixed configurations in one summary");
        assert_eq!(r.members.len(), n, "member count changed between trials");
        summary.ensemble_makespan.push(r.ensemble_makespan);
        for (i, m) in r.members.iter().enumerate() {
            summary.member_efficiency[i].push(m.efficiency);
            summary.member_makespan[i].push(m.makespan);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MemberReport;
    use ensemble_core::{AnalysisStageTimes, CouplingScenario, MemberStageTimes};

    fn report(makespan: f64, e: f64) -> EnsembleReport {
        let stage_times =
            MemberStageTimes::new(1.0, 0.1, vec![AnalysisStageTimes { r: 0.1, a: 0.5 }]).unwrap();
        EnsembleReport {
            config: "C_c".into(),
            n: 1,
            m: 1,
            n_steps: 5,
            ensemble_makespan: makespan,
            members: vec![MemberReport {
                member: 0,
                stage_times,
                sigma_star: 1.1,
                makespan,
                makespan_model: makespan,
                efficiency: e,
                cp: 1.0,
                scenarios: vec![CouplingScenario::IdleAnalyzer],
                lost_frames: 0,
                components: vec![],
            }],
            staging_retries: 0,
            staging_giveups: 0,
            faults_injected: 0,
        }
    }

    #[test]
    fn averages_across_trials() {
        let s = summarize_trials(&[report(10.0, 0.8), report(12.0, 0.9), report(11.0, 0.85)]);
        assert_eq!(s.ensemble_makespan.trials(), 3);
        assert!((s.ensemble_makespan.mean() - 11.0).abs() < 1e-12);
        assert!((s.member_efficiency[0].mean() - 0.85).abs() < 1e-12);
        assert!(s.member_makespan[0].std_dev() > 0.0);
    }

    #[test]
    #[should_panic(expected = "mixed configurations")]
    fn mixed_configs_rejected() {
        let mut other = report(10.0, 0.8);
        other.config = "C_f".into();
        summarize_trials(&[report(10.0, 0.8), other]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_rejected() {
        summarize_trials(&[]);
    }
}
