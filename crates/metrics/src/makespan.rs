//! Member and ensemble makespans measured from traces (Table 1):
//!
//! * member makespan — "timespan between simulation start time and the
//!   latest analysis end time";
//! * ensemble makespan — "maximum makespan among all ensemble members".

use ensemble_core::ComponentRef;

use crate::trace::ExecutionTrace;

/// Member makespan from a trace; `k` is the member's analysis count.
/// Returns `None` if the member left no trace.
pub fn member_makespan(trace: &ExecutionTrace, member: usize, k: usize) -> Option<f64> {
    let (sim_start, sim_end) = trace.component_span(ComponentRef::simulation(member))?;
    let mut latest_end = sim_end;
    for j in 1..=k {
        if let Some((_, end)) = trace.component_span(ComponentRef::analysis(member, j)) {
            latest_end = latest_end.max(end);
        }
    }
    Some(latest_end - sim_start)
}

/// Ensemble makespan: the maximum member makespan. `members` lists each
/// member's analysis count `k`.
pub fn ensemble_makespan(trace: &ExecutionTrace, members: &[usize]) -> Option<f64> {
    members
        .iter()
        .enumerate()
        .filter_map(|(i, &k)| member_makespan(trace, i, k))
        .fold(None, |acc, m| Some(acc.map_or(m, |a: f64| a.max(m))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use ensemble_core::StageKind;

    fn trace() -> ExecutionTrace {
        let rec = TraceRecorder::new();
        // Member 0: sim spans [0, 20], analysis ends at 22.
        rec.record(ComponentRef::simulation(0), StageKind::Simulate, 0, 0.0, 20.0);
        rec.record(ComponentRef::analysis(0, 1), StageKind::Analyze, 0, 5.0, 22.0);
        // Member 1: sim [1, 15], analyses end at 18 and 30.
        rec.record(ComponentRef::simulation(1), StageKind::Simulate, 0, 1.0, 15.0);
        rec.record(ComponentRef::analysis(1, 1), StageKind::Analyze, 0, 5.0, 18.0);
        rec.record(ComponentRef::analysis(1, 2), StageKind::Analyze, 0, 5.0, 30.0);
        rec.into_trace()
    }

    #[test]
    fn member_makespan_is_sim_start_to_latest_analysis_end() {
        let t = trace();
        assert!((member_makespan(&t, 0, 1).unwrap() - 22.0).abs() < 1e-12);
        assert!((member_makespan(&t, 1, 2).unwrap() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_makespan_is_max() {
        let t = trace();
        assert!((ensemble_makespan(&t, &[1, 2]).unwrap() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn missing_member_yields_none() {
        let t = trace();
        assert!(member_makespan(&t, 7, 1).is_none());
        assert!(ensemble_makespan(&ExecutionTrace::default(), &[1]).is_none());
    }

    #[test]
    fn sim_outlasting_analyses_still_counts() {
        let rec = TraceRecorder::new();
        rec.record(ComponentRef::simulation(0), StageKind::Simulate, 0, 0.0, 40.0);
        rec.record(ComponentRef::analysis(0, 1), StageKind::Analyze, 0, 5.0, 10.0);
        let t = rec.into_trace();
        assert!((member_makespan(&t, 0, 1).unwrap() - 40.0).abs() < 1e-12);
    }
}
