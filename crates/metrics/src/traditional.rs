//! The paper's Table 1 "traditional" metrics at component level:
//! execution time, LLC miss ratio, memory intensity, instructions per
//! cycle.

use hpc_platform::HwCounters;
use serde::{Deserialize, Serialize};

/// Component-level metrics (Table 1, ensemble-component section).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraditionalMetrics {
    /// Time spent in the component, seconds.
    pub execution_time: f64,
    /// LLC misses / LLC references.
    pub llc_miss_ratio: f64,
    /// LLC misses / instructions.
    pub memory_intensity: f64,
    /// Instructions / cycles.
    pub ipc: f64,
}

impl TraditionalMetrics {
    /// Derives the metric set from hardware counters and the component's
    /// execution time.
    pub fn from_counters(counters: &HwCounters, execution_time: f64) -> Self {
        TraditionalMetrics {
            execution_time,
            llc_miss_ratio: counters.llc_miss_ratio(),
            memory_intensity: counters.memory_intensity(),
            ipc: counters.ipc(),
        }
    }

    /// All values finite, ratios within their ranges.
    pub fn is_consistent(&self) -> bool {
        self.execution_time.is_finite()
            && self.execution_time >= 0.0
            && (0.0..=1.0).contains(&self.llc_miss_ratio)
            && self.memory_intensity.is_finite()
            && self.memory_intensity >= 0.0
            && self.ipc.is_finite()
            && self.ipc >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> HwCounters {
        HwCounters {
            instructions: 1e9,
            cycles: 5e8,
            llc_references: 1e7,
            llc_misses: 2.5e6,
            dram_bytes: 1.6e8,
        }
    }

    #[test]
    fn table1_formulas() {
        let m = TraditionalMetrics::from_counters(&counters(), 12.5);
        assert_eq!(m.execution_time, 12.5);
        assert!((m.ipc - 2.0).abs() < 1e-12);
        assert!((m.llc_miss_ratio - 0.25).abs() < 1e-12);
        assert!((m.memory_intensity - 2.5e-3).abs() < 1e-15);
        assert!(m.is_consistent());
    }

    #[test]
    fn zero_counters_are_consistent() {
        let m = TraditionalMetrics::from_counters(&HwCounters::default(), 0.0);
        assert!(m.is_consistent());
        assert_eq!(m.ipc, 0.0);
    }

    #[test]
    fn inconsistency_detected() {
        let mut m = TraditionalMetrics::from_counters(&counters(), 1.0);
        m.llc_miss_ratio = 1.5;
        assert!(!m.is_consistent());
        m.llc_miss_ratio = 0.1;
        m.execution_time = f64::NAN;
        assert!(!m.is_consistent());
    }
}
