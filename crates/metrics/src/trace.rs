//! Execution traces: timestamped stage intervals for every component.
//!
//! Both execution modes emit the same trace format — virtual seconds from
//! the discrete-event runtime, wall-clock seconds from the threaded
//! runtime — so every metric downstream is mode-agnostic.

use std::sync::Arc;

use ensemble_core::{ComponentRef, MemberStepSamples, StageKind};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One recorded stage execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageInterval {
    /// Which component executed the stage.
    pub component: ComponentRef,
    /// Which stage.
    pub kind: StageKind,
    /// In situ step index.
    pub step: u64,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl StageInterval {
    /// Stage duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A completed execution trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    intervals: Vec<StageInterval>,
}

impl ExecutionTrace {
    /// Builds a trace from raw intervals.
    pub fn new(intervals: Vec<StageInterval>) -> Self {
        debug_assert!(intervals.iter().all(|i| i.end >= i.start), "negative-duration interval");
        ExecutionTrace { intervals }
    }

    /// Consumes the trace, yielding its intervals in recording order.
    pub fn into_intervals(self) -> Vec<StageInterval> {
        self.intervals
    }

    /// All intervals, in recording order.
    pub fn intervals(&self) -> &[StageInterval] {
        &self.intervals
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Intervals of one component, in recording order.
    pub fn for_component(&self, c: ComponentRef) -> impl Iterator<Item = &StageInterval> {
        self.intervals.iter().filter(move |i| i.component == c)
    }

    /// Durations of one component's stage, ordered by step.
    pub fn stage_series(&self, c: ComponentRef, kind: StageKind) -> Vec<f64> {
        let mut entries: Vec<(u64, f64)> = self
            .for_component(c)
            .filter(|i| i.kind == kind)
            .map(|i| (i.step, i.duration()))
            .collect();
        entries.sort_by_key(|&(step, _)| step);
        entries.into_iter().map(|(_, d)| d).collect()
    }

    /// First start / last end of one component, if it recorded anything.
    pub fn component_span(&self, c: ComponentRef) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = None;
        for i in self.for_component(c) {
            span = Some(match span {
                None => (i.start, i.end),
                Some((s, e)) => (s.min(i.start), e.max(i.end)),
            });
        }
        span
    }

    /// Per-step stage samples of member `member` with `k` analyses, in
    /// the shape `ensemble_core::steady_state` consumes.
    pub fn member_samples(&self, member: usize, k: usize) -> MemberStepSamples {
        let sim = ComponentRef::simulation(member);
        MemberStepSamples {
            s: self.stage_series(sim, StageKind::Simulate),
            w: self.stage_series(sim, StageKind::Write),
            analyses: (1..=k)
                .map(|j| {
                    let ana = ComponentRef::analysis(member, j);
                    (
                        self.stage_series(ana, StageKind::Read),
                        self.stage_series(ana, StageKind::Analyze),
                    )
                })
                .collect(),
        }
    }

    /// Total time `c` spent in stages of `kind`.
    pub fn total_in_stage(&self, c: ComponentRef, kind: StageKind) -> f64 {
        // `+ 0.0` normalizes the empty sum's -0.0 to +0.0.
        self.for_component(c).filter(|i| i.kind == kind).map(StageInterval::duration).sum::<f64>()
            + 0.0
    }

    /// The set of member indexes appearing in the trace, ascending.
    pub fn member_indexes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.intervals.iter().map(|i| i.component.member).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Thread-safe recorder shared by the components of a running ensemble.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Arc<Mutex<Vec<StageInterval>>>,
}

impl TraceRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stage interval.
    pub fn record(
        &self,
        component: ComponentRef,
        kind: StageKind,
        step: u64,
        start: f64,
        end: f64,
    ) {
        debug_assert!(end >= start, "stage {kind:?} of {component} ends before it starts");
        self.inner.lock().push(StageInterval { component, kind, step, start, end });
    }

    /// Number of intervals recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Merges every interval of `trace` into this recorder. Used by the
    /// supervised runtime: each member attempt records into its own
    /// recorder, and only a successful attempt is absorbed into the
    /// run's trace (failed attempts leave no intervals behind).
    pub fn absorb(&self, trace: ExecutionTrace) {
        self.inner.lock().extend(trace.into_intervals());
    }

    /// Finishes recording and produces the trace.
    pub fn into_trace(self) -> ExecutionTrace {
        let intervals = match Arc::try_unwrap(self.inner) {
            Ok(m) => m.into_inner(),
            Err(arc) => arc.lock().clone(),
        };
        ExecutionTrace::new(intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ExecutionTrace {
        let rec = TraceRecorder::new();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        for step in 0..3u64 {
            let base = step as f64 * 10.0;
            rec.record(sim, StageKind::Simulate, step, base, base + 8.0);
            rec.record(sim, StageKind::Write, step, base + 8.0, base + 8.5);
            rec.record(ana, StageKind::Read, step, base + 8.5, base + 9.0);
            rec.record(ana, StageKind::Analyze, step, base + 9.0, base + 9.8);
            rec.record(ana, StageKind::AnaIdle, step, base + 9.8, base + 10.0);
        }
        rec.into_trace()
    }

    #[test]
    fn series_ordered_by_step() {
        let t = sample_trace();
        let s = t.stage_series(ComponentRef::simulation(0), StageKind::Simulate);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&d| (d - 8.0).abs() < 1e-12));
    }

    #[test]
    fn component_span() {
        let t = sample_trace();
        let (start, end) = t.component_span(ComponentRef::analysis(0, 1)).unwrap();
        assert!((start - 8.5).abs() < 1e-12);
        assert!((end - 30.0).abs() < 1e-12);
        assert!(t.component_span(ComponentRef::simulation(9)).is_none());
    }

    #[test]
    fn member_samples_shape() {
        let t = sample_trace();
        let samples = t.member_samples(0, 1);
        assert_eq!(samples.s.len(), 3);
        assert_eq!(samples.w.len(), 3);
        assert_eq!(samples.analyses.len(), 1);
        assert_eq!(samples.analyses[0].0.len(), 3);
    }

    #[test]
    fn totals_accumulate() {
        let t = sample_trace();
        let idle = t.total_in_stage(ComponentRef::analysis(0, 1), StageKind::AnaIdle);
        assert!((idle - 0.6).abs() < 1e-9);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = TraceRecorder::new();
        let handles: Vec<_> = (0..4usize)
            .map(|m| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for step in 0..5u64 {
                        rec.record(
                            ComponentRef::simulation(m),
                            StageKind::Simulate,
                            step,
                            step as f64,
                            step as f64 + 0.5,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = rec.into_trace();
        assert_eq!(t.len(), 20);
        assert_eq!(t.member_indexes(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = ExecutionTrace::default();
        assert!(t.is_empty());
        assert!(t.member_indexes().is_empty());
        assert!(t.stage_series(ComponentRef::simulation(0), StageKind::Write).is_empty());
    }
}
