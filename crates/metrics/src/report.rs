//! Serializable experiment reports: the rows behind every figure and
//! table regeneration.

use ensemble_core::{CouplingScenario, MemberStageTimes};
use hpc_platform::HwCounters;
use serde::{Deserialize, Serialize};

use crate::traditional::TraditionalMetrics;

/// Results for one ensemble component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentReport {
    /// Display name, e.g. "Sim1" or "Ana1.2".
    pub name: String,
    /// Cores allocated.
    pub cores: u32,
    /// Node indexes occupied.
    pub nodes: Vec<usize>,
    /// Accumulated hardware counters.
    pub counters: HwCounters,
    /// Table 1 metrics.
    pub metrics: TraditionalMetrics,
}

/// Results for one ensemble member.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberReport {
    /// Member index (0-based).
    pub member: usize,
    /// Steady-state stage times (starred quantities).
    pub stage_times: MemberStageTimes,
    /// `σ̄*` (Eq. 1), seconds.
    pub sigma_star: f64,
    /// Measured member makespan, seconds.
    pub makespan: f64,
    /// Eq. 2 estimate (`n_steps × σ̄*`), seconds.
    pub makespan_model: f64,
    /// Computational efficiency `E` (Eq. 3).
    pub efficiency: f64,
    /// Placement indicator `CP` (Eq. 6).
    pub cp: f64,
    /// Coupling scenarios per analysis.
    pub scenarios: Vec<CouplingScenario>,
    /// Frames dropped by the member's staging queue (always 0 under the
    /// paper's synchronous protocol; nonzero only in in-transit mode).
    pub lost_frames: u64,
    /// Component-level results (simulation first).
    pub components: Vec<ComponentReport>,
}

/// Results for one configuration run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleReport {
    /// Configuration label (e.g. "C1.5").
    pub config: String,
    /// Number of members `N`.
    pub n: usize,
    /// Number of nodes `M`.
    pub m: usize,
    /// In situ steps executed.
    pub n_steps: u64,
    /// Ensemble makespan (max member makespan), seconds.
    pub ensemble_makespan: f64,
    /// Per-member results.
    pub members: Vec<MemberReport>,
    /// Staging store retries performed across the run (nonzero only in
    /// threaded runs with a retry policy).
    #[serde(default)]
    pub staging_retries: u64,
    /// Transient staging errors surfaced after the retry budget ran out.
    #[serde(default)]
    pub staging_giveups: u64,
    /// Faults injected by the run's fault plan (failures + delays +
    /// corruptions), 0 for fault-free runs.
    #[serde(default)]
    pub faults_injected: u64,
}

impl EnsembleReport {
    /// Per-member efficiency values in member order.
    pub fn efficiencies(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.efficiency).collect()
    }

    /// Renders a compact fixed-width table of the member rows.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (N={}, M={}, steps={}): ensemble makespan {:.2}s\n",
            self.config, self.n, self.m, self.n_steps, self.ensemble_makespan
        ));
        out.push_str("  member  sigma*     makespan   E        CP\n");
        for m in &self.members {
            out.push_str(&format!(
                "  EM{}     {:>8.3}s  {:>8.2}s  {:.4}  {:.3}\n",
                m.member + 1,
                m.sigma_star,
                m.makespan,
                m.efficiency,
                m.cp
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::AnalysisStageTimes;

    fn member_report() -> MemberReport {
        let stage_times =
            MemberStageTimes::new(20.0, 0.5, vec![AnalysisStageTimes { r: 0.3, a: 15.0 }]).unwrap();
        MemberReport {
            member: 0,
            sigma_star: 20.5,
            makespan: 760.0,
            makespan_model: 758.5,
            efficiency: 0.85,
            cp: 1.0,
            scenarios: vec![CouplingScenario::IdleAnalyzer],
            lost_frames: 0,
            stage_times,
            components: vec![],
        }
    }

    #[test]
    fn report_serializes_roundtrip() {
        let r = EnsembleReport {
            config: "C1.5".into(),
            n: 1,
            m: 2,
            n_steps: 37,
            ensemble_makespan: 760.0,
            members: vec![member_report()],
            staging_retries: 3,
            staging_giveups: 1,
            faults_injected: 2,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: EnsembleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.config, "C1.5");
        assert_eq!(back.members.len(), 1);
        assert_eq!(back.efficiencies(), vec![0.85]);
    }

    #[test]
    fn table_rendering_contains_members() {
        let r = EnsembleReport {
            config: "C_f".into(),
            n: 1,
            m: 2,
            n_steps: 10,
            ensemble_makespan: 205.0,
            members: vec![member_report()],
            staging_retries: 0,
            staging_giveups: 0,
            faults_injected: 0,
        };
        let table = r.to_table();
        assert!(table.contains("C_f"));
        assert!(table.contains("EM1"));
        assert!(table.contains("sigma*"));
    }
}
