//! Energy accounting over execution traces.
//!
//! Attributes joules to components from their busy time (compute + I/O
//! stages at active per-core power) and to nodes from their idle
//! baseline over the run span — enabling energy-aware comparisons of
//! placements (the SeeSAw-style extension experiments).

use std::collections::HashMap;

use ensemble_core::{ComponentRef, StageGroup};
use hpc_platform::PowerModel;
use serde::{Deserialize, Serialize};

use crate::trace::ExecutionTrace;

/// Energy breakdown of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Joules attributed to each component's busy time.
    pub per_component: HashMap<ComponentRef, f64>,
    /// Joules of idle baseline per node over the run span.
    pub per_node_idle: HashMap<usize, f64>,
    /// Total joules (components + idle baselines).
    pub total_joules: f64,
    /// Run span in seconds (earliest start to latest end).
    pub span_seconds: f64,
}

impl EnergyReport {
    /// Average power over the run, watts.
    pub fn average_watts(&self) -> f64 {
        if self.span_seconds <= 0.0 {
            0.0
        } else {
            self.total_joules / self.span_seconds
        }
    }
}

/// Computes the energy of a run.
///
/// `cores` and `node_of` map each component to its core count and node;
/// both typically come from the runtime's allocations.
pub fn run_energy(
    trace: &ExecutionTrace,
    power: &PowerModel,
    cores: &HashMap<ComponentRef, u32>,
    node_of: &HashMap<ComponentRef, usize>,
) -> EnergyReport {
    let mut per_component: HashMap<ComponentRef, f64> = HashMap::new();
    let mut span_start = f64::INFINITY;
    let mut span_end = f64::NEG_INFINITY;
    for interval in trace.intervals() {
        span_start = span_start.min(interval.start);
        span_end = span_end.max(interval.end);
        // Idle stages draw only the node baseline (accounted per node).
        if interval.kind.group() == StageGroup::Idle {
            continue;
        }
        let c = cores.get(&interval.component).copied().unwrap_or(0);
        let watts = power.active_watts_per_core * c as f64;
        *per_component.entry(interval.component).or_default() +=
            power.energy_joules(watts, interval.duration());
    }
    let span_seconds = (span_end - span_start).max(0.0);
    let mut nodes: Vec<usize> = node_of.values().copied().collect();
    nodes.sort_unstable();
    nodes.dedup();
    let per_node_idle: HashMap<usize, f64> = nodes
        .into_iter()
        .map(|n| (n, power.energy_joules(power.idle_watts, span_seconds)))
        .collect();
    let total_joules = per_component.values().sum::<f64>() + per_node_idle.values().sum::<f64>();
    EnergyReport { per_component, per_node_idle, total_joules, span_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use ensemble_core::StageKind;

    fn setup() -> (ExecutionTrace, HashMap<ComponentRef, u32>, HashMap<ComponentRef, usize>) {
        let rec = TraceRecorder::new();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        rec.record(sim, StageKind::Simulate, 0, 0.0, 10.0);
        rec.record(sim, StageKind::SimIdle, 0, 10.0, 12.0);
        rec.record(ana, StageKind::Analyze, 0, 0.0, 8.0);
        let cores = HashMap::from([(sim, 16u32), (ana, 8u32)]);
        let nodes = HashMap::from([(sim, 0usize), (ana, 0usize)]);
        (rec.into_trace(), cores, nodes)
    }

    #[test]
    fn busy_time_dominates_component_energy() {
        let (trace, cores, nodes) = setup();
        let power = PowerModel::default();
        let report = run_energy(&trace, &power, &cores, &nodes);
        let sim_j = report.per_component[&ComponentRef::simulation(0)];
        // 16 cores × 6.5 W × 10 s; idle stage contributes nothing here.
        assert!((sim_j - 16.0 * 6.5 * 10.0).abs() < 1e-9);
        let ana_j = report.per_component[&ComponentRef::analysis(0, 1)];
        assert!((ana_j - 8.0 * 6.5 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn idle_baseline_covers_the_span() {
        let (trace, cores, nodes) = setup();
        let power = PowerModel::default();
        let report = run_energy(&trace, &power, &cores, &nodes);
        // Span is 0..12 s, one node.
        assert!((report.span_seconds - 12.0).abs() < 1e-12);
        assert!((report.per_node_idle[&0] - 90.0 * 12.0).abs() < 1e-9);
        assert!(report.total_joules > report.per_node_idle[&0]);
        assert!(report.average_watts() > 90.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let report = run_energy(
            &ExecutionTrace::default(),
            &PowerModel::default(),
            &HashMap::new(),
            &HashMap::new(),
        );
        assert_eq!(report.total_joules, 0.0);
        assert_eq!(report.average_watts(), 0.0);
    }
}
