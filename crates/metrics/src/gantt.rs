//! ASCII Gantt rendering of execution traces — the paper's Figure 6
//! ("example of fine-grained execution steps for a member of one
//! ensemble") regenerated from *measured* traces instead of an
//! illustration.

use ensemble_core::{ComponentRef, StageKind};

use crate::trace::ExecutionTrace;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Restrict to a time window `[start, end)` in seconds; `None` spans
    /// the whole trace.
    pub window: Option<(f64, f64)>,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions { width: 100, window: None }
    }
}

fn glyph(kind: StageKind) -> char {
    match kind {
        StageKind::Simulate => 'S',
        StageKind::SimIdle => '.',
        StageKind::Write => 'W',
        StageKind::Read => 'R',
        StageKind::Analyze => 'A',
        StageKind::AnaIdle => '.',
    }
}

/// Renders one row per component: a proportional timeline of its stages.
///
/// ```text
/// Sim1    |SSSSSSSSSSSSSSSSSSSSW SSSSSSSSSSSSSSSSSSSSW ...|
/// Ana1.1  |...RAAAAAAAAAAAAAA.....RAAAAAAAAAAAAAA.....    |
/// ```
pub fn render_gantt(trace: &ExecutionTrace, options: &GanttOptions) -> String {
    if trace.is_empty() {
        return String::from("(empty trace)\n");
    }
    let (t0, t1) = match options.window {
        Some(w) => w,
        None => {
            let start = trace.intervals().iter().map(|i| i.start).fold(f64::INFINITY, f64::min);
            let end = trace.intervals().iter().map(|i| i.end).fold(f64::NEG_INFINITY, f64::max);
            (start, end)
        }
    };
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let width = options.width.max(10);

    // Stable component order: member-major, simulation first.
    let mut components: Vec<ComponentRef> = trace.intervals().iter().map(|i| i.component).collect();
    components.sort();
    components.dedup();

    let mut out = String::new();
    out.push_str(&format!(
        "time window: {:.3}s .. {:.3}s ({} columns, {:.4}s/column)\n",
        t0,
        t1,
        width,
        span / width as f64
    ));
    for c in components {
        let mut row = vec![' '; width];
        for interval in trace.for_component(c) {
            if interval.end <= t0 || interval.start >= t1 {
                continue;
            }
            let a = (((interval.start - t0) / span) * width as f64).floor().max(0.0) as usize;
            let b = (((interval.end - t0) / span) * width as f64).ceil().min(width as f64) as usize;
            for cell in row.iter_mut().take(b.max(a + 1).min(width)).skip(a.min(width - 1)) {
                *cell = glyph(interval.kind);
            }
        }
        out.push_str(&format!("{:<8}|{}|\n", c.to_string(), row.iter().collect::<String>()));
    }
    out.push_str("legend: S simulate, W write, R read, A analyze, . idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;

    fn sample_trace() -> ExecutionTrace {
        let rec = TraceRecorder::new();
        let sim = ComponentRef::simulation(0);
        let ana = ComponentRef::analysis(0, 1);
        for step in 0..2u64 {
            let base = step as f64 * 10.0;
            rec.record(sim, StageKind::Simulate, step, base, base + 8.0);
            rec.record(sim, StageKind::Write, step, base + 8.0, base + 8.5);
            rec.record(ana, StageKind::AnaIdle, step, base, base + 8.5);
            rec.record(ana, StageKind::Read, step, base + 8.5, base + 9.0);
            rec.record(ana, StageKind::Analyze, step, base + 9.0, base + 10.0);
        }
        rec.into_trace()
    }

    #[test]
    fn renders_one_row_per_component() {
        let g = render_gantt(&sample_trace(), &GanttOptions::default());
        assert!(g.contains("Sim1"));
        assert!(g.contains("Ana1.1"));
        assert!(g.contains("legend"));
        // The simulation row is dominated by S glyphs.
        let sim_row = g.lines().find(|l| l.starts_with("Sim1")).unwrap();
        assert!(sim_row.matches('S').count() > 50);
        assert!(sim_row.contains('W'));
    }

    #[test]
    fn window_restricts_output() {
        let g =
            render_gantt(&sample_trace(), &GanttOptions { width: 40, window: Some((9.0, 10.0)) });
        // Only the analyze stage of step 0 lands in this window.
        let ana_row = g.lines().find(|l| l.starts_with("Ana1.1")).unwrap();
        assert!(ana_row.contains('A'));
        assert!(!ana_row.contains('R'));
    }

    #[test]
    fn empty_trace_is_handled() {
        assert!(
            render_gantt(&ExecutionTrace::default(), &GanttOptions::default()).contains("empty")
        );
    }

    #[test]
    fn zero_length_stages_do_not_panic() {
        let rec = TraceRecorder::new();
        rec.record(ComponentRef::simulation(0), StageKind::Write, 0, 1.0, 1.0);
        let g = render_gantt(&rec.into_trace(), &GanttOptions { width: 10, window: None });
        assert!(g.contains("Sim1"));
    }
}
