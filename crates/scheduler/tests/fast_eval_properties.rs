//! Property-based tests of the closed-form placement evaluator.
//!
//! The provisioning service's score cache is sound only because
//! `fast_score` is a pure function of its inputs: identical (spec,
//! platform, workloads) must produce **bit-identical** results, at any
//! call count, through either entry point. These properties pin that
//! invariant across randomly generated ensemble shapes and placements.

use proptest::prelude::*;
use runtime::{SimRunConfig, WorkloadMap};
use scheduler::{enumerate_placements, fast_score, EnsembleShape, FastEvaluator};

/// Small-but-varied ensemble shapes: 1–3 members, 1–2 analyses each,
/// core counts spanning the paper's co-location regimes.
fn shape_strategy() -> impl Strategy<Value = EnsembleShape> {
    (
        1usize..=3,                               // members
        prop::sample::select(vec![8u32, 16, 24]), // sim cores
        1usize..=2,                               // analyses per member
        prop::sample::select(vec![4u32, 8]),      // analysis cores
    )
        .prop_map(|(n, sim, k, ana)| EnsembleShape::uniform(n, sim, k, ana))
}

fn base_config(spec: ensemble_core::EnsembleSpec) -> SimRunConfig {
    let mut base = SimRunConfig::paper(spec);
    base.workloads = WorkloadMap::small_defaults();
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Repeated `fast_score` calls on identical inputs are bit-identical
    /// — the determinism the score cache relies on.
    #[test]
    fn fast_score_is_bit_identical_across_calls(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        pick in 0usize..64,
        jitter in 0.0f64..0.2,
    ) {
        let placements = enumerate_placements(&shape, max_nodes, 32);
        prop_assume!(!placements.is_empty());
        let spec = shape.materialize(&placements[pick % placements.len()]);
        // Base jitter must not leak into the analytic score: the
        // evaluator pins the predictor to its deterministic fixed point.
        let mut base = base_config(spec.clone());
        base.jitter = jitter;
        let first = fast_score(&base, &spec).expect("score");
        for _ in 0..3 {
            let again = fast_score(&base, &spec).expect("score");
            prop_assert_eq!(first.objective.to_bits(), again.objective.to_bits());
            prop_assert_eq!(
                first.ensemble_makespan.to_bits(),
                again.ensemble_makespan.to_bits()
            );
            prop_assert_eq!(first.nodes_used, again.nodes_used);
            prop_assert_eq!(first.eq4_satisfied, again.eq4_satisfied);
        }
    }

    /// The reusable evaluator (the search/service hot path, which avoids
    /// the per-candidate config clone) agrees bit-for-bit with the
    /// one-shot entry point, even when candidates interleave.
    #[test]
    fn evaluator_matches_one_shot_for_every_candidate(
        shape in shape_strategy(),
        max_nodes in 1usize..=3,
    ) {
        let placements = enumerate_placements(&shape, max_nodes, 32);
        prop_assume!(!placements.is_empty());
        let specs: Vec<_> =
            placements.iter().map(|a| shape.materialize(a)).collect();
        let base = base_config(specs[0].clone());
        let mut evaluator = FastEvaluator::new(&base);
        // Forward then backward: reuse across differing candidates must
        // not leave state behind that changes any score.
        for spec in specs.iter().chain(specs.iter().rev()) {
            let one_shot = fast_score(&base, spec).expect("one-shot score");
            let reused = evaluator.score(spec).expect("evaluator score");
            prop_assert_eq!(one_shot.objective.to_bits(), reused.objective.to_bits());
            prop_assert_eq!(
                one_shot.ensemble_makespan.to_bits(),
                reused.ensemble_makespan.to_bits()
            );
            prop_assert_eq!(one_shot.nodes_used, reused.nodes_used);
            prop_assert_eq!(one_shot.eq4_satisfied, reused.eq4_satisfied);
        }
    }
}
