//! Property-based tests of the delta evaluation engine.
//!
//! The contract is the repo's established one: **bit-identity**. A
//! `DeltaEvaluator` fed any sequence of assignments — enumeration
//! order, random jumps, annealing-style single-component moves — must
//! return exactly the floats a fresh from-scratch evaluation returns,
//! for every candidate, under any solve-cache capacity (eviction may
//! cost re-solves, never correctness). On top of that: occupancy-
//! signature collisions must actually reuse solves (the point of the
//! cache), and the delta-scoring scan must match the plain scan at any
//! worker count.
//!
//! CI runs this file under `ENSEMBLE_SCAN_WORKERS={1,2,8}`: the
//! scan-level property below builds its options from
//! `ScanOptions::default()`, which resolves the worker count from the
//! environment.

use proptest::prelude::*;
use runtime::{RuntimeResult, SimRunConfig, WorkloadMap};
use scheduler::{
    canonicalize, enumerate_placements, scan_placements, scan_placements_delta, DeltaEvaluator,
    EnsembleShape, FastEvaluator, NodeBudget, ScanOptions,
};

/// Small-but-varied ensemble shapes: 1–3 members, 1–2 analyses each,
/// core counts spanning the paper's co-location regimes.
fn shape_strategy() -> impl Strategy<Value = EnsembleShape> {
    (
        1usize..=3,                               // members
        prop::sample::select(vec![8u32, 16, 24]), // sim cores
        1usize..=2,                               // analyses per member
        prop::sample::select(vec![4u32, 8]),      // analysis cores
    )
        .prop_map(|(n, sim, k, ana)| EnsembleShape::uniform(n, sim, k, ana))
}

fn base_config(spec: ensemble_core::EnsembleSpec) -> SimRunConfig {
    let mut base = SimRunConfig::paper(spec);
    base.workloads = WorkloadMap::small_defaults();
    base
}

/// Per-component core demands in flat order.
fn flat_cores(shape: &EnsembleShape) -> Vec<u32> {
    let mut v = Vec::new();
    for (sim, anas) in &shape.members {
        v.push(*sim);
        v.extend(anas.iter().copied());
    }
    v
}

/// True when `assignment` fits the budget (the same check the annealing
/// neighbourhood applies before scoring).
fn feasible(assignment: &[usize], cores: &[u32], budget: NodeBudget) -> bool {
    let mut load = vec![0u32; budget.max_nodes];
    for (&node, &c) in assignment.iter().zip(cores) {
        if node >= budget.max_nodes {
            return false;
        }
        load[node] += c;
        if load[node] > budget.cores_per_node {
            return false;
        }
    }
    true
}

/// Asserts one delta-scored result equals the from-scratch reference,
/// float bits and all.
fn assert_scores_match(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    delta: &mut DeltaEvaluator,
    assignment: &[usize],
) {
    let got = delta.score(assignment).expect("delta score");
    let want =
        FastEvaluator::new(base).score(&shape.materialize(assignment)).expect("reference score");
    assert_eq!(got.objective.to_bits(), want.objective.to_bits(), "{assignment:?}");
    assert_eq!(got.ensemble_makespan.to_bits(), want.ensemble_makespan.to_bits(), "{assignment:?}");
    assert_eq!(got.nodes_used, want.nodes_used, "{assignment:?}");
    assert_eq!(got.eq4_satisfied, want.eq4_satisfied, "{assignment:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random sequences of feasible assignments — arbitrary jumps, no
    /// shared-prefix structure at all — score bit-identically to a
    /// fresh from-scratch evaluation at every step.
    #[test]
    fn random_placement_sequences_are_bit_identical(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        raw in prop::collection::vec(prop::collection::vec(0usize..4, 1..=12), 1..=12),
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let cores = flat_cores(&shape);
        let n = cores.len();
        let sequence: Vec<Vec<usize>> = raw
            .iter()
            .map(|seed| (0..n).map(|i| seed[i % seed.len()] % max_nodes).collect())
            .filter(|a: &Vec<usize>| feasible(a, &cores, budget))
            .collect();
        prop_assume!(!sequence.is_empty());
        let base = base_config(shape.materialize(&sequence[0]));
        let mut delta = DeltaEvaluator::new(&base, &shape);
        for assignment in &sequence {
            assert_scores_match(&base, &shape, &mut delta, assignment);
        }
    }

    /// Annealing-style traces — single-component moves from a feasible
    /// start, scored on the canonicalized assignment exactly as
    /// `anneal_placement` does — are bit-identical at every move.
    #[test]
    fn annealing_move_traces_are_bit_identical(
        shape in shape_strategy(),
        max_nodes in 2usize..=4,
        moves in prop::collection::vec((0usize..32, 0usize..4), 1..=40),
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let cores = flat_cores(&shape);
        let n = cores.len();
        // First-fit start, like the annealing warm start.
        let mut current: Vec<usize> = Vec::with_capacity(n);
        let mut load = vec![0u32; max_nodes];
        for &c in &cores {
            match (0..max_nodes).find(|&nd| load[nd] + c <= budget.cores_per_node) {
                Some(nd) => {
                    load[nd] += c;
                    current.push(nd);
                }
                None => return Ok(()), // infeasible instance — skip
            }
        }
        let base = base_config(shape.materialize(&current));
        let mut delta = DeltaEvaluator::new(&base, &shape);
        assert_scores_match(&base, &shape, &mut delta, &canonicalize(&current));
        for &(idx, node) in &moves {
            let mut candidate = current.clone();
            candidate[idx % n] = node % max_nodes;
            if !feasible(&candidate, &cores, budget) {
                continue;
            }
            current = candidate;
            assert_scores_match(&base, &shape, &mut delta, &canonicalize(&current));
        }
    }

    /// A tiny (or disabled) solve cache never changes results: eviction
    /// costs re-solves, not correctness.
    #[test]
    fn cache_eviction_never_changes_results(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        capacity in 0usize..=2,
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let placements = enumerate_placements(&shape, max_nodes, budget.cores_per_node);
        prop_assume!(!placements.is_empty());
        let base = base_config(shape.materialize(&placements[0]));
        let mut tiny = DeltaEvaluator::with_cache_capacity(&base, &shape, capacity);
        let mut roomy = DeltaEvaluator::new(&base, &shape);
        for assignment in &placements {
            let a = tiny.score(assignment).expect("tiny-cache score");
            let b = roomy.score(assignment).expect("roomy-cache score");
            assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{assignment:?}");
            assert_eq!(a.ensemble_makespan.to_bits(), b.ensemble_makespan.to_bits());
            assert_eq!(a.eq4_satisfied, b.eq4_satisfied);
            assert_scores_match(&base, &shape, &mut roomy, assignment);
        }
        // The bounded cache must actually be bounded.
        assert!(tiny.cached_solves() <= capacity);
    }

    /// The delta-scoring scan reproduces the plain scan bit for bit —
    /// same candidates, same order, same floats — at the worker count
    /// `ENSEMBLE_SCAN_WORKERS` injects and at explicit 1/2/8, across
    /// chunk sizes.
    #[test]
    fn delta_scan_matches_plain_scan_bitwise(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        chunk in 1usize..=8,
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let placements = enumerate_placements(&shape, max_nodes, budget.cores_per_node);
        prop_assume!(!placements.is_empty());
        let base = base_config(shape.materialize(&placements[0]));
        let reference: Vec<(usize, u64)> = scan_placements(
            &shape,
            budget,
            &ScanOptions { workers: 1, chunk, top_k: 0 },
            || FastEvaluator::new(&base),
            |evaluator: &mut FastEvaluator, _, a: &[usize]| -> RuntimeResult<Option<f64>> {
                Ok(Some(evaluator.score(&shape.materialize(a))?.objective))
            },
            |obj| *obj,
            || false,
        )
        .expect("plain scan")
        .results
        .into_iter()
        .map(|h| (h.index, h.value.to_bits()))
        .collect();
        for workers in [0usize, 1, 2, 8] {
            let outcome = scan_placements_delta(
                &shape,
                budget,
                &ScanOptions { workers, chunk, top_k: 0 },
                || DeltaEvaluator::new(&base, &shape),
                |evaluator: &mut DeltaEvaluator,
                 _,
                 a: &[usize],
                 hint: Option<usize>|
                 -> RuntimeResult<Option<f64>> {
                    Ok(Some(evaluator.score_delta(a, hint)?.objective))
                },
                DeltaEvaluator::take_counters,
                |obj| *obj,
                || false,
            )
            .expect("delta scan");
            let got: Vec<(usize, u64)> =
                outcome.results.iter().map(|h| (h.index, h.value.to_bits())).collect();
            assert_eq!(got, reference, "workers={workers} chunk={chunk}");
            // Every candidate's nodes were solved through the delta
            // machinery (hit or miss, never silently skipped).
            assert!(
                outcome.delta.solve_hits + outcome.delta.solve_misses > 0,
                "counters must reflect the scan"
            );
            assert!(outcome.delta.members_recomputed > 0);
        }
    }
}

#[test]
fn signature_collisions_reuse_solves_across_member_identities() {
    // Two identical members fully co-located: [0,0,1,1] then the
    // node-swapped [1,1,0,0]. Every position changes, both nodes are
    // touched — but each node's resident (workload, cores) sequence is
    // one the cache has already solved (built from the *other* member's
    // components), so the second score must be all hits.
    let shape = EnsembleShape::uniform(2, 16, 1, 8);
    let base = base_config(shape.materialize(&[0, 0, 1, 1]));
    let mut delta = DeltaEvaluator::new(&base, &shape);

    assert_scores_match(&base, &shape, &mut delta, &[0, 0, 1, 1]);
    let after_first = delta.counters();
    assert_eq!(after_first.solve_misses, 1, "node 1's occupancy collides with node 0's");
    assert_eq!(after_first.solve_hits, 1, "…and is served from the cache");

    assert_scores_match(&base, &shape, &mut delta, &[1, 1, 0, 0]);
    let after_second = delta.counters();
    assert_eq!(
        after_second.solve_misses, after_first.solve_misses,
        "no new solves: both occupancy signatures were already cached"
    );
    assert_eq!(after_second.solve_hits, 3, "both touched nodes served from cache");
}

#[test]
fn unchanged_nodes_are_not_rescored() {
    // Moving one analysis touches its old and new node only; a member
    // co-located on an untouched node must not be recomputed.
    let shape = EnsembleShape::uniform(3, 16, 1, 8);
    let base = base_config(shape.materialize(&[0, 0, 1, 1, 2, 2]));
    let mut delta = DeltaEvaluator::new(&base, &shape);
    assert_scores_match(&base, &shape, &mut delta, &[0, 0, 1, 1, 2, 2]);
    let before = delta.counters();
    assert_eq!(before.members_recomputed, 3, "first score computes everyone");
    // Move member 1's analysis from node 1 to node 0.
    assert_scores_match(&base, &shape, &mut delta, &[0, 0, 1, 0, 2, 2]);
    let after = delta.counters();
    assert_eq!(
        after.members_recomputed - before.members_recomputed,
        2,
        "members 0 and 1 share the touched nodes; member 2 must be served from cache"
    );
}

#[test]
fn errors_poison_the_delta_state_then_recover() {
    // An infeasible candidate errors (node over capacity); the next
    // feasible score must rebuild cleanly and stay bit-identical.
    let shape = EnsembleShape::uniform(2, 16, 1, 8);
    let base = base_config(shape.materialize(&[0, 0, 1, 1]));
    let mut delta = DeltaEvaluator::new(&base, &shape);
    assert_scores_match(&base, &shape, &mut delta, &[0, 0, 1, 1]);
    // 16+8+16 = 40 cores on node 0 overflows the 32-core node.
    assert!(delta.score(&[0, 0, 0, 1]).is_err(), "overloaded node must error");
    for assignment in [[0, 0, 1, 1], [0, 1, 0, 1], [0, 1, 1, 0]] {
        assert_scores_match(&base, &shape, &mut delta, &assignment);
    }
}

#[test]
fn conservative_hints_are_accepted() {
    // A hint may point earlier than the first actual difference; the
    // evaluator must still land on the identical result.
    let shape = EnsembleShape::uniform(2, 16, 1, 8);
    let base = base_config(shape.materialize(&[0, 0, 1, 1]));
    let mut delta = DeltaEvaluator::new(&base, &shape);
    delta.score(&[0, 0, 1, 1]).expect("seed score");
    let got = delta.score_delta(&[0, 0, 1, 2], Some(0)).expect("hinted score");
    let want =
        FastEvaluator::new(&base).score(&shape.materialize(&[0, 0, 1, 2])).expect("reference");
    assert_eq!(got.objective.to_bits(), want.objective.to_bits());
    assert_eq!(got.ensemble_makespan.to_bits(), want.ensemble_makespan.to_bits());
}
