//! Property-based tests of the parallel placement-scan engine.
//!
//! The engine's contract is *bit-identity*: at any worker count, the
//! scan returns exactly what a serial evaluation of the enumeration
//! returns — same order, same float bits — and bounded top-K equals the
//! first K rows of the full stable ranking. These properties pin both
//! across randomly generated shapes and budgets.
//!
//! CI runs this file under `ENSEMBLE_SCAN_WORKERS={1,2,8}`: every scan
//! built from `ScanOptions::default()` resolves its worker count from
//! the environment, so the same properties sweep the thread-count axis
//! without code changes.

use proptest::prelude::*;
use runtime::{RuntimeResult, SimRunConfig, WorkloadMap};
use scheduler::{
    canonicalize, enumerate_placements, fast_score, scan_placements, EnsembleShape, FastEvaluator,
    NodeBudget, PlacementIter, ScanOptions,
};

/// Small-but-varied ensemble shapes: 1–3 members, 1–2 analyses each,
/// core counts spanning the paper's co-location regimes.
fn shape_strategy() -> impl Strategy<Value = EnsembleShape> {
    (
        1usize..=3,                               // members
        prop::sample::select(vec![8u32, 16, 24]), // sim cores
        1usize..=2,                               // analyses per member
        prop::sample::select(vec![4u32, 8]),      // analysis cores
    )
        .prop_map(|(n, sim, k, ana)| EnsembleShape::uniform(n, sim, k, ana))
}

fn base_config(spec: ensemble_core::EnsembleSpec) -> SimRunConfig {
    let mut base = SimRunConfig::paper(spec);
    base.workloads = WorkloadMap::small_defaults();
    base
}

/// One scan of the whole space with per-worker reusable evaluators,
/// returning `(assignment, objective bits)` in output order.
fn scan_space(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
) -> Vec<(Vec<usize>, u64)> {
    let outcome = scan_placements(
        shape,
        budget,
        opts,
        || FastEvaluator::new(base),
        |evaluator: &mut FastEvaluator,
         _,
         assignment: &[usize]|
         -> RuntimeResult<Option<(Vec<usize>, f64)>> {
            let spec = shape.materialize(assignment);
            Ok(Some((assignment.to_vec(), evaluator.score(&spec)?.objective)))
        },
        |(_, objective)| *objective,
        || false,
    )
    .expect("scan");
    outcome.into_values().into_iter().map(|(a, o)| (a, o.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel scan is bit-identical to a serial evaluation of the
    /// enumeration — at one, two, and eight workers, and at whatever
    /// count `ENSEMBLE_SCAN_WORKERS` injects into the default options.
    #[test]
    fn parallel_scan_is_bit_identical_to_serial(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        chunk in 1usize..=8,
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let placements = enumerate_placements(&shape, max_nodes, 32);
        prop_assume!(!placements.is_empty());
        let base = base_config(shape.materialize(&placements[0]));
        // The serial reference: one-shot scores in enumeration order.
        let reference: Vec<(Vec<usize>, u64)> = placements
            .iter()
            .map(|a| {
                let spec = shape.materialize(a);
                (a.clone(), fast_score(&base, &spec).expect("score").objective.to_bits())
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let opts = ScanOptions { workers, chunk, ..Default::default() };
            prop_assert_eq!(&scan_space(&base, &shape, budget, &opts), &reference,
                "workers={} chunk={}", workers, chunk);
        }
        // Default options: worker count comes from the env override (or
        // host parallelism) — the CI sweep axis.
        let env_opts = ScanOptions { chunk, ..Default::default() };
        prop_assert_eq!(&scan_space(&base, &shape, budget, &env_opts), &reference);
    }

    /// Bounded top-K equals the first K rows of the full ranking under
    /// the stable best-first sort — truncation and bounded scan are
    /// interchangeable, byte for byte.
    #[test]
    fn top_k_equals_first_k_of_the_full_ranking(
        shape in shape_strategy(),
        max_nodes in 1usize..=4,
        top_k in 1usize..=6,
        chunk in 1usize..=8,
    ) {
        let budget = NodeBudget { max_nodes, cores_per_node: 32 };
        let placements = enumerate_placements(&shape, max_nodes, 32);
        prop_assume!(!placements.is_empty());
        let base = base_config(shape.materialize(&placements[0]));
        let full_opts = ScanOptions { chunk, ..Default::default() };
        let mut ranked = scan_space(&base, &shape, budget, &full_opts);
        // Stable best-first sort: equal objectives keep enumeration
        // order, exactly the tie-break the engine's top-K heap uses.
        ranked.sort_by(|a, b| f64::from_bits(b.1).total_cmp(&f64::from_bits(a.1)));
        ranked.truncate(top_k);
        let bounded_opts = ScanOptions { top_k, chunk, ..Default::default() };
        let bounded = scan_space(&base, &shape, budget, &bounded_opts);
        prop_assert_eq!(bounded, ranked);
    }

    /// The lazy iterator streams exactly the materialized enumeration,
    /// whatever chunk size reassembles it.
    #[test]
    fn placement_iter_streams_the_enumeration(
        shape in shape_strategy(),
        max_nodes in 0usize..=4,
        chunk in 1usize..=7,
    ) {
        let reference = enumerate_placements(&shape, max_nodes, 32);
        let mut iter = PlacementIter::new(&shape, max_nodes, 32);
        let mut streamed = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            if iter.next_chunk(&mut buf, chunk) == 0 {
                break;
            }
            for (index, assignment) in buf.drain(..) {
                prop_assert_eq!(index, streamed.len(), "indices are the enumeration order");
                streamed.push(assignment);
            }
        }
        prop_assert_eq!(streamed, reference);
    }

    /// The linear canonicalization matches the first-appearance
    /// relabeling definition (the old quadratic scan).
    #[test]
    fn canonicalize_matches_the_first_appearance_reference(
        assignment in prop::collection::vec(0usize..6, 0..12),
    ) {
        let reference: Vec<usize> = {
            let mut order: Vec<usize> = Vec::new();
            assignment
                .iter()
                .map(|&n| {
                    if let Some(pos) = order.iter().position(|&o| o == n) {
                        pos
                    } else {
                        order.push(n);
                        order.len() - 1
                    }
                })
                .collect()
        };
        prop_assert_eq!(canonicalize(&assignment), reference);
    }
}
