//! Property suite for the online co-scheduler.
//!
//! Two invariants from the PR contract:
//!
//! * **Conservation** — under any interleaving of admit / complete /
//!   fail / cancel events, `admitted_cores == released_cores +
//!   committed_cores` holds at every step, and a full drain leaves the
//!   residency map empty with the two counters equal.
//! * **Backfill protects the head** — on the same submission stream,
//!   with completions delivered in predicted order, the first queued
//!   job starts (and therefore completes) at the same virtual time
//!   whether backfill is on or off. This is the EASY guarantee the
//!   virtual-time rule was chosen for; a structural rule cannot give
//!   it.

use proptest::prelude::*;
use runtime::{SimRunConfig, WorkloadMap};
use scheduler::cosched::{Admission, CoScheduler, CoschedConfig};
use scheduler::{EnsembleShape, NodeBudget, ScanOptions};

fn base_config() -> SimRunConfig {
    let placeholder = EnsembleShape::uniform(1, 16, 1, 8);
    let mut cfg = SimRunConfig::paper(placeholder.materialize(&vec![0; 2]));
    cfg.workloads = WorkloadMap::small_defaults();
    cfg.n_steps = 4;
    cfg
}

fn sched(nodes: usize, backfill: bool) -> CoScheduler {
    let mut cfg = CoschedConfig::new(NodeBudget { max_nodes: nodes, cores_per_node: 32 });
    cfg.backfill = backfill;
    cfg.scan = ScanOptions { workers: 1, ..ScanOptions::default() };
    CoScheduler::new(cfg, base_config())
}

/// A small palette of shapes that mixes jobs that share nodes, fill
/// nodes, and span nodes.
fn shape_palette(i: usize) -> EnsembleShape {
    match i % 5 {
        0 => EnsembleShape::uniform(1, 4, 1, 4),  // 8 cores
        1 => EnsembleShape::uniform(1, 8, 1, 8),  // 16 cores
        2 => EnsembleShape::uniform(1, 16, 1, 8), // 24 cores
        3 => EnsembleShape::uniform(2, 8, 1, 4),  // 2 members, 24 cores
        _ => EnsembleShape::uniform(2, 16, 1, 8), // 2 members, 48 cores
    }
}

fn shape_strategy() -> impl Strategy<Value = EnsembleShape> {
    (0usize..5).prop_map(shape_palette)
}

/// One step of a random schedule-driving program.
#[derive(Debug, Clone)]
enum Event {
    Submit(EnsembleShape),
    /// Complete the k-th open reservation (mod count).
    Complete(usize),
    /// Cancel the k-th queued job (mod depth).
    CancelQueued(usize),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0u8..4, 0usize..5, 0usize..8).prop_map(|(kind, shape, k)| match kind {
        0 | 1 => Event::Submit(shape_palette(shape)),
        2 => Event::Complete(k),
        _ => Event::CancelQueued(k),
    })
}

/// The open reservation chosen deterministically by index.
fn pick_open(s: &CoScheduler, k: usize) -> Option<u64> {
    let open: Vec<u64> = s.residency().reservations().map(|r| r.job).collect();
    if open.is_empty() {
        None
    } else {
        Some(open[k % open.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Residency accounting is conserved under random admit /
    /// complete / fail / cancel interleavings, and a final drain
    /// leaves zero residual capacity committed.
    #[test]
    fn residency_accounting_is_conserved(
        events in proptest::collection::vec(event_strategy(), 1..24),
        nodes in 2usize..4,
    ) {
        let mut s = sched(nodes, true);
        let mut next_job = 0u64;
        let mut queued: Vec<u64> = Vec::new();
        for event in events {
            match event {
                Event::Submit(shape) => {
                    next_job += 1;
                    match s.submit(next_job, shape).unwrap() {
                        Admission::Queued { .. } => queued.push(next_job),
                        Admission::Placed(_) | Admission::Shed | Admission::Infeasible => {}
                    }
                }
                Event::Complete(k) => {
                    if let Some(job) = pick_open(&s, k) {
                        for (started, _) in s.release(job).unwrap() {
                            queued.retain(|&q| q != started);
                        }
                    }
                }
                Event::CancelQueued(k) => {
                    if !queued.is_empty() {
                        let job = queued[k % queued.len()];
                        if s.cancel_queued(job) {
                            queued.retain(|&q| q != job);
                        }
                    }
                }
            }
            let r = s.residency();
            prop_assert_eq!(
                r.admitted_cores(),
                r.released_cores() + r.committed_cores(),
                "conservation must hold after every event"
            );
        }
        // Drain: complete everything open (which may start queued
        // jobs), until idle.
        let mut guard = 0;
        while !s.residency().is_empty() {
            let job = pick_open(&s, 0).unwrap();
            for (started, _) in s.release(job).unwrap() {
                queued.retain(|&q| q != started);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain must terminate");
        }
        for job in queued {
            s.cancel_queued(job);
        }
        let r = s.residency();
        prop_assert!(r.is_empty(), "residency map must be empty after drain");
        prop_assert_eq!(r.committed_cores(), 0u64);
        prop_assert_eq!(r.admitted_cores(), r.released_cores());
        prop_assert!(s.is_idle());
    }

    /// With completions delivered in predicted order, backfill never
    /// changes when the first queued job (the head) starts or
    /// completes, relative to plain FIFO on the same stream.
    #[test]
    fn backfill_preserves_the_heads_schedule(
        shapes in proptest::collection::vec(shape_strategy(), 2..10),
        nodes in 2usize..4,
    ) {
        // Drive one scheduler over the batch-then-drain stream and
        // record every job's start virtual time.
        let drive = |backfill: bool| -> (Option<u64>, Vec<(u64, f64)>) {
            let mut s = sched(nodes, backfill);
            let mut first_queued: Option<u64> = None;
            let mut starts: Vec<(u64, f64)> = Vec::new();
            for (i, shape) in shapes.iter().enumerate() {
                let job = i as u64 + 1;
                match s.submit(job, shape.clone()).unwrap() {
                    Admission::Placed(_) => starts.push((job, s.virtual_now())),
                    Admission::Queued { .. } => {
                        if first_queued.is_none() {
                            first_queued = Some(job);
                        }
                    }
                    Admission::Shed | Admission::Infeasible => {}
                }
            }
            // Drain in predicted-completion order (the model world the
            // EASY rule reasons in).
            let mut guard = 0;
            while !s.residency().is_empty() {
                let next = s
                    .residency()
                    .reservations()
                    .min_by(|a, b| {
                        a.predicted_end.total_cmp(&b.predicted_end).then(a.seq.cmp(&b.seq))
                    })
                    .map(|r| r.job)
                    .unwrap();
                for (job, _) in s.release(next).unwrap() {
                    starts.push((job, s.virtual_now()));
                }
                guard += 1;
                assert!(guard < 10_000, "drain must terminate");
            }
            (first_queued, starts)
        };
        let (head_fifo, starts_fifo) = drive(false);
        let (head_bf, starts_bf) = drive(true);
        prop_assert_eq!(head_fifo, head_bf, "same stream, same first queued job");
        if let Some(head) = head_fifo {
            let start_of = |log: &[(u64, f64)]| {
                log.iter().find(|(j, _)| *j == head).map(|(_, t)| *t)
            };
            let fifo = start_of(&starts_fifo);
            let bf = start_of(&starts_bf);
            prop_assert_eq!(
                fifo.map(f64::to_bits), bf.map(f64::to_bits),
                "head start must be bit-identical with and without backfill \
                 (fifo {:?} vs backfill {:?})", fifo, bf
            );
        }
    }
}
