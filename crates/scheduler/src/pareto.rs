//! Pareto analysis of the placement space: provisioned nodes versus
//! predicted ensemble makespan, with the indicator as a tie-breaker —
//! showing the resource/performance trade-off the paper's indicator
//! collapses into one number.

use runtime::{RuntimeResult, SimRunConfig};
use serde::{Deserialize, Serialize};

use crate::delta::DeltaEvaluator;
use crate::enumerate::EnsembleShape;
use crate::scan::{scan_placements_delta, ScanOptions, ScanOutcome};
use crate::search::NodeBudget;

/// One placement with its two objectives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Flattened node assignment.
    pub assignment: Vec<usize>,
    /// Nodes provisioned (minimize).
    pub nodes_used: usize,
    /// Predicted ensemble makespan, seconds (minimize).
    pub ensemble_makespan: f64,
    /// `F(Pᵁ·ᴬ·ᴾ)` (maximize; reported for context).
    pub objective: f64,
    /// Whether the point survives Pareto filtering.
    pub dominated: bool,
}

/// Evaluates every canonical feasible placement and marks the Pareto
/// frontier over (nodes, makespan). Points are returned sorted by node
/// count then makespan. Runs the parallel scan engine at its default
/// worker count — see [`pareto_front_with`] for explicit control.
pub fn pareto_front(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
) -> RuntimeResult<Vec<ParetoPoint>> {
    pareto_front_with(base, shape, budget, &ScanOptions::default())
}

/// [`pareto_front`] with explicit scan options. `top_k` is ignored —
/// dominance marking needs every point. Each scan worker owns one
/// reusable [`DeltaEvaluator`]: successive candidates re-solve only the
/// nodes whose occupancy changed, with results bit-identical to the
/// from-scratch path.
pub fn pareto_front_with(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
) -> RuntimeResult<Vec<ParetoPoint>> {
    let opts = ScanOptions { top_k: 0, ..*opts };
    let outcome = scan_placements_delta(
        shape,
        budget,
        &opts,
        || DeltaEvaluator::new(base, shape),
        |evaluator: &mut DeltaEvaluator,
         _,
         assignment: &[usize],
         hint: Option<usize>|
         -> RuntimeResult<Option<ParetoPoint>> {
            let score = evaluator.score_delta(assignment, hint)?;
            Ok(Some(ParetoPoint {
                assignment: assignment.to_vec(),
                nodes_used: score.nodes_used,
                ensemble_makespan: score.ensemble_makespan,
                objective: score.objective,
                dominated: false,
            }))
        },
        DeltaEvaluator::take_counters,
        |p: &ParetoPoint| p.objective,
        || false,
    )?;
    let mut points = ScanOutcome::into_values(outcome);
    // Dominance: fewer-or-equal nodes AND shorter-or-equal makespan,
    // strictly better in one.
    for i in 0..points.len() {
        points[i].dominated = (0..points.len()).any(|j| {
            j != i
                && points[j].nodes_used <= points[i].nodes_used
                && points[j].ensemble_makespan <= points[i].ensemble_makespan + 1e-12
                && (points[j].nodes_used < points[i].nodes_used
                    || points[j].ensemble_makespan < points[i].ensemble_makespan - 1e-12)
        });
    }
    points.sort_by(|a, b| {
        a.nodes_used.cmp(&b.nodes_used).then(a.ensemble_makespan.total_cmp(&b.ensemble_makespan))
    });
    Ok(points)
}

/// The non-dominated subset of [`pareto_front`]'s output.
pub fn frontier_only(points: &[ParetoPoint]) -> Vec<&ParetoPoint> {
    points.iter().filter(|p| !p.dominated).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::WorkloadMap;

    fn base() -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(ensemble_core::ConfigId::Cf.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg
    }

    #[test]
    fn frontier_is_nonempty_and_monotone() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let points =
            pareto_front(&base(), &shape, NodeBudget { max_nodes: 3, cores_per_node: 32 }).unwrap();
        assert!(!points.is_empty());
        let frontier = frontier_only(&points);
        assert!(!frontier.is_empty());
        // Along the frontier, more nodes must buy shorter (or equal)
        // makespans.
        for w in frontier.windows(2) {
            if w[1].nodes_used > w[0].nodes_used {
                assert!(w[1].ensemble_makespan <= w[0].ensemble_makespan + 1e-9);
            }
        }
    }

    #[test]
    fn scan_matches_the_one_shot_path_bitwise_at_any_worker_count() {
        // Regression for the per-candidate `fast_score(base, …)` clone
        // the serial loop used to pay: the reused per-worker evaluator
        // must reproduce the one-shot scores bit for bit, at every
        // worker count.
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 3, cores_per_node: 32 };
        let base = base();
        let serial = pareto_front_with(
            &base,
            &shape,
            budget,
            &ScanOptions { workers: 1, ..Default::default() },
        )
        .unwrap();
        for p in &serial {
            let one_shot = crate::fast_eval::fast_score(&base, &shape.materialize(&p.assignment))
                .expect("one-shot score");
            assert_eq!(p.objective.to_bits(), one_shot.objective.to_bits(), "{:?}", p.assignment);
            assert_eq!(p.ensemble_makespan.to_bits(), one_shot.ensemble_makespan.to_bits());
        }
        for workers in [2usize, 8] {
            let parallel = pareto_front_with(
                &base,
                &shape,
                budget,
                &ScanOptions { workers, chunk: 2, ..Default::default() },
            )
            .unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.assignment, b.assignment, "workers={workers}");
                assert_eq!(a.objective.to_bits(), b.objective.to_bits());
                assert_eq!(a.ensemble_makespan.to_bits(), b.ensemble_makespan.to_bits());
                assert_eq!(a.dominated, b.dominated);
            }
        }
    }

    #[test]
    fn dominated_points_are_marked() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let points =
            pareto_front(&base(), &shape, NodeBudget { max_nodes: 3, cores_per_node: 32 }).unwrap();
        // With contention, at least one 3-node scatter placement is
        // dominated by the 2-node full co-location (C1.5 pattern).
        assert!(points.iter().any(|p| p.dominated), "some placement must be dominated");
        let c15 = points
            .iter()
            .find(|p| p.assignment == vec![0, 0, 1, 1])
            .expect("C1.5 pattern enumerated");
        assert!(!c15.dominated, "full co-location should sit on the frontier");
    }
}
