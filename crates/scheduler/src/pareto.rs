//! Pareto analysis of the placement space: provisioned nodes versus
//! predicted ensemble makespan, with the indicator as a tie-breaker —
//! showing the resource/performance trade-off the paper's indicator
//! collapses into one number.

use runtime::{RuntimeResult, SimRunConfig};
use serde::{Deserialize, Serialize};

use crate::enumerate::{enumerate_placements, EnsembleShape};
use crate::fast_eval::fast_score;
use crate::search::NodeBudget;

/// One placement with its two objectives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Flattened node assignment.
    pub assignment: Vec<usize>,
    /// Nodes provisioned (minimize).
    pub nodes_used: usize,
    /// Predicted ensemble makespan, seconds (minimize).
    pub ensemble_makespan: f64,
    /// `F(Pᵁ·ᴬ·ᴾ)` (maximize; reported for context).
    pub objective: f64,
    /// Whether the point survives Pareto filtering.
    pub dominated: bool,
}

/// Evaluates every canonical feasible placement and marks the Pareto
/// frontier over (nodes, makespan). Points are returned sorted by node
/// count then makespan.
pub fn pareto_front(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
) -> RuntimeResult<Vec<ParetoPoint>> {
    let mut points = Vec::new();
    for assignment in enumerate_placements(shape, budget.max_nodes, budget.cores_per_node) {
        let spec = shape.materialize(&assignment);
        let score = fast_score(base, &spec)?;
        points.push(ParetoPoint {
            assignment,
            nodes_used: score.nodes_used,
            ensemble_makespan: score.ensemble_makespan,
            objective: score.objective,
            dominated: false,
        });
    }
    // Dominance: fewer-or-equal nodes AND shorter-or-equal makespan,
    // strictly better in one.
    for i in 0..points.len() {
        points[i].dominated = (0..points.len()).any(|j| {
            j != i
                && points[j].nodes_used <= points[i].nodes_used
                && points[j].ensemble_makespan <= points[i].ensemble_makespan + 1e-12
                && (points[j].nodes_used < points[i].nodes_used
                    || points[j].ensemble_makespan < points[i].ensemble_makespan - 1e-12)
        });
    }
    points.sort_by(|a, b| {
        a.nodes_used.cmp(&b.nodes_used).then(a.ensemble_makespan.total_cmp(&b.ensemble_makespan))
    });
    Ok(points)
}

/// The non-dominated subset of [`pareto_front`]'s output.
pub fn frontier_only(points: &[ParetoPoint]) -> Vec<&ParetoPoint> {
    points.iter().filter(|p| !p.dominated).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::WorkloadMap;

    fn base() -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(ensemble_core::ConfigId::Cf.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg
    }

    #[test]
    fn frontier_is_nonempty_and_monotone() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let points =
            pareto_front(&base(), &shape, NodeBudget { max_nodes: 3, cores_per_node: 32 }).unwrap();
        assert!(!points.is_empty());
        let frontier = frontier_only(&points);
        assert!(!frontier.is_empty());
        // Along the frontier, more nodes must buy shorter (or equal)
        // makespans.
        for w in frontier.windows(2) {
            if w[1].nodes_used > w[0].nodes_used {
                assert!(w[1].ensemble_makespan <= w[0].ensemble_makespan + 1e-9);
            }
        }
    }

    #[test]
    fn dominated_points_are_marked() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let points =
            pareto_front(&base(), &shape, NodeBudget { max_nodes: 3, cores_per_node: 32 }).unwrap();
        // With contention, at least one 3-node scatter placement is
        // dominated by the 2-node full co-location (C1.5 pattern).
        assert!(points.iter().any(|p| p.dominated), "some placement must be dominated");
        let c15 = points
            .iter()
            .find(|p| p.assignment == vec![0, 0, 1, 1])
            .expect("C1.5 pattern enumerated");
        assert!(!c15.dominated, "full co-location should sit on the frontier");
    }
}
