//! Parallel streaming placement-scan engine.
//!
//! Every candidate scan in this crate — the DES-scored exhaustive
//! search, the service's closed-form `score` path, the Pareto sweep, and
//! the moldable joint search — has the same shape: enumerate canonical
//! placements, evaluate each one independently, rank the results. This
//! module is that shape, made reusable and parallel:
//!
//! * **Streaming enumeration.** Candidates come from
//!   [`PlacementIter`], pulled in chunks under a mutex — no
//!   `O(candidates)` materialization up front.
//! * **Scoped worker threads.** `std::thread::scope` fans chunks out to
//!   `workers` threads (default: available parallelism, overridable per
//!   call or via the `ENSEMBLE_SCAN_WORKERS` environment variable). No
//!   new dependencies — plain `std` threads, like the rest of the
//!   workspace. Each worker owns its own evaluation state (built once
//!   by `init`), so the per-candidate cost stays allocation-free.
//! * **Deterministic merge.** Every result is tagged with its
//!   enumeration index; the merge sorts by that index, so the output
//!   order **and every float bit** are identical to a serial scan at
//!   any worker count. (Each candidate's evaluation is a pure function
//!   of `(evaluation state, assignment)` — see the determinism suite in
//!   `tests/scan_properties.rs`.)
//! * **Bounded top-K.** With `top_k > 0` each worker keeps a fixed-size
//!   heap ordered by `(objective desc, enumeration index asc)`; merged
//!   heaps reproduce exactly the first K rows of the full stable
//!   ranking, in `O(K)` memory per worker.
//! * **Cooperative cancellation.** The `cancel` probe is checked
//!   between chunks; once it fires, all workers stop pulling and the
//!   outcome reports how far the scan got.

use std::sync::Mutex;

use crate::delta::DeltaCounters;
use crate::enumerate::{EnsembleShape, PlacementIter};
use crate::search::NodeBudget;

/// Environment variable overriding the default worker count (used by CI
/// to sweep the determinism suite across 1/2/8 workers without an API
/// change). Explicit [`ScanOptions::workers`] wins over it.
pub const SCAN_WORKERS_ENV: &str = "ENSEMBLE_SCAN_WORKERS";

/// Tuning of one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Worker threads. Zero means "auto": the [`SCAN_WORKERS_ENV`]
    /// environment variable if set, else available parallelism.
    pub workers: usize,
    /// Candidates handed to a worker per feed pull. Smaller chunks probe
    /// cancellation more often; larger ones amortize the feed lock.
    pub chunk: usize,
    /// Keep only the best K results (by objective, ties broken by
    /// enumeration index). Zero keeps everything, in enumeration order.
    pub top_k: usize,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { workers: 0, chunk: 32, top_k: 0 }
    }
}

impl ScanOptions {
    /// The worker count this scan will actually run with.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        if let Some(n) = workers_from_env(std::env::var(SCAN_WORKERS_ENV).ok().as_deref()) {
            return n;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Parses a worker-count override; `None` for unset/unparseable/zero.
fn workers_from_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// A point-in-time view of a running scan, handed to the progress
/// observer of [`scan_placements_observed`].
///
/// Produced under the feed lock at the same probe point cancellation
/// uses (between chunks), so successive observations are monotone:
/// `scanned` never decreases and `best_objective` never worsens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanProgress {
    /// Candidates handed to an evaluator so far, across all workers.
    pub scanned: usize,
    /// Best objective seen so far (`None` until a feasible candidate
    /// has been evaluated).
    pub best_objective: Option<f64>,
    /// Worker threads the scan is running with.
    pub workers: usize,
}

/// One scanned candidate: its enumeration index and evaluation result.
#[derive(Debug, Clone)]
pub struct ScanHit<T> {
    /// Position in the canonical enumeration order.
    pub index: usize,
    /// What the evaluator produced.
    pub value: T,
}

/// What a scan produced.
#[derive(Debug, Clone)]
pub struct ScanOutcome<T> {
    /// Evaluation results. With `top_k == 0`: every feasible candidate,
    /// in enumeration order. With `top_k > 0`: the best K, ranked
    /// best-first (objective descending, enumeration index breaking
    /// ties) — exactly the first K rows of the full stable ranking.
    pub results: Vec<ScanHit<T>>,
    /// Candidates handed to an evaluator (cancelled scans stop short of
    /// the full enumeration).
    pub scanned: usize,
    /// Candidates whose evaluator returned a result (`scanned` minus
    /// those filtered out by an evaluator returning `None`).
    pub feasible: usize,
    /// True when the cancellation probe stopped the scan early.
    pub cancelled: bool,
    /// Worker threads the scan ran with.
    pub workers: usize,
    /// Delta-evaluation cache counters, summed across workers. All
    /// zeros unless the scan ran through
    /// [`scan_placements_delta`]/[`scan_placements_delta_observed`]
    /// with a draining evaluator.
    pub delta: DeltaCounters,
}

impl<T> ScanOutcome<T> {
    /// The results stripped of their enumeration indexes.
    pub fn into_values(self) -> Vec<T> {
        self.results.into_iter().map(|h| h.value).collect()
    }
}

/// Rank key for top-K selection: better = higher objective, ties broken
/// toward the earlier enumeration index — the same total order a stable
/// descending sort of the full result set induces, which is what makes
/// bounded top-K bit-identical to `full ranking → truncate(K)`.
#[derive(Debug, Clone, Copy)]
struct Rank {
    objective: f64,
    index: usize,
}

impl Rank {
    /// True when `self` ranks strictly worse than `other`.
    fn worse_than(&self, other: &Rank) -> bool {
        match self.objective.total_cmp(&other.objective) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.index > other.index,
        }
    }
}

/// Fixed-capacity keeper of the best K `(Rank, T)` pairs. Insertion is
/// `O(K)` worst case — K is a client-requested top-k (tens), so a
/// simple worst-slot scan beats heap bookkeeping at this size.
struct TopK<T> {
    capacity: usize,
    kept: Vec<(Rank, T)>,
}

impl<T> TopK<T> {
    fn new(capacity: usize) -> Self {
        TopK { capacity, kept: Vec::with_capacity(capacity) }
    }

    fn offer(&mut self, rank: Rank, value: T) {
        if self.kept.len() < self.capacity {
            self.kept.push((rank, value));
            return;
        }
        // Full: replace the worst kept entry if the offer beats it.
        let worst = self
            .kept
            .iter()
            .enumerate()
            .max_by(|(_, (a, _)), (_, (b, _))| {
                if a.worse_than(b) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Less
                }
            })
            .map(|(i, _)| i)
            .expect("capacity > 0");
        if self.kept[worst].0.worse_than(&rank) {
            self.kept[worst] = (rank, value);
        }
    }
}

/// The shared chunk feed: workers pull batches of candidates under this
/// mutex; the first worker to observe cancellation (or an evaluation
/// error) trips `stop` so the others cease pulling at their next visit.
/// The feed also aggregates cross-worker progress (`scanned`, `best`):
/// each worker folds its previous batch in when it returns for the next
/// one, which is where the progress observer fires.
struct Feed {
    iter: PlacementIter,
    stop: bool,
    scanned: usize,
    best: Option<f64>,
}

/// Per-worker scan state returned to the merge step.
struct WorkerOut<T, E> {
    all: Vec<ScanHit<T>>,
    top: Option<TopK<T>>,
    scanned: usize,
    feasible: usize,
    cancelled: bool,
    error: Option<(usize, E)>,
    delta: DeltaCounters,
}

/// Scans every canonical feasible placement of `shape` under `budget`,
/// in parallel, with deterministic output.
///
/// * `init` builds one evaluation state per worker (e.g. a
///   [`crate::FastEvaluator`] or a reusable DES run configuration) —
///   called once per worker thread, never shared.
/// * `eval` scores one candidate: `(state, enumeration index,
///   assignment) → Ok(Some(result))`, `Ok(None)` to skip it (it still
///   counts as scanned, not as feasible), or `Err` to abort the scan.
/// * `objective` extracts the ranking key used by top-K selection.
/// * `cancel` is polled between chunks on every worker; returning
///   `true` stops the scan and marks the outcome cancelled.
///
/// On error the scan stops and the error belonging to the **smallest
/// enumeration index** is returned — the same error a serial scan would
/// have surfaced first, regardless of which worker hit it.
pub fn scan_placements<S, T, E>(
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize, &[usize]) -> Result<Option<T>, E> + Sync,
    objective: impl Fn(&T) -> f64 + Sync,
    cancel: impl Fn() -> bool + Sync,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
{
    scan_placements_observed(shape, budget, opts, init, eval, objective, cancel, |_| {})
}

/// [`scan_placements`] with a per-chunk progress observer.
///
/// `progress` fires under the feed lock at the same probe point
/// cancellation uses — each time a worker returns for its next chunk
/// and the global candidate count has advanced. Observations are
/// strictly monotone in `scanned`. Keep the observer cheap (push to a
/// channel, update an atomic): it briefly serializes workers. The last
/// chunk of a completed scan is still reported (the worker that drains
/// the iterator folds its final batch in first); use the returned
/// [`ScanOutcome`] for authoritative totals.
#[allow(clippy::too_many_arguments)]
pub fn scan_placements_observed<S, T, E>(
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize, &[usize]) -> Result<Option<T>, E> + Sync,
    objective: impl Fn(&T) -> f64 + Sync,
    cancel: impl Fn() -> bool + Sync,
    progress: impl Fn(&ScanProgress) + Sync,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
{
    scan_engine(
        shape,
        budget,
        opts,
        init,
        |state, index, assignment, _hint| eval(state, index, assignment),
        |_| DeltaCounters::default(),
        objective,
        cancel,
        progress,
    )
}

/// [`scan_placements`] for delta-scoring evaluators.
///
/// Differences from the plain form:
///
/// * `eval` receives a fourth argument — the first-changed-position hint
///   from [`PlacementIter::next_chunk_delta`], already gated to `Some`
///   only when this worker evaluated the immediately preceding
///   enumeration index (hints are meaningless across chunk boundaries,
///   where a worker's previous candidate is from an unrelated part of
///   the space). Pass it to [`crate::DeltaEvaluator::score_delta`].
/// * `drain` runs once per worker when it stops pulling, extracting the
///   worker's [`DeltaCounters`] (use
///   [`crate::DeltaEvaluator::take_counters`]); the summed counters land
///   in [`ScanOutcome::delta`].
#[allow(clippy::too_many_arguments)]
pub fn scan_placements_delta<S, T, E>(
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize, &[usize], Option<usize>) -> Result<Option<T>, E> + Sync,
    drain: impl Fn(&mut S) -> DeltaCounters + Sync,
    objective: impl Fn(&T) -> f64 + Sync,
    cancel: impl Fn() -> bool + Sync,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
{
    scan_engine(shape, budget, opts, init, eval, drain, objective, cancel, |_| {})
}

/// [`scan_placements_delta`] with a per-chunk progress observer (see
/// [`scan_placements_observed`] for the observer contract).
#[allow(clippy::too_many_arguments)]
pub fn scan_placements_delta_observed<S, T, E>(
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize, &[usize], Option<usize>) -> Result<Option<T>, E> + Sync,
    drain: impl Fn(&mut S) -> DeltaCounters + Sync,
    objective: impl Fn(&T) -> f64 + Sync,
    cancel: impl Fn() -> bool + Sync,
    progress: impl Fn(&ScanProgress) + Sync,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
{
    scan_engine(shape, budget, opts, init, eval, drain, objective, cancel, progress)
}

/// The engine behind every public scan entry point.
///
/// Always pulls via [`PlacementIter::next_chunk_delta`]; the plain
/// wrappers simply discard the hint. A worker forwards a candidate's
/// first-changed hint only when it also evaluated the candidate at the
/// immediately preceding enumeration index — the hint is relative to
/// that predecessor, and across a chunk boundary the worker's own
/// previous candidate is some unrelated assignment (the evaluator's
/// hint-free self-diff is always correct there, just wider).
#[allow(clippy::too_many_arguments)]
fn scan_engine<S, T, E>(
    shape: &EnsembleShape,
    budget: NodeBudget,
    opts: &ScanOptions,
    init: impl Fn() -> S + Sync,
    eval: impl Fn(&mut S, usize, &[usize], Option<usize>) -> Result<Option<T>, E> + Sync,
    drain: impl Fn(&mut S) -> DeltaCounters + Sync,
    objective: impl Fn(&T) -> f64 + Sync,
    cancel: impl Fn() -> bool + Sync,
    progress: impl Fn(&ScanProgress) + Sync,
) -> Result<ScanOutcome<T>, E>
where
    T: Send,
    E: Send,
{
    let workers = opts.effective_workers();
    let chunk = opts.chunk.max(1);
    let feed = Mutex::new(Feed {
        iter: PlacementIter::new(shape, budget.max_nodes, budget.cores_per_node),
        stop: false,
        scanned: 0,
        best: None,
    });

    let run_worker = || -> WorkerOut<T, E> {
        let mut state = init();
        let mut out = WorkerOut {
            all: Vec::new(),
            top: (opts.top_k > 0).then(|| TopK::new(opts.top_k)),
            scanned: 0,
            feasible: 0,
            cancelled: false,
            error: None,
            delta: DeltaCounters::default(),
        };
        let mut batch: Vec<(usize, Vec<usize>, Option<usize>)> = Vec::with_capacity(chunk);
        // This worker's contribution since it last folded into the feed.
        let mut batch_scanned = 0usize;
        let mut batch_best: Option<f64> = None;
        // Enumeration index of the candidate this worker evaluated last;
        // first-changed hints are valid only for its direct successor.
        let mut last_index: Option<usize> = None;
        'pull: loop {
            batch.clear();
            {
                let mut feed = feed.lock().expect("scan feed lock");
                if batch_scanned > 0 {
                    feed.scanned += batch_scanned;
                    batch_scanned = 0;
                    if let Some(b) = batch_best.take() {
                        feed.best = Some(feed.best.map_or(b, |cur: f64| cur.max(b)));
                    }
                    progress(&ScanProgress {
                        scanned: feed.scanned,
                        best_objective: feed.best,
                        workers,
                    });
                }
                if feed.stop {
                    break;
                }
                if cancel() {
                    feed.stop = true;
                    out.cancelled = true;
                    break;
                }
                if feed.iter.next_chunk_delta(&mut batch, chunk) == 0 {
                    break;
                }
            }
            for (index, assignment, first_changed) in batch.drain(..) {
                out.scanned += 1;
                batch_scanned += 1;
                let hint =
                    first_changed.filter(|_| last_index.is_some_and(|last| last + 1 == index));
                last_index = Some(index);
                match eval(&mut state, index, &assignment, hint) {
                    Ok(Some(value)) => {
                        out.feasible += 1;
                        let obj = objective(&value);
                        batch_best = Some(batch_best.map_or(obj, |cur| cur.max(obj)));
                        match &mut out.top {
                            Some(top) => top.offer(Rank { objective: obj, index }, value),
                            None => out.all.push(ScanHit { index, value }),
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        out.error = Some((index, e));
                        feed.lock().expect("scan feed lock").stop = true;
                        break 'pull;
                    }
                }
            }
        }
        out.delta = drain(&mut state);
        out
    };

    let mut outputs: Vec<WorkerOut<T, E>> = if workers <= 1 {
        vec![run_worker()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(run_worker)).collect::<Vec<_>>();
            handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
        })
    };

    // Propagate the error a serial scan would have hit first.
    let mut first_error: Option<(usize, E)> = None;
    for out in &mut outputs {
        if let Some((index, _)) = &out.error {
            let better = first_error.as_ref().is_none_or(|(best, _)| index < best);
            if better {
                first_error = out.error.take();
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    let scanned = outputs.iter().map(|o| o.scanned).sum();
    let feasible = outputs.iter().map(|o| o.feasible).sum();
    let cancelled = outputs.iter().any(|o| o.cancelled);
    let mut delta = DeltaCounters::default();
    for out in &outputs {
        delta.absorb(out.delta);
    }
    let results = if opts.top_k > 0 {
        let mut merged: Vec<(Rank, T)> =
            outputs.into_iter().flat_map(|o| o.top.expect("top-k mode").kept).collect();
        merged.sort_by(|(a, _), (b, _)| {
            b.objective.total_cmp(&a.objective).then(a.index.cmp(&b.index))
        });
        merged.truncate(opts.top_k);
        merged.into_iter().map(|(rank, value)| ScanHit { index: rank.index, value }).collect()
    } else {
        let mut merged: Vec<ScanHit<T>> = outputs.into_iter().flat_map(|o| o.all).collect();
        merged.sort_by_key(|h| h.index);
        merged
    };
    Ok(ScanOutcome { results, scanned, feasible, cancelled, workers, delta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn shape() -> EnsembleShape {
        EnsembleShape::uniform(2, 16, 1, 8)
    }

    fn budget() -> NodeBudget {
        NodeBudget { max_nodes: 3, cores_per_node: 32 }
    }

    /// A deterministic toy objective so engine tests need no simulator.
    fn toy_objective(assignment: &[usize]) -> f64 {
        assignment.iter().enumerate().map(|(i, &n)| 1.0 / (1.0 + (i * n) as f64)).sum()
    }

    fn full_scan(workers: usize) -> ScanOutcome<(Vec<usize>, f64)> {
        scan_placements(
            &shape(),
            budget(),
            &ScanOptions { workers, chunk: 2, top_k: 0 },
            || (),
            |(), _, a| Ok::<_, ()>(Some((a.to_vec(), toy_objective(a)))),
            |(_, obj)| *obj,
            || false,
        )
        .expect("scan")
    }

    #[test]
    fn results_arrive_in_enumeration_order_at_any_worker_count() {
        let expected = crate::enumerate::enumerate_placements(&shape(), 3, 32);
        for workers in [1, 2, 8] {
            let outcome = full_scan(workers);
            assert_eq!(outcome.workers, workers);
            assert_eq!(outcome.scanned, expected.len());
            assert_eq!(outcome.feasible, expected.len());
            assert!(!outcome.cancelled);
            for (i, hit) in outcome.results.iter().enumerate() {
                assert_eq!(hit.index, i);
                assert_eq!(hit.value.0, expected[i], "workers={workers}");
            }
        }
    }

    #[test]
    fn top_k_equals_first_k_of_the_full_stable_ranking() {
        let full = full_scan(1);
        let mut ranked = full.results.clone();
        ranked.sort_by(|a, b| b.value.1.total_cmp(&a.value.1));
        for workers in [1, 2, 8] {
            for k in [1usize, 2, 3, 100] {
                let outcome = scan_placements(
                    &shape(),
                    budget(),
                    &ScanOptions { workers, chunk: 2, top_k: k },
                    || (),
                    |(), _, a| Ok::<_, ()>(Some((a.to_vec(), toy_objective(a)))),
                    |(_, obj)| *obj,
                    || false,
                )
                .expect("scan");
                assert_eq!(outcome.results.len(), k.min(ranked.len()));
                for (hit, expect) in outcome.results.iter().zip(&ranked) {
                    assert_eq!(hit.index, expect.index, "workers={workers} k={k}");
                    assert_eq!(hit.value.1.to_bits(), expect.value.1.to_bits());
                }
            }
        }
    }

    #[test]
    fn cancellation_stops_between_chunks() {
        let pulls = AtomicUsize::new(0);
        let outcome = scan_placements(
            &shape(),
            budget(),
            &ScanOptions { workers: 1, chunk: 1, top_k: 0 },
            || (),
            |(), _, a| Ok::<_, ()>(Some(a.to_vec())),
            |_| 0.0,
            || pulls.fetch_add(1, Ordering::SeqCst) >= 2,
        )
        .expect("scan");
        assert!(outcome.cancelled);
        let total = crate::enumerate::enumerate_placements(&shape(), 3, 32).len();
        assert!(outcome.scanned < total, "{} of {total} scanned", outcome.scanned);
        assert_eq!(outcome.results.len(), outcome.scanned);
    }

    #[test]
    fn first_error_in_enumeration_order_wins() {
        for workers in [1, 4] {
            let err = scan_placements(
                &shape(),
                budget(),
                &ScanOptions { workers, chunk: 1, top_k: 0 },
                || (),
                |(), index, _: &[usize]| {
                    if index >= 1 {
                        Err(index)
                    } else {
                        Ok(Some(index))
                    }
                },
                |_| 0.0,
                || false,
            )
            .expect_err("scan must fail");
            assert_eq!(err, 1, "workers={workers}: smallest failing index wins");
        }
    }

    #[test]
    fn infeasible_candidates_count_as_scanned_not_feasible() {
        let outcome = scan_placements(
            &shape(),
            budget(),
            &ScanOptions { workers: 2, chunk: 2, top_k: 0 },
            || (),
            |(), index, _: &[usize]| Ok::<_, ()>((index % 2 == 0).then_some(index)),
            |_| 0.0,
            || false,
        )
        .expect("scan");
        assert!(outcome.feasible < outcome.scanned);
        assert_eq!(outcome.feasible, outcome.results.len());
    }

    #[test]
    fn progress_observations_are_monotone_and_cover_the_scan() {
        let expected = crate::enumerate::enumerate_placements(&shape(), 3, 32);
        for workers in [1, 2, 8] {
            let seen: Mutex<Vec<ScanProgress>> = Mutex::new(Vec::new());
            let outcome = scan_placements_observed(
                &shape(),
                budget(),
                &ScanOptions { workers, chunk: 2, top_k: 0 },
                || (),
                |(), _, a| Ok::<_, ()>(Some((a.to_vec(), toy_objective(a)))),
                |(_, obj)| *obj,
                || false,
                |p| seen.lock().unwrap().push(*p),
            )
            .expect("scan");
            let seen = seen.into_inner().unwrap();
            assert!(!seen.is_empty(), "workers={workers}: a multi-chunk scan must report");
            let mut last = 0usize;
            let mut last_best = f64::NEG_INFINITY;
            for p in &seen {
                assert!(p.scanned >= last, "scanned must be monotone");
                last = p.scanned;
                let best = p.best_objective.expect("toy eval always feasible");
                assert!(best >= last_best, "best must never worsen");
                last_best = best;
                assert_eq!(p.workers, workers);
            }
            // The final observation covers the whole enumeration (the
            // draining worker folds its last batch in before stopping).
            assert_eq!(last, expected.len());
            assert_eq!(outcome.scanned, expected.len());
        }
    }

    #[test]
    fn cancelled_scans_still_report_progress_up_to_the_stop() {
        let pulls = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        let outcome = scan_placements_observed(
            &shape(),
            budget(),
            &ScanOptions { workers: 1, chunk: 1, top_k: 0 },
            || (),
            |(), _, a| Ok::<_, ()>(Some(a.to_vec())),
            |_| 0.0,
            || pulls.fetch_add(1, Ordering::SeqCst) >= 3,
            |p: &ScanProgress| seen.lock().unwrap().push(p.scanned),
        )
        .expect("scan");
        assert!(outcome.cancelled);
        let seen = seen.into_inner().unwrap();
        assert!(!seen.is_empty());
        assert!(*seen.last().unwrap() <= outcome.scanned);
    }

    #[test]
    fn delta_hints_only_flow_to_direct_successors_and_counters_sum() {
        for workers in [1usize, 2, 8] {
            for chunk in [1usize, 2, 5] {
                let hinted = AtomicUsize::new(0);
                let outcome = scan_placements_delta(
                    &shape(),
                    budget(),
                    &ScanOptions { workers, chunk, top_k: 0 },
                    || None::<Vec<usize>>,
                    |prev, _, a, hint| {
                        if let Some(h) = hint {
                            let p = prev.as_ref().expect("hint implies a predecessor");
                            assert_eq!(p[..h], a[..h], "hint skipped a real change");
                            hinted.fetch_add(1, Ordering::SeqCst);
                        }
                        *prev = Some(a.to_vec());
                        Ok::<_, ()>(Some((a.to_vec(), toy_objective(a))))
                    },
                    |_| DeltaCounters { solve_hits: 1, solve_misses: 2, members_recomputed: 3 },
                    |(_, obj)| *obj,
                    || false,
                )
                .expect("scan");
                // Results are still the full deterministic enumeration.
                let expected = crate::enumerate::enumerate_placements(&shape(), 3, 32);
                assert_eq!(outcome.results.len(), expected.len());
                // One drain per spawned worker, summed into the outcome.
                assert_eq!(outcome.delta.solve_hits, workers as u64);
                assert_eq!(outcome.delta.solve_misses, 2 * workers as u64);
                assert_eq!(outcome.delta.members_recomputed, 3 * workers as u64);
                if workers == 1 {
                    // A serial scan sees every candidate in order: every
                    // candidate after the first carries a hint.
                    assert_eq!(hinted.load(Ordering::SeqCst), expected.len() - 1);
                }
            }
        }
    }

    #[test]
    fn plain_scans_report_zero_delta_counters() {
        let outcome = full_scan(2);
        assert_eq!(outcome.delta, DeltaCounters::default());
    }

    #[test]
    fn worker_env_override_parses_strictly() {
        assert_eq!(workers_from_env(None), None);
        assert_eq!(workers_from_env(Some("")), None);
        assert_eq!(workers_from_env(Some("0")), None);
        assert_eq!(workers_from_env(Some("nope")), None);
        assert_eq!(workers_from_env(Some("4")), Some(4));
        assert_eq!(workers_from_env(Some(" 2 ")), Some(2));
    }

    #[test]
    fn explicit_workers_beat_the_default() {
        assert_eq!(ScanOptions { workers: 3, ..Default::default() }.effective_workers(), 3);
        assert!(ScanOptions::default().effective_workers() >= 1);
    }
}
