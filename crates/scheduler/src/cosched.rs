//! Online co-scheduling of concurrent ensembles against live residual
//! capacity — the paper's §7 future work (and the authors' follow-up,
//! "Co-scheduling Ensembles of In Situ Workflows") made operational.
//!
//! Three layers:
//!
//! * [`ResidencyMap`] — per-node committed cores and staging occupancy
//!   across every admitted-but-not-completed job. Reservations open at
//!   admission and close on completion/failure/cancellation; two
//!   conservation counters (`admitted_cores`, `released_cores`) make
//!   leak detection a subtraction.
//! * [`place_against`] — placement of one ensemble shape against the
//!   *remaining* capacity. Candidates come from the same canonical
//!   enumeration the idle-platform scan uses ([`crate::scan`]); each
//!   canonical candidate's virtual nodes are mapped injectively onto
//!   physical nodes by best-fit-decreasing against the residual frees
//!   (exact for this threshold-matching problem: if any injective
//!   mapping fits, best-fit-decreasing finds one — exchange argument),
//!   and the mapped candidate is scored **together with every resident
//!   member** through the closed-form indicator pipeline (Eqs. 5–8),
//!   so co-located members see exactly the interference the model
//!   predicts. Output is deterministic at any worker count: the scan
//!   engine's `(objective desc, enumeration index asc)` total order.
//! * [`CoScheduler`] — the admission loop: a bounded FIFO wait queue
//!   with EASY-style backfill in *virtual time*. Every placed job
//!   carries a deterministic predicted duration (its solo closed-form
//!   makespan); a queued job behind the head may start only if it fits
//!   the residual now **and** either finishes (in predicted time)
//!   before the head's shadow start, or coexists with the head's
//!   shadow placement node-for-node. With completions arriving in
//!   predicted order, the queue head's start and completion times are
//!   bit-identical to plain FIFO — the property
//!   `tests/cosched_properties.rs` checks. A structural (time-free)
//!   backfill rule cannot give that guarantee: any capacity a
//!   backfilled job takes can be exactly what the head needs at some
//!   future drain state.
//!
//! Identical request streams reproduce identical schedules: admission
//! order, tie-breaking, and scoring are all deterministic, and the
//! service journals reservations so replay rebuilds the map.

use std::collections::{BTreeMap, VecDeque};

use ensemble_core::{EnsembleSpec, MemberSpec};
use runtime::{RuntimeError, SimRunConfig};

use crate::enumerate::EnsembleShape;
use crate::fast_eval::FastEvaluator;
use crate::scan::{scan_placements, ScanOptions};
use crate::search::NodeBudget;

/// Errors from residency accounting and co-scheduling.
#[derive(Debug)]
pub enum CoschedError {
    /// A reservation for this job id is already open.
    DuplicateJob(u64),
    /// The reservation does not fit the residual capacity.
    CapacityExceeded {
        /// Node that would be overcommitted.
        node: usize,
        /// Cores the reservation asks of that node.
        requested: u32,
        /// Cores the node has free.
        available: u32,
    },
    /// The job id is neither reserved nor queued.
    UnknownJob(u64),
    /// Candidate evaluation failed.
    Eval(RuntimeError),
}

impl std::fmt::Display for CoschedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoschedError::DuplicateJob(job) => write!(f, "job {job} already holds a reservation"),
            CoschedError::CapacityExceeded { node, requested, available } => {
                write!(f, "node {node}: requested {requested} cores, {available} free")
            }
            CoschedError::UnknownJob(job) => write!(f, "job {job} is not reserved or queued"),
            CoschedError::Eval(e) => write!(f, "candidate evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for CoschedError {}

impl From<RuntimeError> for CoschedError {
    fn from(e: RuntimeError) -> Self {
        CoschedError::Eval(e)
    }
}

/// One open reservation: the physical placement a job was admitted
/// with, plus what it commits per node.
#[derive(Debug, Clone)]
pub struct Reservation {
    /// Job id (unique among open reservations).
    pub job: u64,
    /// The shape the job was submitted with.
    pub shape: EnsembleShape,
    /// Flattened physical node assignment (member-major, sim first).
    pub assignment: Vec<usize>,
    /// Committed cores per physical node.
    pub node_load: Vec<u32>,
    /// Resident components per physical node — the staging-occupancy
    /// proxy (each component stages through its node's memory).
    pub staging: Vec<u32>,
    /// Predicted completion in virtual time (admission time + solo
    /// closed-form makespan) — what backfill reasons about.
    pub predicted_end: f64,
    /// Admission sequence number (monotone; ties in `predicted_end`
    /// drain in admission order).
    pub seq: u64,
}

impl Reservation {
    /// Builds a reservation from its durable fields, recomputing the
    /// per-node load and staging vectors — what a journal replay uses
    /// (the service persists only job/shape/assignment/predicted_end/
    /// seq; the loads are a pure function of shape and assignment).
    pub fn build(
        job: u64,
        shape: EnsembleShape,
        assignment: Vec<usize>,
        nodes: usize,
        predicted_end: f64,
        seq: u64,
    ) -> Reservation {
        let (node_load, staging) = node_loads(&shape, &assignment, nodes);
        Reservation { job, shape, assignment, node_load, staging, predicted_end, seq }
    }
}

/// Computes per-node committed cores and component counts for a shape
/// placed at `assignment` on a platform of `nodes` nodes.
fn node_loads(shape: &EnsembleShape, assignment: &[usize], nodes: usize) -> (Vec<u32>, Vec<u32>) {
    let mut load = vec![0u32; nodes];
    let mut staging = vec![0u32; nodes];
    let mut slot = 0usize;
    for (sim, anas) in &shape.members {
        for &cores in std::iter::once(sim).chain(anas.iter()) {
            let n = assignment[slot];
            load[n] += cores;
            staging[n] += 1;
            slot += 1;
        }
    }
    (load, staging)
}

/// Live per-node residency across all admitted-but-not-completed jobs.
#[derive(Debug, Clone)]
pub struct ResidencyMap {
    budget: NodeBudget,
    committed: Vec<u32>,
    staging: Vec<u32>,
    reservations: BTreeMap<u64, Reservation>,
    admitted_cores: u64,
    released_cores: u64,
}

impl ResidencyMap {
    /// An empty map over `budget.max_nodes` nodes of
    /// `budget.cores_per_node` cores.
    pub fn new(budget: NodeBudget) -> Self {
        ResidencyMap {
            committed: vec![0; budget.max_nodes],
            staging: vec![0; budget.max_nodes],
            reservations: BTreeMap::new(),
            admitted_cores: 0,
            released_cores: 0,
            budget,
        }
    }

    /// The platform the map tracks.
    pub fn budget(&self) -> NodeBudget {
        self.budget
    }

    /// Free cores per node.
    pub fn residual(&self) -> Vec<u32> {
        self.committed.iter().map(|&c| self.budget.cores_per_node - c).collect()
    }

    /// Committed cores per node.
    pub fn committed(&self) -> &[u32] {
        &self.committed
    }

    /// Resident components per node (staging-occupancy proxy).
    pub fn staging(&self) -> &[u32] {
        &self.staging
    }

    /// Opens a reservation. Fails on duplicate job id or any
    /// overcommitted node; on failure the map is unchanged.
    pub fn reserve(&mut self, res: Reservation) -> Result<(), CoschedError> {
        if self.reservations.contains_key(&res.job) {
            return Err(CoschedError::DuplicateJob(res.job));
        }
        for (node, (&load, &used)) in res.node_load.iter().zip(&self.committed).enumerate() {
            let free = self.budget.cores_per_node - used;
            if load > free {
                return Err(CoschedError::CapacityExceeded {
                    node,
                    requested: load,
                    available: free,
                });
            }
        }
        for (c, l) in self.committed.iter_mut().zip(&res.node_load) {
            *c += l;
        }
        for (s, l) in self.staging.iter_mut().zip(&res.staging) {
            *s += l;
        }
        self.admitted_cores += res.node_load.iter().map(|&l| u64::from(l)).sum::<u64>();
        self.reservations.insert(res.job, res);
        Ok(())
    }

    /// Closes a reservation, returning it; `None` if the job id holds
    /// none (release is idempotent by design — completion, failure,
    /// and cancellation paths may race to it).
    pub fn release(&mut self, job: u64) -> Option<Reservation> {
        let res = self.reservations.remove(&job)?;
        for (c, l) in self.committed.iter_mut().zip(&res.node_load) {
            *c -= l;
        }
        for (s, l) in self.staging.iter_mut().zip(&res.staging) {
            *s -= l;
        }
        self.released_cores += res.node_load.iter().map(|&l| u64::from(l)).sum::<u64>();
        Some(res)
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// Open reservations, in job-id order.
    pub fn reservations(&self) -> impl Iterator<Item = &Reservation> {
        self.reservations.values()
    }

    /// Open reservation count.
    pub fn open(&self) -> usize {
        self.reservations.len()
    }

    /// Total committed cores right now.
    pub fn committed_cores(&self) -> u64 {
        self.committed.iter().map(|&c| u64::from(c)).sum()
    }

    /// Core-seconds conservation counter: everything ever admitted.
    pub fn admitted_cores(&self) -> u64 {
        self.admitted_cores
    }

    /// Core-seconds conservation counter: everything ever released.
    /// Invariant: `admitted == released + committed`.
    pub fn released_cores(&self) -> u64 {
        self.released_cores
    }

    /// All resident members, materialized at their physical nodes, in
    /// job-id order — the interference context candidate placements are
    /// scored against.
    pub fn resident_members(&self) -> Vec<MemberSpec> {
        let mut members = Vec::new();
        for res in self.reservations.values() {
            members.extend(res.shape.materialize(&res.assignment).members);
        }
        members
    }

    /// A scoring view of the current state.
    pub fn view(&self) -> ResidualView {
        ResidualView {
            budget: self.budget,
            free: self.residual(),
            residents: self.resident_members(),
        }
    }
}

/// A point-in-time capacity view placements are computed against:
/// per-node free cores plus the resident members that interference
/// scoring must include. Built from a [`ResidencyMap`] (live state) or
/// synthesized (shadow states during backfill checks).
#[derive(Debug, Clone)]
pub struct ResidualView {
    /// The platform.
    pub budget: NodeBudget,
    /// Free cores per node.
    pub free: Vec<u32>,
    /// Members currently resident, at their physical nodes.
    pub residents: Vec<MemberSpec>,
}

impl ResidualView {
    /// An all-free view of `budget` with no residents.
    pub fn empty(budget: NodeBudget) -> Self {
        ResidualView {
            budget,
            free: vec![budget.cores_per_node; budget.max_nodes],
            residents: Vec::new(),
        }
    }
}

/// Where one submitted ensemble was placed, and how the decision
/// ranked.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    /// Flattened physical node assignment (member-major, sim first).
    pub assignment: Vec<usize>,
    /// The canonical (relabeled) form — the enumeration candidate the
    /// physical assignment was mapped from.
    pub canonical: Vec<usize>,
    /// Combined objective `F` over residents + this job — the
    /// interference-aware score the decision maximized.
    pub objective: f64,
    /// Predicted makespan of this job alone at its physical nodes —
    /// the deterministic duration backfill reasons with.
    pub solo_makespan: f64,
    /// Distinct nodes the job occupies.
    pub nodes_used: usize,
    /// Candidates enumerated by the scan.
    pub scanned: usize,
    /// Candidates that fit the residual capacity.
    pub feasible: usize,
}

/// Maps each virtual node of a canonical candidate onto a distinct
/// physical node with enough free cores: virtual nodes in load-desc
/// order (ties: lower id first), each taking the fittable physical
/// node with the least free capacity (ties: lower id first). `None`
/// when no injective mapping exists — and best-fit-decreasing finds a
/// mapping whenever one exists: if the optimal solution gives the
/// largest load some node `f'`, swapping to the smallest feasible `f`
/// frees `f' ≥ f`, which any load previously on `f` also fits.
fn best_fit_mapping(virtual_loads: &[u32], free: &[u32]) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..virtual_loads.len()).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(virtual_loads[v]), v));
    let mut taken = vec![false; free.len()];
    let mut mapping = vec![usize::MAX; virtual_loads.len()];
    for v in order {
        let need = virtual_loads[v];
        let slot = free
            .iter()
            .enumerate()
            .filter(|&(i, &f)| !taken[i] && f >= need)
            .min_by_key(|&(i, &f)| (f, i))
            .map(|(i, _)| i)?;
        taken[slot] = true;
        mapping[v] = slot;
    }
    Some(mapping)
}

/// Per-worker scan state for [`place_against`].
struct PlaceState {
    eval: FastEvaluator,
    residents: Vec<MemberSpec>,
}

/// One surviving candidate of a residual scan.
#[derive(Debug, Clone)]
struct CandidateHit {
    physical: Vec<usize>,
    canonical: Vec<usize>,
    objective: f64,
    nodes_used: usize,
}

/// Places `shape` against the remaining capacity in `view`, scoring
/// every fitting candidate together with the resident members and
/// returning the best (or `None` when nothing fits). Deterministic at
/// any `opts.workers`: candidates are ranked `(combined objective
/// desc, enumeration index asc)` by the scan engine's merge.
pub fn place_against(
    shape: &EnsembleShape,
    view: &ResidualView,
    base: &SimRunConfig,
    opts: &ScanOptions,
) -> Result<Option<PlacementDecision>, CoschedError> {
    let scan_opts = ScanOptions { top_k: 1, ..*opts };
    let free = &view.free;
    let outcome = scan_placements(
        shape,
        view.budget,
        &scan_opts,
        || PlaceState { eval: FastEvaluator::new(base), residents: view.residents.clone() },
        |state: &mut PlaceState,
         _,
         assignment: &[usize]|
         -> Result<Option<CandidateHit>, RuntimeError> {
            let virtual_nodes = assignment.iter().copied().max().map_or(0, |m| m + 1);
            let (vload, _) = node_loads(shape, assignment, virtual_nodes);
            let Some(mapping) = best_fit_mapping(&vload, free) else {
                return Ok(None);
            };
            let physical: Vec<usize> = assignment.iter().map(|&v| mapping[v]).collect();
            let candidate = shape.materialize(&physical);
            let mut members = state.residents.clone();
            members.extend(candidate.members.iter().cloned());
            let combined = EnsembleSpec::new(members);
            let score = state.eval.score(&combined)?;
            Ok(Some(CandidateHit {
                physical,
                canonical: assignment.to_vec(),
                objective: score.objective,
                nodes_used: virtual_nodes,
            }))
        },
        |hit: &CandidateHit| hit.objective,
        || false,
    )?;
    let scanned = outcome.scanned;
    let feasible = outcome.feasible;
    let Some(best) = outcome.results.into_iter().next() else {
        return Ok(None);
    };
    let hit = best.value;
    // The job's own predicted duration: its spec scored alone.
    let solo = FastEvaluator::new(base).score(&shape.materialize(&hit.physical))?;
    Ok(Some(PlacementDecision {
        assignment: hit.physical,
        canonical: hit.canonical,
        objective: hit.objective,
        solo_makespan: solo.ensemble_makespan,
        nodes_used: hit.nodes_used,
        scanned,
        feasible,
    }))
}

/// How an offered job was admitted.
#[derive(Debug, Clone)]
pub enum Admission {
    /// Reserved and ready to run at the decided placement.
    Placed(PlacementDecision),
    /// Waiting in the bounded queue at this depth (0 = head).
    Queued {
        /// Position in the wait queue.
        depth: usize,
    },
    /// The wait queue is full.
    Shed,
    /// The shape cannot fit even an idle platform.
    Infeasible,
}

/// Running totals of the admission loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoschedCounters {
    /// Jobs offered to the scheduler.
    pub submitted: u64,
    /// Jobs placed (immediately or after queueing).
    pub placed: u64,
    /// Jobs that waited in the queue at least once.
    pub queued: u64,
    /// Jobs rejected because the queue was full.
    pub shed: u64,
    /// Jobs rejected as infeasible on an idle platform.
    pub infeasible: u64,
    /// Jobs placed ahead of the queue head by backfill.
    pub backfilled: u64,
    /// Reservations released.
    pub released: u64,
    /// Queued jobs cancelled before placement.
    pub cancelled: u64,
}

/// A job waiting for capacity.
#[derive(Debug, Clone)]
struct Waiting {
    job: u64,
    shape: EnsembleShape,
}

/// Configuration of a [`CoScheduler`].
#[derive(Debug, Clone)]
pub struct CoschedConfig {
    /// The platform to schedule onto.
    pub budget: NodeBudget,
    /// Bounded wait-queue capacity; offers beyond it shed.
    pub queue_capacity: usize,
    /// Allow EASY backfill past the queue head.
    pub backfill: bool,
    /// Scan tuning for placement decisions.
    pub scan: ScanOptions,
}

impl CoschedConfig {
    /// A scheduler over `budget` with a 64-deep queue and backfill on.
    pub fn new(budget: NodeBudget) -> Self {
        CoschedConfig { budget, queue_capacity: 64, backfill: true, scan: ScanOptions::default() }
    }
}

/// The online admission loop: FIFO with EASY backfill, deterministic
/// end to end. Thread-unaware by design — the service wraps it in a
/// mutex and drives it from admission and completion events.
#[derive(Debug, Clone)]
pub struct CoScheduler {
    cfg: CoschedConfig,
    base: SimRunConfig,
    residency: ResidencyMap,
    queue: VecDeque<Waiting>,
    virtual_now: f64,
    next_seq: u64,
    counters: CoschedCounters,
}

impl CoScheduler {
    /// A scheduler placing against `cfg.budget`, scoring candidates
    /// under `base`'s platform and workloads.
    pub fn new(cfg: CoschedConfig, base: SimRunConfig) -> Self {
        CoScheduler {
            residency: ResidencyMap::new(cfg.budget),
            queue: VecDeque::new(),
            virtual_now: 0.0,
            next_seq: 0,
            counters: CoschedCounters::default(),
            cfg,
            base,
        }
    }

    /// The live residency map.
    pub fn residency(&self) -> &ResidencyMap {
        &self.residency
    }

    /// Admission counters.
    pub fn counters(&self) -> CoschedCounters {
        self.counters
    }

    /// Jobs currently waiting.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Virtual clock (max predicted end over released jobs).
    pub fn virtual_now(&self) -> f64 {
        self.virtual_now
    }

    /// True when nothing is resident and nothing is queued.
    pub fn is_idle(&self) -> bool {
        self.residency.is_empty() && self.queue.is_empty()
    }

    /// Offers a job. Places it if capacity allows (directly at the
    /// head of an empty queue, or by backfill past a non-empty one),
    /// otherwise queues or sheds it.
    pub fn submit(&mut self, job: u64, shape: EnsembleShape) -> Result<Admission, CoschedError> {
        self.counters.submitted += 1;
        if self.queue.is_empty() {
            if let Some(decision) = self.try_place(job, &shape, false)? {
                return Ok(Admission::Placed(decision));
            }
        } else if self.cfg.backfill {
            if let Some(decision) = self.try_backfill(job, &shape)? {
                return Ok(Admission::Placed(decision));
            }
        }
        // Never enqueue a job that cannot fit even an idle platform.
        if place_against(&shape, &ResidualView::empty(self.cfg.budget), &self.base, &self.cfg.scan)?
            .is_none()
        {
            self.counters.infeasible += 1;
            return Ok(Admission::Infeasible);
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            self.counters.shed += 1;
            return Ok(Admission::Shed);
        }
        self.queue.push_back(Waiting { job, shape });
        self.counters.queued += 1;
        Ok(Admission::Queued { depth: self.queue.len() - 1 })
    }

    /// Releases `job`'s reservation (completion, failure, or
    /// cancellation of a running job) and drains the queue: the head
    /// first, then — if backfill is on — later jobs that pass the
    /// backfill test. Returns every job started by this event, in
    /// start order. Idempotent for unknown jobs.
    pub fn release(&mut self, job: u64) -> Result<Vec<(u64, PlacementDecision)>, CoschedError> {
        if let Some(res) = self.residency.release(job) {
            self.counters.released += 1;
            if res.predicted_end > self.virtual_now {
                self.virtual_now = res.predicted_end;
            }
        }
        self.pump()
    }

    /// Rolls back a placement that was never started (e.g. the
    /// execution pool refused the job right after admission): the
    /// reservation closes, but — unlike [`CoScheduler::release`] — the
    /// virtual clock does not advance and the queue is not pumped, so
    /// the withdrawal is invisible to later scheduling decisions.
    /// Returns false if the job holds no reservation.
    pub fn withdraw(&mut self, job: u64) -> bool {
        let withdrawn = self.residency.release(job).is_some();
        if withdrawn {
            self.counters.released += 1;
        }
        withdrawn
    }

    /// Removes a queued job before placement (client cancellation or
    /// deadline expiry). Returns false if the job is not queued.
    pub fn cancel_queued(&mut self, job: u64) -> bool {
        let before = self.queue.len();
        self.queue.retain(|w| w.job != job);
        let removed = self.queue.len() < before;
        if removed {
            self.counters.cancelled += 1;
        }
        removed
    }

    /// Restores a reservation during journal replay — capacity is
    /// committed without a scheduling decision. The virtual clock
    /// advances to cover the restored job's predicted end so
    /// post-restart admissions reason about it correctly.
    pub fn restore(&mut self, res: Reservation) -> Result<(), CoschedError> {
        if res.predicted_end > self.virtual_now {
            self.virtual_now = res.predicted_end;
        }
        if res.seq >= self.next_seq {
            self.next_seq = res.seq + 1;
        }
        self.residency.reserve(res)
    }

    /// Drains the queue as far as capacity allows: head first, then
    /// backfill. Public so the service can pump after replay.
    pub fn pump(&mut self) -> Result<Vec<(u64, PlacementDecision)>, CoschedError> {
        let mut started = Vec::new();
        loop {
            // The head gets strict priority.
            if let Some(head) = self.queue.front().cloned() {
                if let Some(decision) = self.try_place(head.job, &head.shape, false)? {
                    self.queue.pop_front();
                    started.push((head.job, decision));
                    continue;
                }
            } else {
                break;
            }
            if !self.cfg.backfill {
                break;
            }
            // Head blocked: scan the rest of the queue in FIFO order
            // for the first job that passes the backfill test, place
            // it, and re-run the loop (capacity changed).
            let mut placed = None;
            for i in 1..self.queue.len() {
                let w = self.queue[i].clone();
                if let Some(decision) = self.try_backfill(w.job, &w.shape)? {
                    placed = Some((i, w.job, decision));
                    break;
                }
            }
            match placed {
                Some((i, job, decision)) => {
                    self.queue.remove(i);
                    started.push((job, decision));
                }
                None => break,
            }
        }
        Ok(started)
    }

    /// Places `job` against the current residual if it fits, opening
    /// its reservation.
    fn try_place(
        &mut self,
        job: u64,
        shape: &EnsembleShape,
        backfilled: bool,
    ) -> Result<Option<PlacementDecision>, CoschedError> {
        let view = self.residency.view();
        let Some(decision) = place_against(shape, &view, &self.base, &self.cfg.scan)? else {
            return Ok(None);
        };
        let (node_load, staging) =
            node_loads(shape, &decision.assignment, self.cfg.budget.max_nodes);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.residency.reserve(Reservation {
            job,
            shape: shape.clone(),
            assignment: decision.assignment.clone(),
            node_load,
            staging,
            predicted_end: self.virtual_now + decision.solo_makespan,
            seq,
        })?;
        self.counters.placed += 1;
        if backfilled {
            self.counters.backfilled += 1;
        }
        Ok(Some(decision))
    }

    /// EASY backfill test for a job behind a blocked head: the job
    /// must fit the residual now, and must either (by predicted time)
    /// finish before the head's shadow start, or leave the head's
    /// shadow placement intact node-for-node.
    fn try_backfill(
        &mut self,
        job: u64,
        shape: &EnsembleShape,
    ) -> Result<Option<PlacementDecision>, CoschedError> {
        let head = match self.queue.front() {
            Some(h) => h.clone(),
            None => return Ok(None),
        };
        let view = self.residency.view();
        let Some(candidate) = place_against(shape, &view, &self.base, &self.cfg.scan)? else {
            return Ok(None);
        };
        let Some(shadow) = self.head_shadow(&head.shape)? else {
            // Head feasible now — pump will place it; don't jump it.
            return Ok(None);
        };
        let ends_before_shadow =
            self.virtual_now + candidate.solo_makespan <= shadow.start_at + 1e-9;
        if !ends_before_shadow {
            // The candidate outlives the shadow start: it must coexist
            // with the head's shadow placement on every node.
            let (cand_load, _) =
                node_loads(shape, &candidate.assignment, self.cfg.budget.max_nodes);
            let fits = cand_load
                .iter()
                .zip(&shadow.head_load)
                .zip(&shadow.free)
                .all(|((&c, &h), &f)| c + h <= f);
            if !fits {
                return Ok(None);
            }
        }
        self.try_place(job, shape, true)
    }

    /// The head's shadow: drain open reservations in predicted-end
    /// order until the head fits, and pin the placement it gets there.
    /// `None` when the head already fits the live residual.
    fn head_shadow(&self, head_shape: &EnsembleShape) -> Result<Option<HeadShadow>, CoschedError> {
        let mut order: Vec<&Reservation> = self.residency.reservations().collect();
        order.sort_by(|a, b| a.predicted_end.total_cmp(&b.predicted_end).then(a.seq.cmp(&b.seq)));
        let mut free = self.residency.residual();
        let mut remaining: Vec<&Reservation> = order.clone();
        let mut start_at = self.virtual_now;
        for k in 0..=order.len() {
            if k > 0 {
                let drained = order[k - 1];
                for (f, l) in free.iter_mut().zip(&drained.node_load) {
                    *f += l;
                }
                remaining.retain(|r| r.seq != drained.seq);
                start_at = drained.predicted_end.max(start_at);
            }
            let residents: Vec<MemberSpec> =
                remaining.iter().flat_map(|r| r.shape.materialize(&r.assignment).members).collect();
            let view = ResidualView { budget: self.cfg.budget, free: free.clone(), residents };
            if let Some(decision) = place_against(head_shape, &view, &self.base, &self.cfg.scan)? {
                if k == 0 {
                    return Ok(None);
                }
                let (head_load, _) =
                    node_loads(head_shape, &decision.assignment, self.cfg.budget.max_nodes);
                return Ok(Some(HeadShadow { start_at, free, head_load }));
            }
        }
        // Queued jobs are idle-platform feasible, so the full drain
        // always fits; unreachable, but fail safe (no backfill).
        Ok(Some(HeadShadow {
            start_at: f64::INFINITY,
            free: vec![0; self.cfg.budget.max_nodes],
            head_load: vec![0; self.cfg.budget.max_nodes],
        }))
    }
}

/// The head's pinned future placement during a backfill check.
struct HeadShadow {
    /// Virtual time the head is predicted to start.
    start_at: f64,
    /// Free cores per node at that point (without the backfill
    /// candidate).
    free: Vec<u32>,
    /// Cores per node the head's shadow placement takes.
    head_load: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::WorkloadMap;

    fn budget(nodes: usize) -> NodeBudget {
        NodeBudget { max_nodes: nodes, cores_per_node: 32 }
    }

    fn base(shape: &EnsembleShape) -> SimRunConfig {
        let placeholder = shape.materialize(&vec![0; shape.num_components()]);
        let mut cfg = SimRunConfig::paper(placeholder);
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 6;
        cfg
    }

    fn member(sim: u32, ana: u32) -> EnsembleShape {
        EnsembleShape::uniform(1, sim, 1, ana)
    }

    fn sched(nodes: usize) -> CoScheduler {
        let shape = member(16, 8);
        CoScheduler::new(CoschedConfig::new(budget(nodes)), base(&shape))
    }

    fn placed(adm: Admission) -> PlacementDecision {
        match adm {
            Admission::Placed(d) => d,
            other => panic!("expected placement, got {other:?}"),
        }
    }

    #[test]
    fn best_fit_mapping_is_exact_and_deterministic() {
        // Loads [20, 10] onto frees [12, 32, 20]: 20 → node 2 (exact
        // fit), 10 → node 0 (smallest that fits).
        assert_eq!(best_fit_mapping(&[20, 10], &[12, 32, 20]), Some(vec![2, 0]));
        // No injective fit: two 20s into one big node.
        assert_eq!(best_fit_mapping(&[20, 20], &[32, 12]), None);
        // Sorted-desc element-wise fit exists → mapping found.
        assert_eq!(best_fit_mapping(&[8, 8, 8], &[8, 8, 8]), Some(vec![0, 1, 2]));
    }

    #[test]
    fn residency_conserves_cores() {
        let mut map = ResidencyMap::new(budget(3));
        let shape = member(16, 8);
        let (node_load, staging) = node_loads(&shape, &[0, 0], 3);
        map.reserve(Reservation {
            job: 1,
            shape: shape.clone(),
            assignment: vec![0, 0],
            node_load,
            staging,
            predicted_end: 1.0,
            seq: 0,
        })
        .unwrap();
        assert_eq!(map.committed_cores(), 24);
        assert_eq!(map.admitted_cores(), 24);
        assert_eq!(map.released_cores(), 0);
        assert!(map.release(1).is_some());
        assert!(map.release(1).is_none(), "release is idempotent");
        assert!(map.is_empty());
        assert_eq!(map.admitted_cores(), map.released_cores());
    }

    #[test]
    fn reserve_rejects_overcommit_and_duplicates() {
        let mut map = ResidencyMap::new(budget(1));
        let shape = member(16, 8);
        let (node_load, staging) = node_loads(&shape, &[0, 0], 1);
        let res = Reservation {
            job: 7,
            shape,
            assignment: vec![0, 0],
            node_load: node_load.clone(),
            staging: staging.clone(),
            predicted_end: 1.0,
            seq: 0,
        };
        map.reserve(res.clone()).unwrap();
        assert!(matches!(map.reserve(res.clone()), Err(CoschedError::DuplicateJob(7))));
        let mut big = res;
        big.job = 8;
        big.node_load = vec![16];
        assert!(matches!(map.reserve(big), Err(CoschedError::CapacityExceeded { .. })));
        // Failed reserves leave the map unchanged.
        assert_eq!(map.committed_cores(), 24);
    }

    #[test]
    fn concurrent_placements_never_overlap() {
        let mut s = sched(2);
        let shape = member(16, 8);
        let d1 = placed(s.submit(1, shape.clone()).unwrap());
        let d2 = placed(s.submit(2, shape.clone()).unwrap());
        // 24 cores each on 32-core nodes: each job gets its own node.
        let n1: std::collections::BTreeSet<_> = d1.assignment.iter().collect();
        let n2: std::collections::BTreeSet<_> = d2.assignment.iter().collect();
        assert!(n1.is_disjoint(&n2), "{:?} vs {:?}", d1.assignment, d2.assignment);
        for free in s.residency().residual() {
            assert_eq!(free, 8);
        }
    }

    #[test]
    fn full_platform_queues_then_drains_fifo() {
        let mut s = sched(2);
        let shape = member(16, 8);
        placed(s.submit(1, shape.clone()).unwrap());
        placed(s.submit(2, shape.clone()).unwrap());
        assert!(matches!(s.submit(3, shape.clone()).unwrap(), Admission::Queued { depth: 0 }));
        assert!(matches!(s.submit(4, shape.clone()).unwrap(), Admission::Queued { depth: 1 }));
        let started = s.release(1).unwrap();
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].0, 3, "FIFO: job 3 before job 4");
        let started = s.release(2).unwrap();
        assert_eq!(started[0].0, 4);
        s.release(3).unwrap();
        s.release(4).unwrap();
        assert!(s.residency().is_empty(), "map must drain to empty");
        assert_eq!(s.residency().admitted_cores(), s.residency().released_cores());
    }

    #[test]
    fn infeasible_shapes_are_rejected_not_queued() {
        let mut s = sched(1);
        let too_big = EnsembleShape::uniform(2, 16, 1, 8); // 48 > 32
        assert!(matches!(s.submit(1, too_big).unwrap(), Admission::Infeasible));
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn bounded_queue_sheds() {
        let shape = member(16, 8);
        let mut s = CoScheduler::new(
            CoschedConfig { queue_capacity: 1, ..CoschedConfig::new(budget(1)) },
            base(&shape),
        );
        placed(s.submit(1, shape.clone()).unwrap());
        assert!(matches!(s.submit(2, shape.clone()).unwrap(), Admission::Queued { .. }));
        assert!(matches!(s.submit(3, shape.clone()).unwrap(), Admission::Shed));
        assert_eq!(s.counters().shed, 1);
    }

    #[test]
    fn cancel_queued_releases_no_capacity() {
        let mut s = sched(1);
        let shape = member(16, 8);
        placed(s.submit(1, shape.clone()).unwrap());
        assert!(matches!(s.submit(2, shape.clone()).unwrap(), Admission::Queued { .. }));
        assert!(s.cancel_queued(2));
        assert!(!s.cancel_queued(2));
        let started = s.release(1).unwrap();
        assert!(started.is_empty(), "cancelled job must not start");
        assert!(s.is_idle());
    }

    #[test]
    fn backfill_starts_a_small_job_that_fits_beside_the_shadow() {
        // Node 0 busy with a 24-core job; head wants two nodes'
        // worth (two members), blocked; a small 1-member job fits the
        // idle node 1 and coexists with the head's shadow (which
        // reuses node 0's capacity plus node 1's remainder? no: the
        // head's shadow starts after job 1 drains, and the small job
        // coexists only if shadow loads + its own fit every node).
        let shape_small = member(8, 4);
        let shape_big = EnsembleShape::uniform(2, 16, 1, 8);
        let mut s = sched(2);
        placed(s.submit(1, member(16, 8)).unwrap()); // 24 on node 0
        placed(s.submit(2, member(16, 8)).unwrap()); // 24 on node 1
        assert!(matches!(s.submit(3, shape_big.clone()).unwrap(), Admission::Queued { .. }));
        // 12 cores fit the 8+8 residual? No: 12 > 8 per node. Use a
        // genuinely small job that fits one node's 8 free cores.
        let tiny = EnsembleShape::uniform(1, 4, 1, 4);
        match s.submit(4, tiny).unwrap() {
            Admission::Placed(_) => {
                assert_eq!(s.counters().backfilled, 1);
            }
            Admission::Queued { .. } => {
                // Backfill declined: the tiny job would collide with
                // the head's shadow. Either is deterministic; what
                // matters is it never displaces the head.
            }
            other => panic!("unexpected admission {other:?}"),
        }
        let _ = shape_small;
        // Drain everything; the map must come back empty.
        for job in [1u64, 2, 3, 4] {
            let _ = s.release(job).unwrap();
        }
        while !s.residency().is_empty() {
            let open: Vec<u64> = s.residency().reservations().map(|r| r.job).collect();
            for job in open {
                let _ = s.release(job).unwrap();
            }
        }
        assert!(s.is_idle());
    }

    #[test]
    fn identical_streams_reproduce_identical_schedules() {
        let shape = member(16, 8);
        let drive = || {
            let mut s = sched(2);
            let mut log: Vec<(u64, Vec<usize>, u64)> = Vec::new();
            for job in 1..=4u64 {
                if let Admission::Placed(d) = s.submit(job, shape.clone()).unwrap() {
                    log.push((job, d.assignment, d.objective.to_bits()));
                }
            }
            for job in 1..=4u64 {
                for (j, d) in s.release(job).unwrap() {
                    log.push((j, d.assignment, d.objective.to_bits()));
                }
            }
            log
        };
        assert_eq!(drive(), drive(), "same stream, same schedule, bit for bit");
    }

    #[test]
    fn placement_scores_include_resident_interference() {
        // With a resident on node 0, a new job's best placement avoids
        // node 0 when an idle node exists.
        let mut s = sched(2);
        let shape = member(16, 8);
        let d1 = placed(s.submit(1, shape.clone()).unwrap());
        let d2 = placed(s.submit(2, shape.clone()).unwrap());
        let n1: std::collections::BTreeSet<_> = d1.assignment.iter().copied().collect();
        assert!(d2.assignment.iter().all(|n| !n1.contains(n)));
    }

    #[test]
    fn restore_rebuilds_capacity_for_new_admissions() {
        let mut s = sched(2);
        let shape = member(16, 8);
        let (node_load, staging) = node_loads(&shape, &[0, 0], 2);
        s.restore(Reservation {
            job: 9,
            shape: shape.clone(),
            assignment: vec![0, 0],
            node_load,
            staging,
            predicted_end: 5.0,
            seq: 3,
        })
        .unwrap();
        assert_eq!(s.virtual_now(), 5.0);
        let d = placed(s.submit(10, shape.clone()).unwrap());
        assert!(d.assignment.iter().all(|&n| n == 1), "restored node 0 is occupied");
    }
}
