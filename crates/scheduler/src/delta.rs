//! Delta evaluation: incremental per-node scoring with bit-identical
//! results.
//!
//! The closed-form score of a placement ([`crate::fast_eval`] →
//! `runtime::predict`) re-derives everything per candidate: spec
//! validation, a fresh `Platform`, two `HashMap<ComponentRef, …>`
//! allocations, and an interference solve for every node. But the model
//! is **node-local** — members interact only through node co-residency —
//! and every search entry point feeds the evaluator candidates that
//! barely differ: [`crate::enumerate::PlacementIter`] emits candidates
//! in recursive enumeration order (successive candidates share long
//! placement prefixes), and annealing moves touch a single component.
//!
//! [`DeltaEvaluator`] exploits both:
//!
//! * **Per-node solve memoization.** The interference solve of a node is
//!   a pure function of the *ordered* sequence of `(workload, cores)`
//!   resident on it — ordered, because the executor allocates cores in
//!   flat component order and the socket split of each allocation
//!   depends on what was placed before it on the same node, and because
//!   the solver's floating-point sums run in placement order. Solves are
//!   cached under that sequence (the occupancy signature); a candidate
//!   that differs from its predecessor only in a suffix re-solves only
//!   the nodes whose occupancy changed, and signature collisions across
//!   candidates (same resident sequence built from different member
//!   identities) reuse the solve outright.
//! * **Per-member memoization.** Stage times, efficiency `E` (Eq. 3),
//!   the placement indicator `CP` (Eq. 6), the member makespan
//!   (Eqs. 1–2), and the Eq. 4 check are cached per member and
//!   recomputed only for members with a component on a touched node.
//! * **Structure-of-arrays candidate state.** Flat `Vec`s indexed by
//!   component index replace the per-candidate hash maps of the
//!   from-scratch path; steady-state evaluation allocates nothing.
//!
//! **Bit-identity.** The from-scratch result is reproduced exactly — not
//! approximately — because the evaluator memoizes exactly the values the
//! from-scratch path computes (per-component `seconds_per_step` out of
//! the identical `solve_node` call, stage times out of the identical
//! staging-cost calls) and re-folds the final objective with the same
//! shared functions (`indicator`, `aggregate`, `sigma_star`, `makespan`,
//! `efficiency`) over all members in member order on every call. No
//! running-sum or algebraic shortcut is taken anywhere: `F(P)` is
//! recomputed from the (mostly cached) per-member values with the exact
//! op sequence of [`ensemble_core::aggregate`]. The O(members) re-fold
//! is cheap; the savings come from skipping the interference solves and
//! stage-time derivations, which dominate.

use std::collections::{HashMap, VecDeque};

use dtl::transport::StagingCostModel;
use ensemble_core::{
    aggregate, efficiency, indicator, makespan, Aggregation, AnalysisStageTimes, ComponentRef,
    IndicatorPath, MemberInputs, MemberStageTimes,
};
use hpc_platform::{
    BindPolicy, CoreAllocation, InterferenceModel, NodeSpec, PlacedWorkload, PlatformError,
    Workload,
};
use runtime::{RuntimeError, RuntimeResult, SimRunConfig};

use crate::enumerate::EnsembleShape;
use crate::fast_eval::FastScore;

/// Default bound on resident per-node solves. Exhaustive scans of the
/// paper's spaces produce a few dozen distinct signatures; annealing
/// over large ensembles a few hundred. The bound only caps memory —
/// eviction never changes results (evicted signatures simply re-solve).
pub const DEFAULT_SOLVE_CACHE_CAPACITY: usize = 1024;

/// Cache-effectiveness counters of a [`DeltaEvaluator`] (or an entire
/// scan — see [`crate::scan::ScanOutcome::delta`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCounters {
    /// Node solves answered from the occupancy-signature cache.
    pub solve_hits: u64,
    /// Node solves that ran the interference fixed point.
    pub solve_misses: u64,
    /// Members whose indicator terms were recomputed (vs served from
    /// the per-member cache).
    pub members_recomputed: u64,
}

impl DeltaCounters {
    /// Folds another counter set into this one.
    pub fn absorb(&mut self, other: DeltaCounters) {
        self.solve_hits += other.solve_hits;
        self.solve_misses += other.solve_misses;
        self.members_recomputed += other.members_recomputed;
    }

    /// Solve-cache hit rate in `[0, 1]` (zero before any solve).
    pub fn solve_hit_rate(&self) -> f64 {
        let total = self.solve_hits + self.solve_misses;
        if total == 0 {
            0.0
        } else {
            self.solve_hits as f64 / total as f64
        }
    }
}

/// Incremental placement evaluator producing scores bit-identical to
/// [`crate::fast_eval::FastEvaluator`] over the same base configuration
/// and shape.
///
/// Built once per worker (like `FastEvaluator`), then fed assignments —
/// flattened node indexes in the shape's component order, exactly what
/// [`crate::enumerate::PlacementIter`] yields and
/// [`EnsembleShape::materialize`] consumes. No `EnsembleSpec` is
/// materialized per candidate.
#[derive(Debug, Clone)]
pub struct DeltaEvaluator {
    // --- captured from the base configuration -------------------------
    node_spec: NodeSpec,
    interference: InterferenceModel,
    cost: StagingCostModel,
    chunk: u64,
    n_steps: u64,
    force_remote_reads: bool,
    bind_policy: BindPolicy,
    uap: IndicatorPath,
    // --- derived from the shape (fixed per evaluator) ------------------
    comp_cores: Vec<u32>,
    /// Index into `workloads` per component.
    comp_workload: Vec<u16>,
    /// Deduplicated workload profiles.
    workloads: Vec<Workload>,
    /// Owning member per component.
    comp_member: Vec<usize>,
    /// Flat `[start, end)` component range per member (`start` = sim).
    member_range: Vec<(usize, usize)>,
    member_cores: Vec<u32>,
    // --- candidate state (structure of arrays) -------------------------
    prev: Vec<usize>,
    has_prev: bool,
    /// Per node: resident components in flat order.
    node_comps: Vec<Vec<usize>>,
    comp_seconds: Vec<f64>,
    member_stage: Vec<MemberStageTimes>,
    member_eff: Vec<f64>,
    member_cp: Vec<f64>,
    member_mk: Vec<f64>,
    member_eq4: Vec<bool>,
    // --- reusable scratch ----------------------------------------------
    values: Vec<f64>,
    touched: Vec<bool>,
    touched_list: Vec<usize>,
    member_dirty: Vec<bool>,
    node_seen: Vec<bool>,
    sig: Vec<u32>,
    free_scratch: Vec<u32>,
    placed_scratch: Vec<PlacedWorkload>,
    // --- occupancy-signature solve cache -------------------------------
    cache: HashMap<Box<[u32]>, Vec<f64>>,
    order: VecDeque<Box<[u32]>>,
    capacity: usize,
    counters: DeltaCounters,
}

impl DeltaEvaluator {
    /// Captures `base`'s platform model and `shape`'s structure with the
    /// default solve-cache bound.
    pub fn new(base: &SimRunConfig, shape: &EnsembleShape) -> Self {
        Self::with_cache_capacity(base, shape, DEFAULT_SOLVE_CACHE_CAPACITY)
    }

    /// [`DeltaEvaluator::new`] with an explicit solve-cache capacity
    /// (`0` disables solve caching entirely; results are unaffected
    /// either way).
    pub fn with_cache_capacity(
        base: &SimRunConfig,
        shape: &EnsembleShape,
        capacity: usize,
    ) -> Self {
        let mut comp_cores = Vec::with_capacity(shape.num_components());
        let mut comp_workload = Vec::with_capacity(shape.num_components());
        let mut workloads: Vec<Workload> = Vec::new();
        let mut comp_member = Vec::with_capacity(shape.num_components());
        let mut member_range = Vec::with_capacity(shape.members.len());
        let mut member_cores = Vec::with_capacity(shape.members.len());
        let mut member_stage = Vec::with_capacity(shape.members.len());
        for (i, (sim_cores, anas)) in shape.members.iter().enumerate() {
            let start = comp_cores.len();
            for (slot, &cores) in std::iter::once(sim_cores).chain(anas.iter()).enumerate() {
                let cref = if slot == 0 {
                    ComponentRef::simulation(i)
                } else {
                    ComponentRef::analysis(i, slot)
                };
                let workload = base.workloads.workload_for(cref);
                let wid = match workloads.iter().position(|w| w == workload) {
                    Some(id) => id,
                    None => {
                        workloads.push(workload.clone());
                        workloads.len() - 1
                    }
                };
                assert!(wid < usize::from(u16::MAX), "too many distinct workloads");
                assert!(cores <= u32::from(u16::MAX), "component cores exceed signature packing");
                comp_cores.push(cores);
                comp_workload.push(wid as u16);
                comp_member.push(i);
            }
            member_range.push((start, comp_cores.len()));
            member_cores.push(sim_cores + anas.iter().sum::<u32>());
            member_stage.push(MemberStageTimes {
                s: 0.0,
                w: 0.0,
                analyses: vec![AnalysisStageTimes { r: 0.0, a: 0.0 }; anas.len()],
            });
        }
        let n = comp_cores.len();
        let members = shape.members.len();
        DeltaEvaluator {
            node_spec: base.node_spec.clone(),
            interference: base.interference.clone(),
            cost: StagingCostModel::from_platform(&base.node_spec, &base.network),
            chunk: base.workloads.chunk_bytes,
            n_steps: base.n_steps,
            force_remote_reads: base.force_remote_reads,
            bind_policy: base.bind_policy,
            uap: IndicatorPath::uap(),
            comp_cores,
            comp_workload,
            workloads,
            comp_member,
            member_range,
            member_cores,
            prev: Vec::with_capacity(n),
            has_prev: false,
            node_comps: Vec::new(),
            comp_seconds: vec![0.0; n],
            member_stage,
            member_eff: vec![0.0; members],
            member_cp: vec![0.0; members],
            member_mk: vec![0.0; members],
            member_eq4: vec![false; members],
            values: Vec::with_capacity(members),
            touched: Vec::new(),
            touched_list: Vec::new(),
            member_dirty: vec![false; members],
            node_seen: Vec::new(),
            sig: Vec::new(),
            free_scratch: Vec::new(),
            placed_scratch: Vec::new(),
            cache: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            counters: DeltaCounters::default(),
        }
    }

    /// Cache-effectiveness counters accumulated since construction (or
    /// the last [`DeltaEvaluator::take_counters`]).
    pub fn counters(&self) -> DeltaCounters {
        self.counters
    }

    /// Returns and resets the counters (used by the scan engine to fold
    /// per-worker counters into the outcome).
    pub fn take_counters(&mut self) -> DeltaCounters {
        std::mem::take(&mut self.counters)
    }

    /// Distinct occupancy signatures currently memoized.
    pub fn cached_solves(&self) -> usize {
        self.cache.len()
    }

    /// Scores one assignment, diffing against the previously scored one
    /// (if any) to find the touched nodes itself.
    pub fn score(&mut self, assignment: &[usize]) -> RuntimeResult<FastScore> {
        self.score_delta(assignment, None)
    }

    /// [`DeltaEvaluator::score`] with a first-changed-position hint:
    /// `Some(h)` promises `assignment[..h]` equals the previously scored
    /// assignment's prefix (what
    /// [`crate::enumerate::PlacementIter::next_chunk_delta`] reports for
    /// consecutive candidates). The hint only narrows the diff — all
    /// positions `≥ h` are still compared — so a conservative hint is
    /// merely slower, never wrong.
    pub fn score_delta(
        &mut self,
        assignment: &[usize],
        first_changed: Option<usize>,
    ) -> RuntimeResult<FastScore> {
        let n = self.comp_cores.len();
        assert_eq!(assignment.len(), n, "assignment length must match the shape");
        if self.n_steps == 0 || n == 0 {
            return Err(RuntimeError::NoSamples);
        }
        let max_node = assignment.iter().copied().max().expect("non-empty") + 1;
        self.ensure_nodes(max_node);

        // Phase 1: find touched nodes and rebuild their resident lists.
        // On any error below the evaluator stays poisoned (`has_prev`
        // false) and the next call rebuilds from scratch.
        let had_prev = self.has_prev;
        self.has_prev = false;
        self.touched_list.clear();
        if had_prev {
            let start = first_changed.unwrap_or(0);
            debug_assert_eq!(
                self.prev[..start.min(n)],
                assignment[..start.min(n)],
                "first-changed hint must not skip a real change"
            );
            for (p, &new) in assignment.iter().enumerate().skip(start) {
                let old = self.prev[p];
                if old != new {
                    if !self.touched[old] {
                        self.touched[old] = true;
                        self.touched_list.push(old);
                    }
                    if !self.touched[new] {
                        self.touched[new] = true;
                        self.touched_list.push(new);
                    }
                }
            }
            for &nd in &self.touched_list {
                self.node_comps[nd].clear();
            }
            if !self.touched_list.is_empty() {
                for (c, &nd) in assignment.iter().enumerate() {
                    if self.touched[nd] {
                        self.node_comps[nd].push(c);
                    }
                }
            }
            for &nd in &self.touched_list {
                for i in self.node_comps[nd].iter().map(|&c| self.comp_member[c]) {
                    self.member_dirty[i] = true;
                }
            }
            // Members that vacated a touched node entirely still need a
            // recompute (their network costs may depend on the nodes
            // they left only through their own components — covered —
            // but their components' *new* nodes are touched too, so the
            // loop above already marked them).
        } else {
            // Full rebuild (first score, or recovery after an error).
            // A previous call may have errored mid-solve, leaving stale
            // `touched` marks — reset them so no node is skipped.
            self.touched.iter_mut().for_each(|t| *t = false);
            for list in &mut self.node_comps {
                list.clear();
            }
            for (c, &nd) in assignment.iter().enumerate() {
                self.node_comps[nd].push(c);
                if !self.touched[nd] {
                    self.touched[nd] = true;
                    self.touched_list.push(nd);
                }
            }
            self.member_dirty.iter_mut().for_each(|d| *d = true);
        }
        self.touched_list.sort_unstable();

        // Phase 2: solve touched nodes (memoized by occupancy
        // signature), refreshing per-component step times.
        for t in 0..self.touched_list.len() {
            let nd = self.touched_list[t];
            self.touched[nd] = false;
            if self.node_comps[nd].is_empty() {
                continue;
            }
            self.solve_touched_node(nd)?;
        }

        // Phase 3: recompute the indicator terms of dirty members.
        for i in 0..self.member_range.len() {
            if !self.member_dirty[i] {
                continue;
            }
            self.recompute_member(i, assignment)?;
            self.member_dirty[i] = false;
            self.counters.members_recomputed += 1;
        }

        // Commit the candidate — all fallible work is done.
        self.prev.clear();
        self.prev.extend_from_slice(assignment);
        self.has_prev = true;

        // Phase 4: re-fold the ensemble aggregates exactly as the
        // from-scratch path does — same functions, same member order.
        let mut m_nodes = 0usize;
        for &nd in assignment {
            if !self.node_seen[nd] {
                self.node_seen[nd] = true;
                m_nodes += 1;
            }
        }
        for &nd in assignment {
            self.node_seen[nd] = false;
        }
        self.values.clear();
        for i in 0..self.member_range.len() {
            let inputs = MemberInputs {
                efficiency: self.member_eff[i],
                cores: self.member_cores[i],
                cp: self.member_cp[i],
                ensemble_nodes: m_nodes,
            };
            self.values.push(indicator(&inputs, &self.uap));
        }
        let mut ensemble_makespan = 0.0f64;
        for &mk in &self.member_mk {
            ensemble_makespan = ensemble_makespan.max(mk);
        }
        Ok(FastScore {
            objective: aggregate(&self.values, Aggregation::MeanMinusStd),
            ensemble_makespan,
            nodes_used: m_nodes,
            eq4_satisfied: self.member_eq4.iter().all(|&b| b),
        })
    }

    /// Solves node `nd`'s current resident list, via the signature cache
    /// when possible, writing per-component step times.
    fn solve_touched_node(&mut self, nd: usize) -> RuntimeResult<()> {
        self.sig.clear();
        for &c in &self.node_comps[nd] {
            self.sig.push(u32::from(self.comp_workload[c]) << 16 | self.comp_cores[c]);
        }
        if let Some(seconds) = self.cache.get(self.sig.as_slice()) {
            self.counters.solve_hits += 1;
            for (&c, &s) in self.node_comps[nd].iter().zip(seconds) {
                self.comp_seconds[c] = s;
            }
            return Ok(());
        }
        self.counters.solve_misses += 1;

        // Replay the executor's allocation protocol for this node: flat
        // component order, shared free-core state, the exact
        // Spread/Compact socket split of `Platform::allocate`.
        let sockets = self.node_spec.sockets as usize;
        self.free_scratch.clear();
        self.free_scratch.extend(std::iter::repeat_n(self.node_spec.cores_per_socket, sockets));
        self.placed_scratch.clear();
        for &c in &self.node_comps[nd] {
            let cores = self.comp_cores[c];
            if cores == 0 {
                return Err(PlatformError::EmptyAllocation.into());
            }
            let available: u32 = self.free_scratch.iter().sum();
            if cores > available {
                return Err(PlatformError::InsufficientCores {
                    node: nd,
                    requested: cores,
                    available,
                }
                .into());
            }
            let mut per_socket = vec![0u32; sockets];
            let mut remaining = cores;
            match self.bind_policy {
                BindPolicy::Spread => {
                    let mut s = 0usize;
                    while remaining > 0 {
                        if self.free_scratch[s] > per_socket[s] {
                            per_socket[s] += 1;
                            remaining -= 1;
                        }
                        s = (s + 1) % sockets;
                    }
                }
                BindPolicy::Compact => {
                    for (slot, &free) in per_socket.iter_mut().zip(&self.free_scratch) {
                        let take = remaining.min(free);
                        *slot = take;
                        remaining -= take;
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            for (s, taken) in per_socket.iter().enumerate() {
                self.free_scratch[s] -= taken;
            }
            self.placed_scratch.push(PlacedWorkload {
                alloc: CoreAllocation { node: nd, per_socket },
                workload: self.workloads[usize::from(self.comp_workload[c])].clone(),
            });
        }
        let estimates = self.interference.solve_node(&self.node_spec, &self.placed_scratch, &[]);
        let seconds: Vec<f64> = estimates.iter().map(|e| e.seconds_per_step).collect();
        for (&c, &s) in self.node_comps[nd].iter().zip(&seconds) {
            self.comp_seconds[c] = s;
        }
        if self.capacity > 0 {
            if self.cache.len() >= self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.cache.remove(&oldest);
                }
            }
            let key: Box<[u32]> = self.sig.as_slice().into();
            self.order.push_back(key.clone());
            self.cache.insert(key, seconds);
        }
        Ok(())
    }

    /// Recomputes member `i`'s stage times, efficiency, `CP`, makespan,
    /// and Eq. 4 flag from the (cached) per-component step times.
    fn recompute_member(&mut self, i: usize, assignment: &[usize]) -> RuntimeResult<()> {
        let (start, end) = self.member_range[i];
        let sim_node = assignment[start];
        let st = &mut self.member_stage[i];
        st.s = self.comp_seconds[start];
        st.w = self.cost.write_seconds(self.chunk, sim_node, sim_node);
        for (j, slot) in (start + 1..end).enumerate() {
            let ana_node = assignment[slot];
            st.analyses[j].r = if self.force_remote_reads && ana_node == sim_node {
                self.cost.read_seconds(self.chunk, sim_node, sim_node + 1)
            } else {
                self.cost.read_seconds(self.chunk, sim_node, ana_node)
            };
            st.analyses[j].a = self.comp_seconds[slot];
        }
        st.validate().map_err(RuntimeError::from)?;
        self.member_mk[i] = makespan(st, self.n_steps);
        self.member_eff[i] = efficiency(st);
        self.member_eq4[i] = st.analyses.iter().all(|a| a.busy() <= st.sim_busy() + 1e-12);
        // Eq. 6 for single-node components, with the exact op sequence
        // of `ensemble_core::placement_indicator`: |s| = 1, |s ∪ aʲ| is
        // 1 when co-located and 2 when not.
        let k = end - start - 1;
        let mut sum = 0.0f64;
        for &ana_node in &assignment[start + 1..end] {
            sum += if ana_node == sim_node { 1.0 } else { 1.0 / 2.0 };
        }
        self.member_cp[i] = 1.0 / k as f64 * sum;
        Ok(())
    }

    /// Grows the per-node state to cover `count` nodes.
    fn ensure_nodes(&mut self, count: usize) {
        if self.node_comps.len() < count {
            self.node_comps.resize_with(count, Vec::new);
            self.touched.resize(count, false);
            self.node_seen.resize(count, false);
        }
    }
}
