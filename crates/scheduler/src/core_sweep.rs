//! The paper's §3.4 parameter-selection heuristic (Figure 7).
//!
//! With the simulation settings fixed (user-provided), sweep the number
//! of cores assigned to the analyses. Minimizing the makespan requires
//! Eq. 4 — `Rⁱ* + Aⁱ* ≤ S* + W*` for every coupling (idle-analyzer) —
//! and among core counts that minimize `σ̄*`, the heuristic picks the one
//! maximizing the computational efficiency `E`.

use ensemble_core::{efficiency, sigma_star, ComponentSpec, EnsembleSpec, MemberSpec};
use runtime::{RuntimeResult, SimRunConfig};
use serde::{Deserialize, Serialize};

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Cores assigned to the analysis.
    pub analysis_cores: u32,
    /// `S* + W*`, seconds.
    pub sim_busy: f64,
    /// `R* + A*`, seconds.
    pub ana_busy: f64,
    /// `σ̄*` (Eq. 1), seconds.
    pub sigma_star: f64,
    /// Computational efficiency `E` (Eq. 3).
    pub efficiency: f64,
    /// Whether Eq. 4 holds (idle-analyzer coupling).
    pub satisfies_eq4: bool,
}

/// Result of the sweep: all points plus the recommended core count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The sweep grid in core order.
    pub points: Vec<SweepPoint>,
    /// Cores the heuristic selects (paper: 8).
    pub recommended_cores: u32,
}

/// Settings of the sweep.
#[derive(Debug, Clone)]
pub struct CoreSweepConfig {
    /// Baseline run configuration (spec is replaced per point).
    pub base: SimRunConfig,
    /// Simulation cores (fixed, user-provided; paper: 16).
    pub sim_cores: u32,
    /// Core counts to evaluate (paper: 1–32).
    pub candidate_cores: Vec<u32>,
    /// In situ steps per evaluation.
    pub steps: u64,
}

impl CoreSweepConfig {
    /// The paper's sweep: sim on 16 cores, analysis cores 1..=32 (powers
    /// of two plus the paper's grid), co-location-free placement.
    pub fn paper() -> Self {
        let spec = co_location_free_member(16, 8);
        CoreSweepConfig {
            base: SimRunConfig::paper(spec),
            sim_cores: 16,
            candidate_cores: vec![1, 2, 4, 8, 16, 32],
            steps: 8,
        }
    }
}

/// A single co-location-free member: sim on node 0, analysis on node 1.
fn co_location_free_member(sim_cores: u32, ana_cores: u32) -> EnsembleSpec {
    EnsembleSpec::new(vec![MemberSpec::new(
        ComponentSpec::simulation(sim_cores, 0),
        vec![ComponentSpec::analysis(ana_cores, 1)],
    )])
}

/// Runs the sweep, producing Figure 7's series and the recommendation.
pub fn core_sweep(config: &CoreSweepConfig) -> RuntimeResult<SweepResult> {
    let mut points = Vec::with_capacity(config.candidate_cores.len());
    for &cores in &config.candidate_cores {
        let mut run = config.base.clone();
        run.spec = co_location_free_member(config.sim_cores, cores);
        run.n_steps = config.steps;
        run.jitter = 0.0;
        let exec = runtime::run_simulated(&run)?;
        let samples = exec.trace.member_samples(0, 1);
        let times =
            ensemble_core::extract_steady_state(&samples, ensemble_core::WarmupPolicy::default())?;
        let sim_busy = times.sim_busy();
        let ana_busy = times.analyses[0].busy();
        points.push(SweepPoint {
            analysis_cores: cores,
            sim_busy,
            ana_busy,
            sigma_star: sigma_star(&times),
            efficiency: efficiency(&times),
            satisfies_eq4: ana_busy <= sim_busy,
        });
    }

    // Among points minimizing σ̄* (within rounding), maximize E.
    let min_sigma = points.iter().map(|p| p.sigma_star).fold(f64::INFINITY, f64::min);
    let recommended = points
        .iter()
        .filter(|p| p.sigma_star <= min_sigma * 1.0001)
        .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
        .expect("sweep evaluated at least one point");
    let recommended_cores = recommended.analysis_cores;
    Ok(SweepResult { points, recommended_cores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::WorkloadMap;

    fn sweep() -> SweepResult {
        let mut cfg = CoreSweepConfig::paper();
        cfg.steps = 6;
        core_sweep(&cfg).unwrap()
    }

    #[test]
    fn paper_heuristic_selects_eight_cores() {
        let result = sweep();
        assert_eq!(result.recommended_cores, 8, "{:#?}", result.points);
    }

    #[test]
    fn figure7_crossover_shape() {
        let result = sweep();
        for p in &result.points {
            if p.analysis_cores <= 4 {
                assert!(!p.satisfies_eq4, "{} cores should violate Eq. 4", p.analysis_cores);
                assert!((p.sigma_star - p.ana_busy).abs() < p.sigma_star * 0.02);
            } else {
                assert!(p.satisfies_eq4, "{} cores should satisfy Eq. 4", p.analysis_cores);
                assert!((p.sigma_star - p.sim_busy).abs() < p.sigma_star * 0.02);
            }
        }
    }

    #[test]
    fn efficiency_peaks_at_recommended_among_eq4_points() {
        let result = sweep();
        let best =
            result.points.iter().find(|p| p.analysis_cores == result.recommended_cores).unwrap();
        for p in result.points.iter().filter(|p| p.satisfies_eq4) {
            assert!(p.efficiency <= best.efficiency + 1e-12);
        }
    }

    #[test]
    fn ana_busy_monotone_decreasing_in_cores() {
        let result = sweep();
        let mut prev = f64::INFINITY;
        for p in &result.points {
            assert!(p.ana_busy < prev, "more cores must shrink the analysis step");
            prev = p.ana_busy;
        }
    }

    #[test]
    fn small_workloads_share_the_shape() {
        // The laptop-scale profiles preserve the crossover.
        let mut cfg = CoreSweepConfig::paper();
        cfg.base.workloads = WorkloadMap::small_defaults();
        cfg.steps = 5;
        let result = core_sweep(&cfg).unwrap();
        assert_eq!(result.recommended_cores, 8, "{:#?}", result.points);
    }
}
