//! # scheduler — parameter selection and indicator-guided placement
//!
//! Two decision procedures built on the paper's model:
//!
//! * [`core_sweep`] — the §3.4 heuristic (Figure 7): fix the simulation,
//!   sweep analysis core counts, keep those satisfying Eq. 4
//!   (`R* + A* ≤ S* + W*`), pick the most efficient. On the paper's
//!   workloads it selects 8 cores, as the paper does.
//! * [`search`] / [`advisor`] — the paper's future work: enumerate
//!   canonical placements under node/core budgets ([`enumerate`]),
//!   evaluate each on the simulated platform, rank by `F(Pᵁ·ᴬ·ᴾ)`
//!   (Eqs. 8–9), with a greedy fallback for large ensembles. The search
//!   independently rediscovers the paper's conclusion: fully co-locate
//!   each member.
//!
//! Placement evaluation runs on [`scan`], a streaming parallel scan
//! engine: candidates are enumerated lazily ([`PlacementIter`]), fanned
//! out to scoped worker threads in chunks, and merged by enumeration
//! index — output order and every float are bit-identical to a serial
//! scan at any worker count. Bounded top-K selection and cooperative
//! cancellation come for free at every call site.

#![warn(missing_docs)]

pub mod advisor;
pub mod annealing;
pub mod core_sweep;
pub mod cosched;
pub mod delta;
pub mod enumerate;
pub mod fast_eval;
pub mod moldable;
pub mod pareto;
pub mod scan;
pub mod search;

pub use advisor::{recommend_placement, recommend_with_core_sweep, Recommendation};
pub use annealing::{anneal_placement, AnnealingConfig};
pub use core_sweep::{core_sweep, CoreSweepConfig, SweepPoint, SweepResult};
pub use cosched::{
    place_against, Admission, CoScheduler, CoschedConfig, CoschedCounters, CoschedError,
    PlacementDecision, Reservation, ResidencyMap, ResidualView,
};
pub use delta::{DeltaCounters, DeltaEvaluator};
pub use enumerate::{canonicalize, enumerate_placements, EnsembleShape, PlacementIter};
pub use fast_eval::{fast_score, FastEvaluator, FastScore};
pub use moldable::{moldable_search, moldable_search_with, MoldablePoint, MoldableResult};
pub use pareto::{frontier_only, pareto_front, pareto_front_with, ParetoPoint};
pub use scan::{
    scan_placements, scan_placements_delta, scan_placements_delta_observed,
    scan_placements_observed, ScanHit, ScanOptions, ScanOutcome, ScanProgress, SCAN_WORKERS_ENV,
};
pub use search::{
    exhaustive_search, exhaustive_search_with, greedy_search, score_report, NodeBudget,
    ScoredPlacement, SearchConfig,
};
