//! # scheduler — parameter selection and indicator-guided placement
//!
//! Two decision procedures built on the paper's model:
//!
//! * [`core_sweep`] — the §3.4 heuristic (Figure 7): fix the simulation,
//!   sweep analysis core counts, keep those satisfying Eq. 4
//!   (`R* + A* ≤ S* + W*`), pick the most efficient. On the paper's
//!   workloads it selects 8 cores, as the paper does.
//! * [`search`] / [`advisor`] — the paper's future work: enumerate
//!   canonical placements under node/core budgets ([`enumerate`]),
//!   evaluate each on the simulated platform, rank by `F(Pᵁ·ᴬ·ᴾ)`
//!   (Eqs. 8–9), with a greedy fallback for large ensembles. The search
//!   independently rediscovers the paper's conclusion: fully co-locate
//!   each member.

#![warn(missing_docs)]

pub mod advisor;
pub mod annealing;
pub mod core_sweep;
pub mod enumerate;
pub mod fast_eval;
pub mod moldable;
pub mod pareto;
pub mod search;

pub use advisor::{recommend_placement, recommend_with_core_sweep, Recommendation};
pub use annealing::{anneal_placement, AnnealingConfig};
pub use core_sweep::{core_sweep, CoreSweepConfig, SweepPoint, SweepResult};
pub use enumerate::{canonicalize, enumerate_placements, EnsembleShape};
pub use fast_eval::{fast_score, FastEvaluator, FastScore};
pub use moldable::{moldable_search, MoldablePoint, MoldableResult};
pub use pareto::{frontier_only, pareto_front, ParetoPoint};
pub use search::{
    exhaustive_search, greedy_search, score_report, NodeBudget, ScoredPlacement, SearchConfig,
};
