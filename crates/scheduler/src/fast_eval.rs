//! Fast placement evaluation through the closed-form predictor — no
//! discrete-event run, suitable for scanning thousands of candidates.

use ensemble_core::{aggregate, Aggregation, EnsembleSpec, IndicatorPath, MemberInputs};
use runtime::{predict, RuntimeResult, SimRunConfig};

/// Predictor-based evaluation of one placement.
#[derive(Debug, Clone)]
pub struct FastScore {
    /// Objective `F(Pᵁ·ᴬ·ᴾ)` from predicted efficiencies.
    pub objective: f64,
    /// Predicted ensemble makespan, seconds.
    pub ensemble_makespan: f64,
    /// Nodes the placement provisions.
    pub nodes_used: usize,
    /// True when every coupling satisfies the paper's Eq. 4
    /// (`R* + A* ≤ S* + W*`) — i.e. no simulation ever waits.
    pub eq4_satisfied: bool,
}

/// Scores `spec` analytically under `base`'s platform and workloads.
pub fn fast_score(base: &SimRunConfig, spec: &EnsembleSpec) -> RuntimeResult<FastScore> {
    let mut cfg = base.clone();
    cfg.spec = spec.clone();
    cfg.jitter = 0.0;
    let prediction = predict(&cfg)?;
    let values: Vec<f64> = prediction
        .members
        .iter()
        .zip(&spec.members)
        .map(|(p, ms)| {
            let inputs = MemberInputs::from_specs(ms, spec, p.efficiency);
            ensemble_core::indicator(&inputs, &IndicatorPath::uap())
        })
        .collect();
    let eq4_satisfied = prediction.members.iter().all(|m| {
        m.stage_times.analyses.iter().all(|a| a.busy() <= m.stage_times.sim_busy() + 1e-12)
    });
    Ok(FastScore {
        objective: aggregate(&values, Aggregation::MeanMinusStd),
        ensemble_makespan: prediction.ensemble_makespan,
        nodes_used: spec.num_nodes(),
        eq4_satisfied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::score_report;
    use ensemble_core::{Aggregation, ConfigId};
    use runtime::{EnsembleRunner, WorkloadMap};

    #[test]
    fn fast_score_matches_des_based_score() {
        for id in [ConfigId::C1_4, ConfigId::C1_5, ConfigId::C2_8] {
            let spec = id.build();
            let mut base = SimRunConfig::paper(spec.clone());
            base.workloads = WorkloadMap::small_defaults();
            base.n_steps = 8;
            let fast = fast_score(&base, &spec).unwrap();

            let report =
                EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0).run().unwrap();
            let slow =
                score_report(&report, &spec, &IndicatorPath::uap(), Aggregation::MeanMinusStd);
            let rel = (fast.objective - slow).abs() / slow.abs().max(1e-12);
            assert!(rel < 1e-4, "{id}: fast {} vs DES {}", fast.objective, slow);
        }
    }

    #[test]
    fn fast_score_reports_nodes() {
        let spec = ConfigId::C1_1.build();
        let mut base = SimRunConfig::paper(spec.clone());
        base.workloads = WorkloadMap::small_defaults();
        let s = fast_score(&base, &spec).unwrap();
        assert_eq!(s.nodes_used, 3);
        assert!(s.ensemble_makespan > 0.0);
    }
}
