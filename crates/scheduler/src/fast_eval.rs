//! Fast placement evaluation through the closed-form predictor — no
//! discrete-event run, suitable for scanning thousands of candidates.

use ensemble_core::{aggregate, Aggregation, EnsembleSpec, IndicatorPath, MemberInputs};
use runtime::{predict_scores, RuntimeResult, SimRunConfig};

/// Predictor-based evaluation of one placement.
#[derive(Debug, Clone)]
pub struct FastScore {
    /// Objective `F(Pᵁ·ᴬ·ᴾ)` from predicted efficiencies.
    pub objective: f64,
    /// Predicted ensemble makespan, seconds.
    pub ensemble_makespan: f64,
    /// Nodes the placement provisions.
    pub nodes_used: usize,
    /// True when every coupling satisfies the paper's Eq. 4
    /// (`R* + A* ≤ S* + W*`) — i.e. no simulation ever waits.
    pub eq4_satisfied: bool,
}

/// Reusable fast-evaluation context: clones the base run configuration
/// (platform, workload map, run settings) **once**, then scores any
/// number of candidate specs by swapping only the spec in. Candidate
/// scans — the placement search and the provisioning service's score
/// path — go through this instead of paying a full `SimRunConfig` clone
/// per candidate.
#[derive(Debug, Clone)]
pub struct FastEvaluator {
    cfg: SimRunConfig,
}

impl FastEvaluator {
    /// Captures `base`'s platform, workloads, and settings (jitter is
    /// forced to zero: the closed-form predictor is the deterministic
    /// fixed point of the run).
    pub fn new(base: &SimRunConfig) -> Self {
        let mut cfg = base.clone();
        cfg.jitter = 0.0;
        FastEvaluator { cfg }
    }

    /// Scores one candidate spec. Only the spec is copied into the held
    /// configuration (`clone_from` reuses member-vector allocations
    /// across candidates of equal shape).
    pub fn score(&mut self, spec: &EnsembleSpec) -> RuntimeResult<FastScore> {
        self.cfg.spec.clone_from(spec);
        score_config(&self.cfg)
    }

    /// The held configuration (for cache-key derivation).
    pub fn config(&self) -> &SimRunConfig {
        &self.cfg
    }
}

/// Scores `cfg.spec` analytically under `cfg`'s platform and workloads.
/// Goes through [`predict_scores`] — the scoring path never reads the
/// per-component estimate map, so it is never materialized (the
/// per-member floats are bit-identical to [`runtime::predict`]'s).
fn score_config(cfg: &SimRunConfig) -> RuntimeResult<FastScore> {
    let prediction = predict_scores(cfg)?;
    let spec = &cfg.spec;
    let values: Vec<f64> = prediction
        .members
        .iter()
        .zip(&spec.members)
        .map(|(p, ms)| {
            let inputs = MemberInputs::from_specs(ms, spec, p.efficiency);
            ensemble_core::indicator(&inputs, &IndicatorPath::uap())
        })
        .collect();
    let eq4_satisfied = prediction.members.iter().all(|m| {
        m.stage_times.analyses.iter().all(|a| a.busy() <= m.stage_times.sim_busy() + 1e-12)
    });
    Ok(FastScore {
        objective: aggregate(&values, Aggregation::MeanMinusStd),
        ensemble_makespan: prediction.ensemble_makespan,
        nodes_used: spec.num_nodes(),
        eq4_satisfied,
    })
}

/// Scores `spec` analytically under `base`'s platform and workloads.
///
/// One-shot convenience over [`FastEvaluator`]: every call clones the
/// **entire** `SimRunConfig` (platform model, workload map, settings).
/// That is fine for a single score or a test reference, and ruinous in
/// a loop. Hot paths must not call this per candidate — scans go
/// through [`crate::scan`] with a per-worker [`crate::DeltaEvaluator`]
/// (or `FastEvaluator`), annealing reuses one evaluator across moves.
/// Every former in-loop call site was redirected (PR 5 removed the
/// scan/anneal loops; the delta engine keeps them out), and the
/// `fast_score_stays_out_of_library_loops` test pins that this function
/// is referenced only from `#[cfg(test)]` code and test files within
/// this crate.
pub fn fast_score(base: &SimRunConfig, spec: &EnsembleSpec) -> RuntimeResult<FastScore> {
    FastEvaluator::new(base).score(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::score_report;
    use ensemble_core::{Aggregation, ConfigId};
    use runtime::{EnsembleRunner, WorkloadMap};

    #[test]
    fn fast_score_matches_des_based_score() {
        for id in [ConfigId::C1_4, ConfigId::C1_5, ConfigId::C2_8] {
            let spec = id.build();
            let mut base = SimRunConfig::paper(spec.clone());
            base.workloads = WorkloadMap::small_defaults();
            base.n_steps = 8;
            let fast = fast_score(&base, &spec).unwrap();

            let report =
                EnsembleRunner::paper_config(id).small_scale().steps(8).jitter(0.0).run().unwrap();
            let slow =
                score_report(&report, &spec, &IndicatorPath::uap(), Aggregation::MeanMinusStd);
            let rel = (fast.objective - slow).abs() / slow.abs().max(1e-12);
            assert!(rel < 1e-4, "{id}: fast {} vs DES {}", fast.objective, slow);
        }
    }

    #[test]
    fn evaluator_reuse_matches_one_shot_bitwise() {
        let spec_a = ConfigId::C1_4.build();
        let spec_b = ConfigId::C1_5.build();
        let mut base = SimRunConfig::paper(spec_a.clone());
        base.workloads = WorkloadMap::small_defaults();
        base.n_steps = 8;
        let mut eval = FastEvaluator::new(&base);
        // Interleave shapes so spec swapping can't leak state between
        // candidates.
        for spec in [&spec_a, &spec_b, &spec_a, &spec_b] {
            let reused = eval.score(spec).unwrap();
            let fresh = fast_score(&base, spec).unwrap();
            assert_eq!(reused.objective.to_bits(), fresh.objective.to_bits());
            assert_eq!(reused.ensemble_makespan.to_bits(), fresh.ensemble_makespan.to_bits());
            assert_eq!(reused.nodes_used, fresh.nodes_used);
            assert_eq!(reused.eq4_satisfied, fresh.eq4_satisfied);
        }
    }

    #[test]
    fn fast_score_is_deterministic_across_repeated_calls() {
        // The invariant the svc score cache relies on: identical inputs
        // give bit-identical outputs (no HashMap-order or RNG leakage).
        let spec = ConfigId::C2_8.build();
        let mut base = SimRunConfig::paper(spec.clone());
        base.workloads = WorkloadMap::small_defaults();
        base.n_steps = 8;
        let first = fast_score(&base, &spec).unwrap();
        for _ in 0..20 {
            let again = fast_score(&base, &spec).unwrap();
            assert_eq!(first.objective.to_bits(), again.objective.to_bits());
            assert_eq!(first.ensemble_makespan.to_bits(), again.ensemble_makespan.to_bits());
        }
    }

    #[test]
    fn fast_score_stays_out_of_library_loops() {
        // `fast_score` clones the whole SimRunConfig per call — the
        // audit in the function docs: library (non-test) code in this
        // crate must never call it; hot paths use reusable evaluators.
        let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        for entry in std::fs::read_dir(&src_dir).expect("read src/") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("read source");
            // Strip everything from the test module down — call sites
            // there are reference paths, which are exactly where the
            // one-shot form belongs.
            let library_code = source.split("#[cfg(test)]").next().expect("split");
            for (lineno, line) in library_code.lines().enumerate() {
                let code = line.split("//").next().expect("split");
                let is_definition = code.contains("pub fn fast_score");
                assert!(
                    is_definition || !code.contains("fast_score("),
                    "{}:{}: fast_score called from library code — use a reusable \
                     FastEvaluator/DeltaEvaluator instead",
                    path.display(),
                    lineno + 1
                );
            }
        }
    }

    #[test]
    fn fast_score_reports_nodes() {
        let spec = ConfigId::C1_1.build();
        let mut base = SimRunConfig::paper(spec.clone());
        base.workloads = WorkloadMap::small_defaults();
        let s = fast_score(&base, &spec).unwrap();
        assert_eq!(s.nodes_used, 3);
        assert!(s.ensemble_makespan > 0.0);
    }
}
