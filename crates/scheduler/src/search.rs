//! Indicator-guided placement search — the paper's future work
//! ("leveraging the proposed indicators for scheduling in situ components
//! of a workflow ensemble under resource constraints") made concrete.
//!
//! Every feasible canonical placement is executed on the simulated
//! platform, scored with `F(Pᵁ·ᴬ·ᴾ)` (Eqs. 8–9), and ranked.

use ensemble_core::{aggregate, Aggregation, EnsembleSpec, IndicatorPath, MemberInputs};
use metrics::EnsembleReport;
use runtime::{RuntimeResult, SimRunConfig, WorkloadMap};
use serde::{Deserialize, Serialize};

use crate::enumerate::EnsembleShape;
use crate::scan::{scan_placements, ScanOptions, ScanOutcome};

/// Resource constraints of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBudget {
    /// Maximum nodes that may be provisioned.
    pub max_nodes: usize,
    /// Cores per node.
    pub cores_per_node: u32,
}

/// One evaluated placement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredPlacement {
    /// Flattened node assignment (member-major, simulation first).
    pub assignment: Vec<usize>,
    /// The materialized spec.
    pub spec: EnsembleSpec,
    /// Objective value `F(Pᵁ·ᴬ·ᴾ)`.
    pub objective: f64,
    /// Nodes used.
    pub nodes_used: usize,
    /// Ensemble makespan of the evaluation run, seconds.
    pub ensemble_makespan: f64,
}

/// Search settings.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Component structure to place.
    pub shape: EnsembleShape,
    /// Resource constraints.
    pub budget: NodeBudget,
    /// Base run settings (spec replaced per candidate).
    pub base: SimRunConfig,
    /// Evaluation steps per candidate (short; steady state suffices).
    pub steps: u64,
    /// Aggregation for the objective (Eq. 9 by default).
    pub aggregation: Aggregation,
}

impl SearchConfig {
    /// Paper-scale search over the given shape and budget.
    pub fn new(shape: EnsembleShape, budget: NodeBudget) -> Self {
        let placeholder = shape.materialize(&vec![0; shape.num_components()]);
        SearchConfig {
            base: SimRunConfig::paper(placeholder),
            shape,
            budget,
            steps: 6,
            aggregation: Aggregation::MeanMinusStd,
        }
    }

    /// Switches to laptop-scale workloads (fast tests).
    pub fn small_scale(mut self) -> Self {
        self.base.workloads = WorkloadMap::small_defaults();
        self
    }
}

/// Scores one already-run report with `F` over the chosen indicator
/// path.
pub fn score_report(
    report: &EnsembleReport,
    spec: &EnsembleSpec,
    path: &IndicatorPath,
    aggregation: Aggregation,
) -> f64 {
    let values: Vec<f64> = report
        .members
        .iter()
        .zip(&spec.members)
        .map(|(mr, ms)| {
            let inputs = MemberInputs::from_specs(ms, spec, mr.efficiency);
            ensemble_core::indicator(&inputs, path)
        })
        .collect();
    aggregate(&values, aggregation)
}

/// Exhaustively evaluates every canonical feasible placement, returning
/// them ranked best-first. Runs the parallel scan engine at its default
/// worker count — see [`exhaustive_search_with`] for explicit control.
pub fn exhaustive_search(config: &SearchConfig) -> RuntimeResult<Vec<ScoredPlacement>> {
    exhaustive_search_with(config, &ScanOptions::default()).map(ScanOutcome::into_values)
}

/// [`exhaustive_search`] with explicit scan options: worker count, chunk
/// size, bounded top-K. Output (order and float bits) is identical at
/// every worker count; with `top_k > 0` it equals the first K rows of
/// the full ranking.
pub fn exhaustive_search_with(
    config: &SearchConfig,
    opts: &ScanOptions,
) -> RuntimeResult<ScanOutcome<ScoredPlacement>> {
    // One template clone for the whole scan; each worker clones it once
    // and then per candidate only the spec changes (platform + workload
    // map are shared run to run).
    let mut template = config.base.clone();
    template.n_steps = config.steps;
    template.jitter = 0.0;
    let mut outcome = scan_placements(
        &config.shape,
        config.budget,
        opts,
        || template.clone(),
        |run: &mut SimRunConfig,
         _,
         assignment: &[usize]|
         -> RuntimeResult<Option<ScoredPlacement>> {
            let spec = config.shape.materialize(assignment);
            run.spec.clone_from(&spec);
            let exec = runtime::run_simulated(run)?;
            let report = runtime::build_report(
                "candidate",
                &spec,
                &exec,
                config.steps,
                ensemble_core::WarmupPolicy::default(),
            )?;
            let objective = score_report(&report, &spec, &IndicatorPath::uap(), config.aggregation);
            Ok(Some(ScoredPlacement {
                nodes_used: spec.num_nodes(),
                ensemble_makespan: report.ensemble_makespan,
                assignment: assignment.to_vec(),
                spec,
                objective,
            }))
        },
        |p: &ScoredPlacement| p.objective,
        || false,
    )?;
    if opts.top_k == 0 {
        // The merge returns enumeration order; rank best-first exactly
        // as the serial scan always has (stable sort, so equal
        // objectives keep enumeration order).
        sort_ranked(&mut outcome.results);
    }
    Ok(outcome)
}

fn sort_ranked(results: &mut [crate::scan::ScanHit<ScoredPlacement>]) {
    results.sort_by(|a, b| b.value.objective.total_cmp(&a.value.objective));
}

/// Greedy search for larger ensembles: members are placed one at a time,
/// each choosing co-location on the least-loaded node that fits, falling
/// back to spreading. Returns the single constructed placement, scored.
pub fn greedy_search(config: &SearchConfig) -> RuntimeResult<ScoredPlacement> {
    let mut load = vec![0u32; config.budget.max_nodes];
    let mut assignment = Vec::with_capacity(config.shape.num_components());
    for (sim_cores, anas) in &config.shape.members {
        let member_total: u32 = sim_cores + anas.iter().sum::<u32>();
        // Prefer fully co-locating the member on one node (the paper's
        // conclusion), else fall back to per-component first-fit.
        if let Some(node) = least_loaded_fitting(&load, member_total, config.budget.cores_per_node)
        {
            load[node] += member_total;
            assignment.push(node);
            assignment.extend(std::iter::repeat_n(node, anas.len()));
        } else {
            for &cores in std::iter::once(sim_cores).chain(anas.iter()) {
                let node = least_loaded_fitting(&load, cores, config.budget.cores_per_node).ok_or(
                    runtime::RuntimeError::Platform(
                        hpc_platform::PlatformError::InsufficientCores {
                            node: 0,
                            requested: cores,
                            available: 0,
                        },
                    ),
                )?;
                load[node] += cores;
                assignment.push(node);
            }
        }
    }
    let assignment = crate::enumerate::canonicalize(&assignment);
    let spec = config.shape.materialize(&assignment);
    let mut run = config.base.clone();
    run.spec.clone_from(&spec);
    run.n_steps = config.steps;
    run.jitter = 0.0;
    let exec = runtime::run_simulated(&run)?;
    let report = runtime::build_report(
        "greedy",
        &spec,
        &exec,
        config.steps,
        ensemble_core::WarmupPolicy::default(),
    )?;
    let objective = score_report(&report, &spec, &IndicatorPath::uap(), config.aggregation);
    Ok(ScoredPlacement {
        nodes_used: spec.num_nodes(),
        ensemble_makespan: report.ensemble_makespan,
        assignment,
        spec,
        objective,
    })
}

fn least_loaded_fitting(load: &[u32], cores: u32, capacity: u32) -> Option<usize> {
    load.iter()
        .enumerate()
        .filter(|(_, &l)| l + cores <= capacity)
        .min_by_key(|(_, &l)| l)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_search(n: usize, k: usize, max_nodes: usize) -> SearchConfig {
        SearchConfig::new(
            EnsembleShape::uniform(n, 16, k, 8),
            NodeBudget { max_nodes, cores_per_node: 32 },
        )
        .small_scale()
    }

    #[test]
    fn exhaustive_ranks_full_colocation_first() {
        // The paper's headline: each member co-located on its own node
        // (C1.5 pattern) must win the set-one search.
        let ranked = exhaustive_search(&small_search(2, 1, 3)).unwrap();
        assert!(!ranked.is_empty());
        let best = &ranked[0];
        for (i, m) in best.spec.members.iter().enumerate() {
            assert!(
                m.is_colocated(0),
                "best placement must co-locate member {i}: {:?}",
                best.assignment
            );
        }
        // Scores are sorted descending.
        for w in ranked.windows(2) {
            assert!(w[0].objective >= w[1].objective);
        }
    }

    #[test]
    fn exhaustive_set_two_prefers_c2_8_pattern() {
        let ranked = exhaustive_search(&small_search(2, 2, 3)).unwrap();
        let best = &ranked[0];
        // C2.8: each member entirely on its own node → 2 nodes, CP = 1.
        assert_eq!(best.nodes_used, 2, "{:?}", best.assignment);
        for m in &best.spec.members {
            assert!(m.is_colocated(0) && m.is_colocated(1));
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_instance() {
        let cfg = small_search(2, 1, 3);
        let ranked = exhaustive_search(&cfg).unwrap();
        let greedy = greedy_search(&cfg).unwrap();
        assert!(
            (greedy.objective - ranked[0].objective).abs() < 1e-12,
            "greedy {} vs best {}",
            greedy.objective,
            ranked[0].objective
        );
    }

    #[test]
    fn greedy_scales_to_more_members() {
        let cfg = small_search(4, 1, 4);
        let placed = greedy_search(&cfg).unwrap();
        assert_eq!(placed.spec.n(), 4);
        assert!(placed.objective.is_finite());
        for m in &placed.spec.members {
            assert!(m.is_colocated(0), "greedy co-locates when capacity allows");
        }
    }

    #[test]
    fn infeasible_budget_errors() {
        let cfg = small_search(2, 1, 1); // 48 cores on one 32-core node
        assert!(exhaustive_search(&cfg).unwrap().is_empty());
        assert!(greedy_search(&cfg).is_err());
    }
}
