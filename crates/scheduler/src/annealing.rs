//! Simulated annealing over placements for ensembles too large to
//! enumerate. Deterministic for a fixed seed; uses the closed-form
//! predictor so thousands of candidate evaluations stay cheap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use runtime::{RuntimeResult, SimRunConfig};

use crate::delta::DeltaEvaluator;
use crate::enumerate::{canonicalize, EnsembleShape};
use crate::search::{NodeBudget, ScoredPlacement};

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct AnnealingConfig {
    /// Moves to attempt.
    pub iterations: usize,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Multiplicative cooling per move.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig { iterations: 2_000, initial_temperature: 1e-2, cooling: 0.995, seed: 2021 }
    }
}

fn component_cores(shape: &EnsembleShape) -> Vec<u32> {
    let mut v = Vec::with_capacity(shape.num_components());
    for (sim, anas) in &shape.members {
        v.push(*sim);
        v.extend(anas.iter().copied());
    }
    v
}

fn feasible(assignment: &[usize], cores: &[u32], budget: NodeBudget) -> bool {
    let mut load = vec![0u32; budget.max_nodes];
    for (&node, &c) in assignment.iter().zip(cores) {
        if node >= budget.max_nodes {
            return false;
        }
        load[node] += c;
        if load[node] > budget.cores_per_node {
            return false;
        }
    }
    true
}

/// Builds a feasible starting assignment: members are first-fit
/// co-located when a node can hold them whole, else their components
/// spill first-fit — a warm start near the co-location optimum the
/// indicator rewards.
fn initial_assignment(shape: &EnsembleShape, budget: NodeBudget) -> Option<Vec<usize>> {
    let mut load = vec![0u32; budget.max_nodes];
    let mut assignment = Vec::new();
    for (sim_cores, anas) in &shape.members {
        let member_total: u32 = sim_cores + anas.iter().sum::<u32>();
        if let Some(node) =
            (0..budget.max_nodes).find(|&n| load[n] + member_total <= budget.cores_per_node)
        {
            load[node] += member_total;
            assignment.extend(std::iter::repeat_n(node, 1 + anas.len()));
        } else {
            for &c in std::iter::once(sim_cores).chain(anas.iter()) {
                let node = (0..budget.max_nodes).find(|&n| load[n] + c <= budget.cores_per_node)?;
                load[node] += c;
                assignment.push(node);
            }
        }
    }
    Some(assignment)
}

/// Anneals toward a placement maximizing `F(Pᵁ·ᴬ·ᴾ)` under the budget.
/// One [`DeltaEvaluator`] is built up front and reused for every move:
/// a single-component move touches at most two nodes, so only those
/// nodes re-solve and only the members resident on them recompute —
/// with scores bit-identical to the from-scratch path (no spec is
/// materialized per move at all).
pub fn anneal_placement(
    base: &SimRunConfig,
    shape: &EnsembleShape,
    budget: NodeBudget,
    config: &AnnealingConfig,
) -> RuntimeResult<ScoredPlacement> {
    let mut evaluator = DeltaEvaluator::new(base, shape);
    let best = anneal_core(shape, budget, config, |assignment| {
        Ok(evaluator.score(&canonicalize(assignment))?.objective)
    })?;
    let assignment = canonicalize(&best);
    let spec = shape.materialize(&assignment);
    let fs = evaluator.score(&assignment)?;
    Ok(ScoredPlacement {
        nodes_used: fs.nodes_used,
        ensemble_makespan: fs.ensemble_makespan,
        assignment,
        spec,
        objective: fs.objective,
    })
}

/// The annealing loop itself, generic over the scoring closure so tests
/// can pin the evaluator-reuse path against the one-shot reference.
/// Returns the best (not yet canonicalized) assignment found.
fn anneal_core(
    shape: &EnsembleShape,
    budget: NodeBudget,
    config: &AnnealingConfig,
    mut score_of: impl FnMut(&[usize]) -> RuntimeResult<f64>,
) -> RuntimeResult<Vec<usize>> {
    let cores = component_cores(shape);
    let mut current = initial_assignment(shape, budget).ok_or_else(|| {
        runtime::RuntimeError::Platform(hpc_platform::PlatformError::InsufficientCores {
            node: 0,
            requested: cores.iter().sum(),
            available: budget.cores_per_node * budget.max_nodes as u32,
        })
    })?;
    let mut current_score = score_of(&current)?;
    let mut best = current.clone();
    let mut best_score = current_score;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut temperature = config.initial_temperature;

    for _ in 0..config.iterations {
        // Neighbour: move one random component to a random node.
        let idx = rng.random_range(0..current.len());
        let new_node = rng.random_range(0..budget.max_nodes);
        if new_node == current[idx] {
            temperature *= config.cooling;
            continue;
        }
        let mut candidate = current.clone();
        candidate[idx] = new_node;
        if !feasible(&candidate, &cores, budget) {
            temperature *= config.cooling;
            continue;
        }
        let candidate_score = score_of(&candidate)?;
        let delta = candidate_score - current_score;
        let accept = delta >= 0.0 || rng.random::<f64>() < (delta / temperature.max(1e-12)).exp();
        if accept {
            current = candidate;
            current_score = candidate_score;
            if current_score > best_score {
                best = current.clone();
                best_score = current_score;
            }
        }
        temperature *= config.cooling;
    }

    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{exhaustive_search, SearchConfig};
    use runtime::WorkloadMap;

    fn base() -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(ensemble_core::ConfigId::Cf.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg
    }

    #[test]
    fn annealing_finds_the_exhaustive_optimum_on_small_instances() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 3, cores_per_node: 32 };
        let annealed = anneal_placement(
            &base(),
            &shape,
            budget,
            &AnnealingConfig { iterations: 800, ..Default::default() },
        )
        .unwrap();
        let search_cfg = SearchConfig::new(shape, budget).small_scale();
        let ranked = exhaustive_search(&search_cfg).unwrap();
        let rel =
            (annealed.objective - ranked[0].objective).abs() / ranked[0].objective.abs().max(1e-12);
        assert!(
            rel < 0.05,
            "annealed {} should approach exhaustive best {}",
            annealed.objective,
            ranked[0].objective
        );
    }

    #[test]
    fn annealing_scales_to_eight_members() {
        // 8 members × 24 cores = 192 cores over 8 nodes: enumeration is
        // enormous; annealing returns a feasible, co-location-heavy
        // placement quickly.
        let shape = EnsembleShape::uniform(8, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 8, cores_per_node: 32 };
        let annealed = anneal_placement(
            &base(),
            &shape,
            budget,
            &AnnealingConfig { iterations: 1_200, ..Default::default() },
        )
        .unwrap();
        assert_eq!(annealed.spec.n(), 8);
        assert!(annealed.objective.is_finite());
        // Most members should end up co-located (the indicator rewards
        // it); require at least 6 of 8.
        let colocated = annealed.spec.members.iter().filter(|m| m.is_colocated(0)).count();
        assert!(colocated >= 6, "only {colocated}/8 members co-located");
    }

    #[test]
    fn infeasible_budget_errors() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 1, cores_per_node: 32 };
        assert!(anneal_placement(&base(), &shape, budget, &AnnealingConfig::default()).is_err());
    }

    #[test]
    fn evaluator_reuse_matches_the_one_shot_trajectory_bitwise() {
        // Regression for the per-move `fast_score(base, …)` clone: the
        // reused evaluator must produce the same scores (bit for bit)
        // at every move, so the whole annealing trajectory — and thus
        // the returned placement — is unchanged.
        let base = base();
        let shape = EnsembleShape::uniform(3, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 4, cores_per_node: 32 };
        let cfg = AnnealingConfig { iterations: 400, ..Default::default() };
        let mut one_shot_scores = Vec::new();
        let one_shot_best = anneal_core(&shape, budget, &cfg, |assignment| {
            let spec = shape.materialize(&canonicalize(assignment));
            let objective = crate::fast_eval::fast_score(&base, &spec)?.objective;
            one_shot_scores.push(objective.to_bits());
            Ok(objective)
        })
        .unwrap();
        let mut evaluator = crate::fast_eval::FastEvaluator::new(&base);
        let mut reused_scores = Vec::new();
        let reused_best = anneal_core(&shape, budget, &cfg, |assignment| {
            let spec = shape.materialize(&canonicalize(assignment));
            let objective = evaluator.score(&spec)?.objective;
            reused_scores.push(objective.to_bits());
            Ok(objective)
        })
        .unwrap();
        assert_eq!(one_shot_scores, reused_scores, "every move must score identically");
        assert_eq!(one_shot_best, reused_best);
        // The delta evaluator — what `anneal_placement` actually runs —
        // must walk the same trajectory bit for bit.
        let mut delta_eval = DeltaEvaluator::new(&base, &shape);
        let mut delta_scores = Vec::new();
        let delta_best = anneal_core(&shape, budget, &cfg, |assignment| {
            let objective = delta_eval.score(&canonicalize(assignment))?.objective;
            delta_scores.push(objective.to_bits());
            Ok(objective)
        })
        .unwrap();
        assert_eq!(one_shot_scores, delta_scores, "delta scoring must not perturb the walk");
        assert_eq!(one_shot_best, delta_best);
        // And the public entry point agrees with the reference run.
        let placed = anneal_placement(&base, &shape, budget, &cfg).unwrap();
        assert_eq!(placed.assignment, canonicalize(&one_shot_best));
    }

    #[test]
    fn deterministic_for_seed() {
        let shape = EnsembleShape::uniform(3, 16, 1, 8);
        let budget = NodeBudget { max_nodes: 4, cores_per_node: 32 };
        let cfg = AnnealingConfig { iterations: 300, ..Default::default() };
        let a = anneal_placement(&base(), &shape, budget, &cfg).unwrap();
        let b = anneal_placement(&base(), &shape, budget, &cfg).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
