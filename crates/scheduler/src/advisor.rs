//! The placement advisor: one call from ensemble shape + budget to a
//! recommended placement with a human-readable rationale.

use ensemble_core::EnsembleSpec;
use runtime::RuntimeResult;
use serde::{Deserialize, Serialize};

use crate::core_sweep::{core_sweep, CoreSweepConfig};
use crate::enumerate::EnsembleShape;
use crate::search::{exhaustive_search, greedy_search, NodeBudget, SearchConfig};

/// Exhaustive search is bounded by the number of canonical placements;
/// beyond this many components the advisor switches to greedy.
const EXHAUSTIVE_COMPONENT_LIMIT: usize = 8;

/// The advisor's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The placement to use.
    pub spec: EnsembleSpec,
    /// Its objective value `F(Pᵁ·ᴬ·ᴾ)`.
    pub objective: f64,
    /// Nodes it provisions.
    pub nodes_used: usize,
    /// Whether the search was exhaustive or greedy.
    pub exhaustive: bool,
    /// Analysis core count chosen by the §3.4 sweep (when requested).
    pub analysis_cores: Option<u32>,
    /// Plain-language explanation.
    pub rationale: String,
}

/// Recommends a placement for `n` members of `sim_cores + k × ana_cores`
/// under `budget`, using the paper's indicators as the objective.
pub fn recommend_placement(
    n: usize,
    sim_cores: u32,
    k: usize,
    ana_cores: u32,
    budget: NodeBudget,
    small_scale: bool,
) -> RuntimeResult<Recommendation> {
    let shape = EnsembleShape::uniform(n, sim_cores, k, ana_cores);
    let mut config = SearchConfig::new(shape.clone(), budget);
    if small_scale {
        config = config.small_scale();
    }
    let (best, exhaustive) = if shape.num_components() <= EXHAUSTIVE_COMPONENT_LIMIT {
        let ranked = exhaustive_search(&config)?;
        let best = ranked.into_iter().next().ok_or(runtime::RuntimeError::NoSamples)?;
        (best, true)
    } else {
        (greedy_search(&config)?, false)
    };
    let colocated = best.spec.members.iter().all(|m| (0..m.k()).all(|j| m.is_colocated(j)));
    let rationale = format!(
        "{} search over ≤{} nodes ({} cores each): F(P^U,A,P) = {:.3e} on {} nodes; {}",
        if exhaustive { "exhaustive" } else { "greedy" },
        budget.max_nodes,
        budget.cores_per_node,
        best.objective,
        best.nodes_used,
        if colocated {
            "every member is fully co-located with its analyses (the paper's conclusion)"
        } else {
            "capacity constraints force partial spreading"
        }
    );
    Ok(Recommendation {
        spec: best.spec,
        objective: best.objective,
        nodes_used: best.nodes_used,
        exhaustive,
        analysis_cores: None,
        rationale,
    })
}

/// Full §3.4 + §4 pipeline: first size the analyses with the core sweep,
/// then place the ensemble.
pub fn recommend_with_core_sweep(
    n: usize,
    sim_cores: u32,
    k: usize,
    budget: NodeBudget,
) -> RuntimeResult<Recommendation> {
    let mut sweep_cfg = CoreSweepConfig::paper();
    sweep_cfg.sim_cores = sim_cores;
    let sweep = core_sweep(&sweep_cfg)?;
    let mut rec = recommend_placement(n, sim_cores, k, sweep.recommended_cores, budget, false)?;
    rec.analysis_cores = Some(sweep.recommended_cores);
    rec.rationale = format!(
        "core sweep (Eq. 4 + max E) chose {} analysis cores; {}",
        sweep.recommended_cores, rec.rationale
    );
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_recommends_colocation() {
        let rec =
            recommend_placement(2, 16, 1, 8, NodeBudget { max_nodes: 3, cores_per_node: 32 }, true)
                .unwrap();
        assert!(rec.exhaustive);
        assert_eq!(rec.nodes_used, 2, "C1.5-style placement expected");
        assert!(rec.rationale.contains("co-located"));
        for m in &rec.spec.members {
            assert!(m.is_colocated(0));
        }
    }

    #[test]
    fn large_instance_falls_back_to_greedy() {
        let rec =
            recommend_placement(5, 16, 1, 8, NodeBudget { max_nodes: 5, cores_per_node: 32 }, true)
                .unwrap();
        assert!(!rec.exhaustive);
        assert_eq!(rec.spec.n(), 5);
        assert!(rec.objective.is_finite());
    }

    #[test]
    fn impossible_budget_errors() {
        let err =
            recommend_placement(2, 16, 1, 8, NodeBudget { max_nodes: 1, cores_per_node: 32 }, true);
        assert!(err.is_err());
    }
}
