//! Moldable scheduling: choose the analysis core count *and* the
//! placement together.
//!
//! The paper fixes analysis cores with the §3.4 sweep and then compares
//! placements; but the two interact — a smaller analysis might fit
//! co-located where a larger one forces spreading. This module searches
//! the joint space, scoring every (core count, canonical placement)
//! pair with the closed-form predictor and `F(Pᵁ·ᴬ·ᴾ)`.

use runtime::{RuntimeResult, SimRunConfig};
use serde::{Deserialize, Serialize};

use crate::delta::DeltaEvaluator;
use crate::enumerate::EnsembleShape;
use crate::scan::{scan_placements_delta, ScanOptions};
use crate::search::NodeBudget;

/// One point of the joint search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoldablePoint {
    /// Cores per analysis evaluated.
    pub analysis_cores: u32,
    /// Best canonical placement found at that size.
    pub assignment: Vec<usize>,
    /// Its objective `F(Pᵁ·ᴬ·ᴾ)`.
    pub objective: f64,
    /// Its predicted ensemble makespan.
    pub ensemble_makespan: f64,
    /// Nodes it uses.
    pub nodes_used: usize,
    /// Whether every coupling satisfies the paper's Eq. 4 at this size.
    pub eq4_satisfied: bool,
}

/// Result of the moldable search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoldableResult {
    /// Best placement per core count (core-count order).
    pub per_size: Vec<MoldablePoint>,
    /// The overall winner.
    pub best: MoldablePoint,
}

/// Searches core counts × placements for `n` members of
/// `sim_cores + k` analyses under `budget`. Runs the parallel scan
/// engine at its default worker count — see [`moldable_search_with`]
/// for explicit control.
pub fn moldable_search(
    base: &SimRunConfig,
    n: usize,
    sim_cores: u32,
    k: usize,
    candidate_cores: &[u32],
    budget: NodeBudget,
) -> RuntimeResult<MoldableResult> {
    moldable_search_with(base, n, sim_cores, k, candidate_cores, budget, &ScanOptions::default())
}

/// [`moldable_search`] with explicit scan options. Each core count runs
/// one top-1 scan: per-worker [`DeltaEvaluator`]s score the candidates
/// incrementally (bit-identical to from-scratch) and the engine's
/// bounded selection keeps the earliest-enumerated maximum — exactly
/// the placement the old strictly-greater serial loop kept, at any
/// worker count.
pub fn moldable_search_with(
    base: &SimRunConfig,
    n: usize,
    sim_cores: u32,
    k: usize,
    candidate_cores: &[u32],
    budget: NodeBudget,
    opts: &ScanOptions,
) -> RuntimeResult<MoldableResult> {
    assert!(!candidate_cores.is_empty());
    let opts = ScanOptions { top_k: 1, ..*opts };
    let mut per_size = Vec::new();
    for &cores in candidate_cores {
        let shape = EnsembleShape::uniform(n, sim_cores, k, cores);
        let outcome = scan_placements_delta(
            &shape,
            budget,
            &opts,
            || DeltaEvaluator::new(base, &shape),
            |evaluator: &mut DeltaEvaluator,
             _,
             assignment: &[usize],
             hint: Option<usize>|
             -> RuntimeResult<Option<MoldablePoint>> {
                let score = evaluator.score_delta(assignment, hint)?;
                Ok(Some(MoldablePoint {
                    analysis_cores: cores,
                    assignment: assignment.to_vec(),
                    objective: score.objective,
                    ensemble_makespan: score.ensemble_makespan,
                    nodes_used: score.nodes_used,
                    eq4_satisfied: score.eq4_satisfied,
                }))
            },
            DeltaEvaluator::take_counters,
            |p: &MoldablePoint| p.objective,
            || false,
        )?;
        if let Some(best) = outcome.into_values().into_iter().next() {
            per_size.push(best);
        }
    }
    // The paper's methodology (§3.4): first restrict to sizes that
    // minimize the makespan (Eq. 4 holds — no coupling stalls the
    // simulation), then maximize the indicator objective. A pure
    // F-maximization would drift toward undersized analyses: they waste
    // no core-seconds idle, so E/c looks great while the makespan
    // suffers. Fall back to unconstrained F only if no size satisfies
    // Eq. 4 under the budget.
    let best = per_size
        .iter()
        .filter(|p| p.eq4_satisfied)
        .max_by(|a, b| a.objective.total_cmp(&b.objective))
        .or_else(|| per_size.iter().max_by(|a, b| a.objective.total_cmp(&b.objective)))
        .cloned()
        .ok_or(runtime::RuntimeError::NoSamples)?;
    Ok(MoldableResult { per_size, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;
    use runtime::WorkloadMap;

    fn base() -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(ConfigId::Cf.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg
    }

    #[test]
    fn joint_search_picks_eight_core_colocation() {
        // For the paper's workload, 8 analysis cores co-located per
        // member (C1.5 with 8-core analyses) should win the joint space.
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[4, 8, 16],
            NodeBudget { max_nodes: 3, cores_per_node: 32 },
        )
        .unwrap();
        assert_eq!(result.per_size.len(), 3);
        assert_eq!(result.best.analysis_cores, 8, "{:#?}", result.per_size);
        // The winner co-locates: 2 nodes.
        assert_eq!(result.best.nodes_used, 2);
    }

    #[test]
    fn scan_matches_the_one_shot_reference_bitwise() {
        // Regression for the per-candidate `fast_score(base, …)` the old
        // loop paid: the top-1 scan must pick the same placement, with
        // bit-identical floats, as the strictly-greater serial reference
        // over one-shot scores — at several worker counts.
        let base = base();
        let budget = NodeBudget { max_nodes: 3, cores_per_node: 32 };
        let reference: Vec<MoldablePoint> = [4u32, 8, 16]
            .iter()
            .map(|&cores| {
                let shape = EnsembleShape::uniform(2, 16, 1, cores);
                let mut best: Option<MoldablePoint> = None;
                for assignment in
                    crate::enumerate::enumerate_placements(&shape, budget.max_nodes, 32)
                {
                    let spec = shape.materialize(&assignment);
                    let score = crate::fast_eval::fast_score(&base, &spec).unwrap();
                    let point = MoldablePoint {
                        analysis_cores: cores,
                        assignment,
                        objective: score.objective,
                        ensemble_makespan: score.ensemble_makespan,
                        nodes_used: score.nodes_used,
                        eq4_satisfied: score.eq4_satisfied,
                    };
                    if best.as_ref().is_none_or(|b| point.objective > b.objective) {
                        best = Some(point);
                    }
                }
                best.unwrap()
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let result = moldable_search_with(
                &base,
                2,
                16,
                1,
                &[4, 8, 16],
                budget,
                &ScanOptions { workers, chunk: 2, ..Default::default() },
            )
            .unwrap();
            assert_eq!(result.per_size.len(), reference.len());
            for (got, want) in result.per_size.iter().zip(&reference) {
                assert_eq!(got.analysis_cores, want.analysis_cores, "workers={workers}");
                assert_eq!(got.assignment, want.assignment, "workers={workers}");
                assert_eq!(got.objective.to_bits(), want.objective.to_bits());
                assert_eq!(got.ensemble_makespan.to_bits(), want.ensemble_makespan.to_bits());
                assert_eq!(got.eq4_satisfied, want.eq4_satisfied);
            }
        }
    }

    #[test]
    fn four_core_analyses_stall_and_lose() {
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[4, 8],
            NodeBudget { max_nodes: 3, cores_per_node: 32 },
        )
        .unwrap();
        let four = result.per_size.iter().find(|p| p.analysis_cores == 4).unwrap();
        let eight = result.per_size.iter().find(|p| p.analysis_cores == 8).unwrap();
        assert!(
            four.ensemble_makespan > eight.ensemble_makespan,
            "4-core analyses ({:.1}s) must be slower than 8-core ({:.1}s)",
            four.ensemble_makespan,
            eight.ensemble_makespan
        );
    }

    #[test]
    fn oversized_analyses_prevent_colocation() {
        // With 24-core analyses a member needs 40 cores: co-location on
        // a 32-core node is impossible, so the best 24-core placement
        // spreads and scores below the 8-core one.
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[8, 24],
            NodeBudget { max_nodes: 4, cores_per_node: 32 },
        )
        .unwrap();
        let big = result.per_size.iter().find(|p| p.analysis_cores == 24).unwrap();
        let small = result.per_size.iter().find(|p| p.analysis_cores == 8).unwrap();
        assert!(big.nodes_used > 2, "24-core analyses cannot co-locate");
        assert!(small.objective > big.objective);
        assert_eq!(result.best.analysis_cores, 8);
    }

    #[test]
    fn infeasible_sizes_are_skipped() {
        // 40-core analyses fit nowhere on 32-core nodes.
        let result = moldable_search(
            &base(),
            1,
            16,
            1,
            &[8, 40],
            NodeBudget { max_nodes: 2, cores_per_node: 32 },
        )
        .unwrap();
        assert_eq!(result.per_size.len(), 1);
        assert_eq!(result.best.analysis_cores, 8);
    }
}
