//! Moldable scheduling: choose the analysis core count *and* the
//! placement together.
//!
//! The paper fixes analysis cores with the §3.4 sweep and then compares
//! placements; but the two interact — a smaller analysis might fit
//! co-located where a larger one forces spreading. This module searches
//! the joint space, scoring every (core count, canonical placement)
//! pair with the closed-form predictor and `F(Pᵁ·ᴬ·ᴾ)`.

use runtime::{RuntimeResult, SimRunConfig};
use serde::{Deserialize, Serialize};

use crate::enumerate::{enumerate_placements, EnsembleShape};
use crate::fast_eval::fast_score;
use crate::search::NodeBudget;

/// One point of the joint search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoldablePoint {
    /// Cores per analysis evaluated.
    pub analysis_cores: u32,
    /// Best canonical placement found at that size.
    pub assignment: Vec<usize>,
    /// Its objective `F(Pᵁ·ᴬ·ᴾ)`.
    pub objective: f64,
    /// Its predicted ensemble makespan.
    pub ensemble_makespan: f64,
    /// Nodes it uses.
    pub nodes_used: usize,
    /// Whether every coupling satisfies the paper's Eq. 4 at this size.
    pub eq4_satisfied: bool,
}

/// Result of the moldable search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoldableResult {
    /// Best placement per core count (core-count order).
    pub per_size: Vec<MoldablePoint>,
    /// The overall winner.
    pub best: MoldablePoint,
}

/// Searches core counts × placements for `n` members of
/// `sim_cores + k` analyses under `budget`.
pub fn moldable_search(
    base: &SimRunConfig,
    n: usize,
    sim_cores: u32,
    k: usize,
    candidate_cores: &[u32],
    budget: NodeBudget,
) -> RuntimeResult<MoldableResult> {
    assert!(!candidate_cores.is_empty());
    let mut per_size = Vec::new();
    for &cores in candidate_cores {
        let shape = EnsembleShape::uniform(n, sim_cores, k, cores);
        let mut best_here: Option<MoldablePoint> = None;
        for assignment in enumerate_placements(&shape, budget.max_nodes, budget.cores_per_node) {
            let spec = shape.materialize(&assignment);
            let score = fast_score(base, &spec)?;
            let point = MoldablePoint {
                analysis_cores: cores,
                assignment,
                objective: score.objective,
                ensemble_makespan: score.ensemble_makespan,
                nodes_used: score.nodes_used,
                eq4_satisfied: score.eq4_satisfied,
            };
            if best_here.as_ref().is_none_or(|b| point.objective > b.objective) {
                best_here = Some(point);
            }
        }
        if let Some(p) = best_here {
            per_size.push(p);
        }
    }
    // The paper's methodology (§3.4): first restrict to sizes that
    // minimize the makespan (Eq. 4 holds — no coupling stalls the
    // simulation), then maximize the indicator objective. A pure
    // F-maximization would drift toward undersized analyses: they waste
    // no core-seconds idle, so E/c looks great while the makespan
    // suffers. Fall back to unconstrained F only if no size satisfies
    // Eq. 4 under the budget.
    let best = per_size
        .iter()
        .filter(|p| p.eq4_satisfied)
        .max_by(|a, b| a.objective.total_cmp(&b.objective))
        .or_else(|| per_size.iter().max_by(|a, b| a.objective.total_cmp(&b.objective)))
        .cloned()
        .ok_or(runtime::RuntimeError::NoSamples)?;
    Ok(MoldableResult { per_size, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemble_core::ConfigId;
    use runtime::WorkloadMap;

    fn base() -> SimRunConfig {
        let mut cfg = SimRunConfig::paper(ConfigId::Cf.build());
        cfg.workloads = WorkloadMap::small_defaults();
        cfg.n_steps = 8;
        cfg
    }

    #[test]
    fn joint_search_picks_eight_core_colocation() {
        // For the paper's workload, 8 analysis cores co-located per
        // member (C1.5 with 8-core analyses) should win the joint space.
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[4, 8, 16],
            NodeBudget { max_nodes: 3, cores_per_node: 32 },
        )
        .unwrap();
        assert_eq!(result.per_size.len(), 3);
        assert_eq!(result.best.analysis_cores, 8, "{:#?}", result.per_size);
        // The winner co-locates: 2 nodes.
        assert_eq!(result.best.nodes_used, 2);
    }

    #[test]
    fn four_core_analyses_stall_and_lose() {
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[4, 8],
            NodeBudget { max_nodes: 3, cores_per_node: 32 },
        )
        .unwrap();
        let four = result.per_size.iter().find(|p| p.analysis_cores == 4).unwrap();
        let eight = result.per_size.iter().find(|p| p.analysis_cores == 8).unwrap();
        assert!(
            four.ensemble_makespan > eight.ensemble_makespan,
            "4-core analyses ({:.1}s) must be slower than 8-core ({:.1}s)",
            four.ensemble_makespan,
            eight.ensemble_makespan
        );
    }

    #[test]
    fn oversized_analyses_prevent_colocation() {
        // With 24-core analyses a member needs 40 cores: co-location on
        // a 32-core node is impossible, so the best 24-core placement
        // spreads and scores below the 8-core one.
        let result = moldable_search(
            &base(),
            2,
            16,
            1,
            &[8, 24],
            NodeBudget { max_nodes: 4, cores_per_node: 32 },
        )
        .unwrap();
        let big = result.per_size.iter().find(|p| p.analysis_cores == 24).unwrap();
        let small = result.per_size.iter().find(|p| p.analysis_cores == 8).unwrap();
        assert!(big.nodes_used > 2, "24-core analyses cannot co-locate");
        assert!(small.objective > big.objective);
        assert_eq!(result.best.analysis_cores, 8);
    }

    #[test]
    fn infeasible_sizes_are_skipped() {
        // 40-core analyses fit nowhere on 32-core nodes.
        let result = moldable_search(
            &base(),
            1,
            16,
            1,
            &[8, 40],
            NodeBudget { max_nodes: 2, cores_per_node: 32 },
        )
        .unwrap();
        assert_eq!(result.per_size.len(), 1);
        assert_eq!(result.best.analysis_cores, 8);
    }
}
