//! Placement enumeration with node-relabeling symmetry reduction.
//!
//! A placement assigns each component of each member to one node. Nodes
//! are interchangeable (the platform is homogeneous), so placements that
//! differ only by a node permutation are equivalent; enumeration yields
//! one canonical representative per equivalence class.

use ensemble_core::{ComponentSpec, EnsembleSpec, MemberSpec};

/// Structural description of the ensemble to place: per member, the
/// simulation core count and each analysis's core count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleShape {
    /// Per member: (simulation cores, per-analysis cores).
    pub members: Vec<(u32, Vec<u32>)>,
}

impl EnsembleShape {
    /// `n` identical members with `sim_cores` and `k` analyses of
    /// `ana_cores` each — the paper's shapes.
    pub fn uniform(n: usize, sim_cores: u32, k: usize, ana_cores: u32) -> Self {
        EnsembleShape { members: vec![(sim_cores, vec![ana_cores; k]); n] }
    }

    /// Total components (simulations + analyses).
    pub fn num_components(&self) -> usize {
        self.members.iter().map(|(_, a)| 1 + a.len()).sum()
    }

    /// Core demand of component `idx` in flattened order (member-major,
    /// simulation first).
    pub(crate) fn component_cores(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.num_components());
        for (sim, anas) in &self.members {
            v.push(*sim);
            v.extend(anas.iter().copied());
        }
        v
    }

    /// Materializes an [`EnsembleSpec`] from a flattened node assignment.
    pub fn materialize(&self, assignment: &[usize]) -> EnsembleSpec {
        assert_eq!(assignment.len(), self.num_components());
        let mut members = Vec::with_capacity(self.members.len());
        let mut slots = assignment.iter().copied();
        for (sim_cores, anas) in &self.members {
            let sim = ComponentSpec::simulation(*sim_cores, slots.next().expect("length checked"));
            let analyses = anas
                .iter()
                .map(|&c| ComponentSpec::analysis(c, slots.next().expect("length checked")))
                .collect();
            members.push(MemberSpec::new(sim, analyses));
        }
        EnsembleSpec::new(members)
    }
}

/// Canonicalizes an assignment by relabeling nodes in order of first
/// appearance: `[2, 0, 2, 1]` → `[0, 1, 0, 2]`.
///
/// Linear: one pass to size a node→label table, one pass to fill and
/// apply it (the old inner `position` scan made this quadratic in the
/// number of distinct nodes, which the annealing inner loop felt).
pub fn canonicalize(assignment: &[usize]) -> Vec<usize> {
    const UNLABELED: usize = usize::MAX;
    let table_len = assignment.iter().max().map_or(0, |&m| m + 1);
    let mut label = vec![UNLABELED; table_len];
    let mut next = 0usize;
    assignment
        .iter()
        .map(|&n| {
            if label[n] == UNLABELED {
                label[n] = next;
                next += 1;
            }
            label[n]
        })
        .collect()
}

/// Lazy, resumable enumerator of canonical feasible placements — the
/// streaming form of [`enumerate_placements`].
///
/// Depth-first with the canonical-prefix rule (component `i` may use
/// node `t` only if `t ≤ max-node-used-so-far + 1`), held as an explicit
/// backtracking stack so enumeration can pause after any assignment and
/// resume where it left off. Candidates are produced in exactly the
/// order the old recursive enumeration materialized them, one at a
/// time: no `O(candidates)` allocation up front, which is what lets the
/// parallel scan engine ([`crate::scan`]) stream chunks to workers at
/// paper scale (millions of candidates).
#[derive(Debug, Clone)]
pub struct PlacementIter {
    cores: Vec<u32>,
    max_nodes: usize,
    cores_per_node: u32,
    /// Current (partial) assignment; positions `< depth` are placed.
    assignment: Vec<usize>,
    /// Core load per node under the current partial assignment.
    used: Vec<u32>,
    /// Per depth: the next node index to try when (re)entering it.
    next: Vec<usize>,
    /// Per depth: number of distinct nodes used by the prefix before it
    /// (the recursive formulation's `max_used` argument).
    prefix_max: Vec<usize>,
    depth: usize,
    /// True while `assignment` holds the just-yielded complete leaf.
    at_leaf: bool,
    done: bool,
    yielded: usize,
    /// Lowest depth the DFS backtracked to since the last yield — every
    /// position below it is unchanged from the previous assignment.
    low_water: usize,
}

impl PlacementIter {
    /// Starts enumeration of `shape` onto at most `max_nodes` nodes of
    /// `cores_per_node` cores.
    pub fn new(shape: &EnsembleShape, max_nodes: usize, cores_per_node: u32) -> Self {
        let cores = shape.component_cores();
        let n = cores.len();
        PlacementIter {
            assignment: vec![0; n],
            used: vec![0; max_nodes],
            next: vec![0; n + 1],
            prefix_max: vec![0; n + 1],
            depth: 0,
            at_leaf: false,
            done: n == 0 || max_nodes == 0,
            yielded: 0,
            low_water: 0,
            cores,
            max_nodes,
            cores_per_node,
        }
    }

    /// Assignments yielded so far — the enumeration index of the *next*
    /// assignment [`advance`](Self::advance) will return.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Advances to the next canonical feasible assignment. The returned
    /// slice aliases internal state and is valid until the next call;
    /// callers that keep it must copy it out.
    pub fn advance(&mut self) -> Option<&[usize]> {
        self.advance_delta().map(|(assignment, _)| assignment)
    }

    /// [`advance`](Self::advance), also reporting the first position at
    /// which the returned assignment differs from the previously
    /// returned one: `assignment[..first_changed]` is unchanged. The
    /// report is conservative (it is the lowest depth the DFS
    /// backtracked to, which may precede the first *actual* difference)
    /// and meaningless on the first yield, where there is no
    /// predecessor.
    pub fn advance_delta(&mut self) -> Option<(&[usize], usize)> {
        if self.done {
            return None;
        }
        let n = self.cores.len();
        if self.at_leaf {
            // Backtrack off the leaf yielded by the previous call.
            self.at_leaf = false;
            self.depth -= 1;
            self.low_water = self.low_water.min(self.depth);
            self.used[self.assignment[self.depth]] -= self.cores[self.depth];
        }
        loop {
            if self.depth == n {
                self.at_leaf = true;
                self.yielded += 1;
                let first_changed = self.low_water;
                self.low_water = n;
                return Some((&self.assignment, first_changed));
            }
            let limit = self.prefix_max[self.depth].min(self.max_nodes - 1);
            let mut t = self.next[self.depth];
            while t <= limit && self.used[t] + self.cores[self.depth] > self.cores_per_node {
                t += 1;
            }
            if t <= limit {
                self.used[t] += self.cores[self.depth];
                self.assignment[self.depth] = t;
                self.next[self.depth] = t + 1;
                self.prefix_max[self.depth + 1] = self.prefix_max[self.depth].max(t + 1);
                self.depth += 1;
                self.next[self.depth] = 0;
            } else if self.depth == 0 {
                self.done = true;
                return None;
            } else {
                self.depth -= 1;
                self.low_water = self.low_water.min(self.depth);
                self.used[self.assignment[self.depth]] -= self.cores[self.depth];
            }
        }
    }

    /// Appends up to `n` `(enumeration index, assignment)` pairs to
    /// `out`, returning how many were produced (short only at
    /// exhaustion). The batching primitive the scan engine's chunk feed
    /// is built on.
    pub fn next_chunk(&mut self, out: &mut Vec<(usize, Vec<usize>)>, n: usize) -> usize {
        let mut got = 0;
        while got < n {
            let index = self.yielded;
            match self.advance() {
                Some(assignment) => {
                    out.push((index, assignment.to_vec()));
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// [`next_chunk`](Self::next_chunk), with each entry carrying the
    /// first-changed position relative to the assignment enumerated
    /// immediately before it (`None` for enumeration index 0, which has
    /// no predecessor). Feeds delta-scoring scan workers
    /// ([`crate::scan::scan_placements_delta`]).
    pub fn next_chunk_delta(
        &mut self,
        out: &mut Vec<(usize, Vec<usize>, Option<usize>)>,
        n: usize,
    ) -> usize {
        let mut got = 0;
        while got < n {
            let index = self.yielded;
            match self.advance_delta() {
                Some((assignment, first_changed)) => {
                    let hint = (index > 0).then_some(first_changed);
                    out.push((index, assignment.to_vec(), hint));
                    got += 1;
                }
                None => break,
            }
        }
        got
    }
}

impl Iterator for PlacementIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.advance().map(<[usize]>::to_vec)
    }
}

/// Enumerates all canonical feasible placements of `shape` onto at most
/// `max_nodes` nodes of `cores_per_node` cores.
///
/// Returned assignments are flattened node indexes (member-major,
/// simulation first), each canonical under node relabeling, each
/// respecting per-node core capacity. Materializes the whole space —
/// prefer [`PlacementIter`] (or [`crate::scan`]) when the space is
/// large.
pub fn enumerate_placements(
    shape: &EnsembleShape,
    max_nodes: usize,
    cores_per_node: u32,
) -> Vec<Vec<usize>> {
    PlacementIter::new(shape, max_nodes, cores_per_node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_examples() {
        assert_eq!(canonicalize(&[2, 0, 2, 1]), vec![0, 1, 0, 2]);
        assert_eq!(canonicalize(&[0, 0, 0]), vec![0, 0, 0]);
        assert_eq!(canonicalize(&[5]), vec![0]);
        assert!(canonicalize(&[]).is_empty());
    }

    #[test]
    fn enumeration_is_canonical_and_unique() {
        let shape = EnsembleShape::uniform(1, 16, 1, 8);
        let placements = enumerate_placements(&shape, 2, 32);
        // Two components, two nodes: {same node, different nodes}.
        assert_eq!(placements.len(), 2);
        for p in &placements {
            assert_eq!(p, &canonicalize(p), "must already be canonical");
        }
        let mut dedup = placements.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), placements.len());
    }

    #[test]
    fn capacity_prunes_infeasible() {
        // Two 16-core sims + two 8-core analyses can't all fit one
        // 32-core node.
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let placements = enumerate_placements(&shape, 1, 32);
        assert!(placements.is_empty(), "48 cores cannot fit a single node");
        let on_two = enumerate_placements(&shape, 2, 32);
        assert!(!on_two.is_empty());
        for p in &on_two {
            let mut load = [0u32; 2];
            let cores = [16u32, 8, 16, 8];
            for (c, &n) in cores.iter().zip(p) {
                load[n] += c;
            }
            assert!(load.iter().all(|&l| l <= 32), "{p:?} overloads a node");
        }
    }

    #[test]
    fn paper_set_one_space_is_covered() {
        // 2 members × (sim + 1 analysis) on ≤ 3 nodes of 32 cores. All
        // of C1.1–C1.5 must appear among the canonical placements.
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let placements = enumerate_placements(&shape, 3, 32);
        // Flattened order: [sim1, ana1, sim2, ana2].
        let expect = [
            canonicalize(&[0, 2, 1, 2]), // C1.1
            canonicalize(&[0, 1, 0, 2]), // C1.2
            canonicalize(&[0, 0, 1, 2]), // C1.3
            canonicalize(&[0, 1, 0, 1]), // C1.4
            canonicalize(&[0, 0, 1, 1]), // C1.5
        ];
        for (i, e) in expect.iter().enumerate() {
            assert!(placements.contains(e), "C1.{} missing from enumeration", i + 1);
        }
    }

    #[test]
    fn materialize_roundtrip() {
        let shape = EnsembleShape::uniform(2, 16, 2, 8);
        let spec = shape.materialize(&[0, 0, 0, 1, 1, 1]);
        assert_eq!(spec.n(), 2);
        assert_eq!(spec.members[0].simulation.nodes, std::collections::BTreeSet::from([0]));
        assert_eq!(spec.members[1].analyses[1].nodes, std::collections::BTreeSet::from([1]));
        spec.validate(Some(32)).unwrap();
    }

    #[test]
    fn component_count() {
        assert_eq!(EnsembleShape::uniform(2, 16, 2, 8).num_components(), 6);
    }

    #[test]
    fn placement_iter_streams_the_materialized_enumeration() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let materialized = enumerate_placements(&shape, 3, 32);
        let streamed: Vec<Vec<usize>> = PlacementIter::new(&shape, 3, 32).collect();
        assert_eq!(streamed, materialized, "identical content in identical order");
    }

    #[test]
    fn placement_iter_chunked_pulls_reassemble_exactly() {
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let materialized = enumerate_placements(&shape, 3, 32);
        for chunk in [1usize, 2, 3, 7, 100] {
            let mut it = PlacementIter::new(&shape, 3, 32);
            let mut out = Vec::new();
            loop {
                let got = it.next_chunk(&mut out, chunk);
                if got < chunk {
                    break;
                }
            }
            assert_eq!(out.len(), materialized.len(), "chunk={chunk}");
            for (i, (index, assignment)) in out.iter().enumerate() {
                assert_eq!(*index, i, "indexes are the enumeration order");
                assert_eq!(assignment, &materialized[i], "chunk={chunk}");
            }
            assert_eq!(it.yielded(), materialized.len());
            // Once drained, the iterator stays drained.
            assert_eq!(it.next_chunk(&mut out, chunk), 0);
        }
    }

    #[test]
    fn delta_chunks_report_valid_first_changed_positions() {
        let shape = EnsembleShape::uniform(2, 16, 2, 8);
        let materialized = enumerate_placements(&shape, 4, 32);
        for chunk in [1usize, 2, 3, 7, 100] {
            let mut it = PlacementIter::new(&shape, 4, 32);
            let mut out = Vec::new();
            loop {
                let got = it.next_chunk_delta(&mut out, chunk);
                if got < chunk {
                    break;
                }
            }
            assert_eq!(out.len(), materialized.len(), "chunk={chunk}");
            for (i, (index, assignment, hint)) in out.iter().enumerate() {
                assert_eq!(*index, i);
                assert_eq!(assignment, &materialized[i], "chunk={chunk}");
                match hint {
                    None => assert_eq!(i, 0, "only the first assignment lacks a predecessor"),
                    Some(fc) => {
                        assert!(*fc < assignment.len());
                        assert_eq!(
                            assignment[..*fc],
                            materialized[i - 1][..*fc],
                            "hint must never skip a real change (chunk={chunk}, index={i})"
                        );
                        // The hint is tight for this DFS: the position it
                        // names really did change.
                        assert_ne!(
                            assignment[*fc],
                            materialized[i - 1][*fc],
                            "chunk={chunk}, index={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn placement_iter_degenerate_spaces_are_empty() {
        let shape = EnsembleShape::uniform(1, 16, 1, 8);
        assert_eq!(PlacementIter::new(&shape, 0, 32).count(), 0, "zero nodes");
        let empty = EnsembleShape { members: vec![] };
        assert_eq!(PlacementIter::new(&empty, 3, 32).count(), 0, "zero components");
    }

    #[test]
    fn canonicalize_matches_first_appearance_reference() {
        // Reference: the old quadratic position-scan implementation.
        fn reference(assignment: &[usize]) -> Vec<usize> {
            let mut mapping: Vec<usize> = Vec::new();
            assignment
                .iter()
                .map(|&n| {
                    if let Some(pos) = mapping.iter().position(|&m| m == n) {
                        pos
                    } else {
                        mapping.push(n);
                        mapping.len() - 1
                    }
                })
                .collect()
        }
        for case in
            [vec![], vec![0], vec![9], vec![3, 3, 3], vec![2, 0, 2, 1], vec![7, 0, 7, 3, 3, 1, 0]]
        {
            assert_eq!(canonicalize(&case), reference(&case), "{case:?}");
        }
    }
}
