//! Placement enumeration with node-relabeling symmetry reduction.
//!
//! A placement assigns each component of each member to one node. Nodes
//! are interchangeable (the platform is homogeneous), so placements that
//! differ only by a node permutation are equivalent; enumeration yields
//! one canonical representative per equivalence class.

use ensemble_core::{ComponentSpec, EnsembleSpec, MemberSpec};

/// Structural description of the ensemble to place: per member, the
/// simulation core count and each analysis's core count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleShape {
    /// Per member: (simulation cores, per-analysis cores).
    pub members: Vec<(u32, Vec<u32>)>,
}

impl EnsembleShape {
    /// `n` identical members with `sim_cores` and `k` analyses of
    /// `ana_cores` each — the paper's shapes.
    pub fn uniform(n: usize, sim_cores: u32, k: usize, ana_cores: u32) -> Self {
        EnsembleShape { members: vec![(sim_cores, vec![ana_cores; k]); n] }
    }

    /// Total components (simulations + analyses).
    pub fn num_components(&self) -> usize {
        self.members.iter().map(|(_, a)| 1 + a.len()).sum()
    }

    /// Core demand of component `idx` in flattened order (member-major,
    /// simulation first).
    fn component_cores(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.num_components());
        for (sim, anas) in &self.members {
            v.push(*sim);
            v.extend(anas.iter().copied());
        }
        v
    }

    /// Materializes an [`EnsembleSpec`] from a flattened node assignment.
    pub fn materialize(&self, assignment: &[usize]) -> EnsembleSpec {
        assert_eq!(assignment.len(), self.num_components());
        let mut members = Vec::with_capacity(self.members.len());
        let mut slots = assignment.iter().copied();
        for (sim_cores, anas) in &self.members {
            let sim = ComponentSpec::simulation(*sim_cores, slots.next().expect("length checked"));
            let analyses = anas
                .iter()
                .map(|&c| ComponentSpec::analysis(c, slots.next().expect("length checked")))
                .collect();
            members.push(MemberSpec::new(sim, analyses));
        }
        EnsembleSpec::new(members)
    }
}

/// Canonicalizes an assignment by relabeling nodes in order of first
/// appearance: `[2, 0, 2, 1]` → `[0, 1, 0, 2]`.
pub fn canonicalize(assignment: &[usize]) -> Vec<usize> {
    let mut mapping: Vec<usize> = Vec::new();
    assignment
        .iter()
        .map(|&n| {
            if let Some(pos) = mapping.iter().position(|&m| m == n) {
                pos
            } else {
                mapping.push(n);
                mapping.len() - 1
            }
        })
        .collect()
}

/// Enumerates all canonical feasible placements of `shape` onto at most
/// `max_nodes` nodes of `cores_per_node` cores.
///
/// Returned assignments are flattened node indexes (member-major,
/// simulation first), each canonical under node relabeling, each
/// respecting per-node core capacity.
pub fn enumerate_placements(
    shape: &EnsembleShape,
    max_nodes: usize,
    cores_per_node: u32,
) -> Vec<Vec<usize>> {
    let cores = shape.component_cores();
    let n = cores.len();
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; n];
    let mut used = vec![0u32; max_nodes];

    // Depth-first with the canonical-prefix rule: component `i` may use
    // node `t` only if t ≤ (max node used so far) + 1 — generating each
    // canonical labeling exactly once.
    #[allow(clippy::too_many_arguments)] // recursion state spelled out beats a one-off struct
    fn dfs(
        i: usize,
        max_used: usize,
        cores: &[u32],
        cores_per_node: u32,
        max_nodes: usize,
        assignment: &mut Vec<usize>,
        used: &mut Vec<u32>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == cores.len() {
            out.push(assignment.clone());
            return;
        }
        let limit = max_used.min(max_nodes - 1);
        for t in 0..=limit {
            if used[t] + cores[i] > cores_per_node {
                continue;
            }
            used[t] += cores[i];
            assignment[i] = t;
            dfs(
                i + 1,
                max_used.max(t + 1),
                cores,
                cores_per_node,
                max_nodes,
                assignment,
                used,
                out,
            );
            used[t] -= cores[i];
        }
    }

    if n > 0 && max_nodes > 0 {
        dfs(0, 0, &cores, cores_per_node, max_nodes, &mut assignment, &mut used, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_examples() {
        assert_eq!(canonicalize(&[2, 0, 2, 1]), vec![0, 1, 0, 2]);
        assert_eq!(canonicalize(&[0, 0, 0]), vec![0, 0, 0]);
        assert_eq!(canonicalize(&[5]), vec![0]);
        assert!(canonicalize(&[]).is_empty());
    }

    #[test]
    fn enumeration_is_canonical_and_unique() {
        let shape = EnsembleShape::uniform(1, 16, 1, 8);
        let placements = enumerate_placements(&shape, 2, 32);
        // Two components, two nodes: {same node, different nodes}.
        assert_eq!(placements.len(), 2);
        for p in &placements {
            assert_eq!(p, &canonicalize(p), "must already be canonical");
        }
        let mut dedup = placements.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), placements.len());
    }

    #[test]
    fn capacity_prunes_infeasible() {
        // Two 16-core sims + two 8-core analyses can't all fit one
        // 32-core node.
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let placements = enumerate_placements(&shape, 1, 32);
        assert!(placements.is_empty(), "48 cores cannot fit a single node");
        let on_two = enumerate_placements(&shape, 2, 32);
        assert!(!on_two.is_empty());
        for p in &on_two {
            let mut load = [0u32; 2];
            let cores = [16u32, 8, 16, 8];
            for (c, &n) in cores.iter().zip(p) {
                load[n] += c;
            }
            assert!(load.iter().all(|&l| l <= 32), "{p:?} overloads a node");
        }
    }

    #[test]
    fn paper_set_one_space_is_covered() {
        // 2 members × (sim + 1 analysis) on ≤ 3 nodes of 32 cores. All
        // of C1.1–C1.5 must appear among the canonical placements.
        let shape = EnsembleShape::uniform(2, 16, 1, 8);
        let placements = enumerate_placements(&shape, 3, 32);
        // Flattened order: [sim1, ana1, sim2, ana2].
        let expect = [
            canonicalize(&[0, 2, 1, 2]), // C1.1
            canonicalize(&[0, 1, 0, 2]), // C1.2
            canonicalize(&[0, 0, 1, 2]), // C1.3
            canonicalize(&[0, 1, 0, 1]), // C1.4
            canonicalize(&[0, 0, 1, 1]), // C1.5
        ];
        for (i, e) in expect.iter().enumerate() {
            assert!(placements.contains(e), "C1.{} missing from enumeration", i + 1);
        }
    }

    #[test]
    fn materialize_roundtrip() {
        let shape = EnsembleShape::uniform(2, 16, 2, 8);
        let spec = shape.materialize(&[0, 0, 0, 1, 1, 1]);
        assert_eq!(spec.n(), 2);
        assert_eq!(spec.members[0].simulation.nodes, std::collections::BTreeSet::from([0]));
        assert_eq!(spec.members[1].analyses[1].nodes, std::collections::BTreeSet::from([1]));
        spec.validate(Some(32)).unwrap();
    }

    #[test]
    fn component_count() {
        assert_eq!(EnsembleShape::uniform(2, 16, 2, 8).num_components(), 6);
    }
}
