//! The paper's experimental configurations: Table 2 (sets `C_f`, `C_c`,
//! `C1.1`–`C1.5`, one analysis per simulation) and Table 4
//! (`C2.1`–`C2.8`, two analyses per simulation).
//!
//! Every simulation uses 16 cores and every analysis 8 cores, as selected
//! by §2.2 / §3.4.

use serde::{Deserialize, Serialize};

use crate::component::ComponentSpec;
use crate::ensemble::EnsembleSpec;
use crate::member::MemberSpec;

/// Cores per simulation in the paper's experiments.
pub const SIM_CORES: u32 = 16;
/// Cores per analysis in the paper's experiments.
pub const ANALYSIS_CORES: u32 = 8;

/// Named experimental configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum ConfigId {
    /// Co-location-free elementary config: one member, sim and analysis
    /// on separate nodes.
    Cf,
    /// Co-located elementary config: one member on a single node.
    Cc,
    /// Two members; both analyses share a node, sims dedicated.
    C1_1,
    /// Two members; both sims share a node, analyses dedicated.
    C1_2,
    /// Two members; member 1 co-located, member 2 split.
    C1_3,
    /// Two members; sims share a node, analyses share another.
    C1_4,
    /// Two members; each member fully co-located on its own node.
    C1_5,
    /// Two analyses/sim; all four analyses share node 2.
    C2_1,
    /// Two analyses/sim; sims share node 0, each member's analyses share
    /// a dedicated node.
    C2_2,
    /// Two analyses/sim; sims share node 0, analyses interleaved over
    /// nodes 1 and 2.
    C2_3,
    /// Two analyses/sim; one analysis co-located per member, second
    /// analyses share node 2.
    C2_4,
    /// Two analyses/sim; cross-placed analyses (member 1's on nodes 1,2;
    /// member 2's on nodes 0,2).
    C2_5,
    /// Two analyses/sim on 2 nodes; sims share node 0, all analyses on
    /// node 1.
    C2_6,
    /// Two analyses/sim on 2 nodes; first analyses on node 0, second on
    /// node 1, sims split.
    C2_7,
    /// Two analyses/sim on 2 nodes; each member fully co-located.
    C2_8,
}

impl ConfigId {
    /// The paper's label, e.g. "C1.4".
    pub fn label(self) -> &'static str {
        match self {
            ConfigId::Cf => "C_f",
            ConfigId::Cc => "C_c",
            ConfigId::C1_1 => "C1.1",
            ConfigId::C1_2 => "C1.2",
            ConfigId::C1_3 => "C1.3",
            ConfigId::C1_4 => "C1.4",
            ConfigId::C1_5 => "C1.5",
            ConfigId::C2_1 => "C2.1",
            ConfigId::C2_2 => "C2.2",
            ConfigId::C2_3 => "C2.3",
            ConfigId::C2_4 => "C2.4",
            ConfigId::C2_5 => "C2.5",
            ConfigId::C2_6 => "C2.6",
            ConfigId::C2_7 => "C2.7",
            ConfigId::C2_8 => "C2.8",
        }
    }

    /// Number of nodes the configuration provisions (Tables 2 and 4).
    pub fn nodes(self) -> usize {
        self.build().num_nodes()
    }

    /// Builds the ensemble spec for the configuration.
    pub fn build(self) -> EnsembleSpec {
        // (sim_node, [analysis nodes]) per member.
        let members: Vec<(usize, Vec<usize>)> = match self {
            ConfigId::Cf => vec![(0, vec![1])],
            ConfigId::Cc => vec![(0, vec![0])],
            ConfigId::C1_1 => vec![(0, vec![2]), (1, vec![2])],
            ConfigId::C1_2 => vec![(0, vec![1]), (0, vec![2])],
            ConfigId::C1_3 => vec![(0, vec![0]), (1, vec![2])],
            ConfigId::C1_4 => vec![(0, vec![1]), (0, vec![1])],
            ConfigId::C1_5 => vec![(0, vec![0]), (1, vec![1])],
            ConfigId::C2_1 => vec![(0, vec![2, 2]), (1, vec![2, 2])],
            ConfigId::C2_2 => vec![(0, vec![1, 1]), (0, vec![2, 2])],
            ConfigId::C2_3 => vec![(0, vec![1, 2]), (0, vec![1, 2])],
            ConfigId::C2_4 => vec![(0, vec![0, 2]), (1, vec![1, 2])],
            ConfigId::C2_5 => vec![(0, vec![1, 2]), (1, vec![0, 2])],
            ConfigId::C2_6 => vec![(0, vec![1, 1]), (0, vec![1, 1])],
            ConfigId::C2_7 => vec![(0, vec![0, 1]), (1, vec![0, 1])],
            ConfigId::C2_8 => vec![(0, vec![0, 0]), (1, vec![1, 1])],
        };
        EnsembleSpec::new(
            members
                .into_iter()
                .map(|(sim_node, ana_nodes)| {
                    MemberSpec::new(
                        ComponentSpec::simulation(SIM_CORES, sim_node),
                        ana_nodes
                            .into_iter()
                            .map(|n| ComponentSpec::analysis(ANALYSIS_CORES, n))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Table 2: the one-analysis-per-simulation set (including the
    /// elementary `C_f`, `C_c`).
    pub fn set_one() -> Vec<ConfigId> {
        vec![
            ConfigId::Cf,
            ConfigId::Cc,
            ConfigId::C1_1,
            ConfigId::C1_2,
            ConfigId::C1_3,
            ConfigId::C1_4,
            ConfigId::C1_5,
        ]
    }

    /// The two-member subset of Table 2 compared in Figure 8.
    pub fn set_one_pairs() -> Vec<ConfigId> {
        vec![ConfigId::C1_1, ConfigId::C1_2, ConfigId::C1_3, ConfigId::C1_4, ConfigId::C1_5]
    }

    /// Table 4: the two-analyses-per-simulation set (Figure 9).
    pub fn set_two() -> Vec<ConfigId> {
        vec![
            ConfigId::C2_1,
            ConfigId::C2_2,
            ConfigId::C2_3,
            ConfigId::C2_4,
            ConfigId::C2_5,
            ConfigId::C2_6,
            ConfigId::C2_7,
            ConfigId::C2_8,
        ]
    }

    /// Every configuration of the paper.
    pub fn all() -> Vec<ConfigId> {
        let mut v = Self::set_one();
        v.extend(Self::set_two());
        v
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_node_counts_match_paper() {
        assert_eq!(ConfigId::Cf.nodes(), 2);
        assert_eq!(ConfigId::Cc.nodes(), 1);
        assert_eq!(ConfigId::C1_1.nodes(), 3);
        assert_eq!(ConfigId::C1_2.nodes(), 3);
        assert_eq!(ConfigId::C1_3.nodes(), 3);
        assert_eq!(ConfigId::C1_4.nodes(), 2);
        assert_eq!(ConfigId::C1_5.nodes(), 2);
    }

    #[test]
    fn table4_node_counts_match_paper() {
        for (cfg, nodes) in [
            (ConfigId::C2_1, 3),
            (ConfigId::C2_2, 3),
            (ConfigId::C2_3, 3),
            (ConfigId::C2_4, 3),
            (ConfigId::C2_5, 3),
            (ConfigId::C2_6, 2),
            (ConfigId::C2_7, 2),
            (ConfigId::C2_8, 2),
        ] {
            assert_eq!(cfg.nodes(), nodes, "{cfg}");
        }
    }

    #[test]
    fn member_counts() {
        assert_eq!(ConfigId::Cf.build().n(), 1);
        assert_eq!(ConfigId::Cc.build().n(), 1);
        for cfg in ConfigId::set_one_pairs().into_iter().chain(ConfigId::set_two()) {
            assert_eq!(cfg.build().n(), 2, "{cfg}");
        }
    }

    #[test]
    fn k_per_member() {
        for cfg in ConfigId::set_one() {
            assert!(cfg.build().members.iter().all(|m| m.k() == 1), "{cfg}");
        }
        for cfg in ConfigId::set_two() {
            assert!(cfg.build().members.iter().all(|m| m.k() == 2), "{cfg}");
        }
    }

    #[test]
    fn every_config_fits_cori_nodes() {
        // 32 cores per node on Cori; all Table 2/4 placements must fit.
        for cfg in ConfigId::all() {
            cfg.build().validate(Some(32)).unwrap_or_else(|e| panic!("{cfg}: {e}"));
        }
    }

    #[test]
    fn c1_5_and_c2_8_are_fully_colocated() {
        for cfg in [ConfigId::C1_5, ConfigId::C2_8] {
            let e = cfg.build();
            for m in &e.members {
                for j in 0..m.k() {
                    assert!(m.is_colocated(j), "{cfg} must co-locate all couplings");
                }
            }
        }
    }

    #[test]
    fn saturated_configs_use_full_nodes() {
        // C2.6–C2.8 pack 64 cores onto 2 nodes (the paper notes the
        // saturation).
        for cfg in [ConfigId::C2_6, ConfigId::C2_7, ConfigId::C2_8] {
            let e = cfg.build();
            let total: u32 = e.members.iter().map(|m| m.total_cores()).sum();
            assert_eq!(total, 64, "{cfg}");
            assert_eq!(e.num_nodes(), 2, "{cfg}");
        }
    }

    #[test]
    fn labels_roundtrip() {
        assert_eq!(ConfigId::C1_4.to_string(), "C1.4");
        assert_eq!(ConfigId::Cf.to_string(), "C_f");
        assert_eq!(ConfigId::all().len(), 15);
    }

    #[test]
    fn paper_example_node_sets() {
        // §4.1: in C1.1, s₁={0}, a₁¹={2}, s₂={1}, a₂¹={2}.
        let e = ConfigId::C1_1.build();
        assert_eq!(e.members[0].simulation.nodes, std::collections::BTreeSet::from([0]));
        assert_eq!(e.members[0].analyses[0].nodes, std::collections::BTreeSet::from([2]));
        assert_eq!(e.members[1].simulation.nodes, std::collections::BTreeSet::from([1]));
        assert_eq!(e.members[1].analyses[0].nodes, std::collections::BTreeSet::from([2]));
    }
}
