//! The ensemble-level objective (paper §5.1, Eq. 9):
//!
//! ```text
//! F(P) = P̄ − √( (1/N) Σᵢ (Pᵢ − P̄)² )
//! ```
//!
//! mean minus **population** standard deviation — penalizing
//! configurations whose members perform unevenly, because the ensemble
//! makespan is the *maximum* member makespan.

use serde::{Deserialize, Serialize};

/// Aggregation strategies; [`Aggregation::MeanMinusStd`] is Eq. 9, the
/// others exist for the objective ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// Eq. 9: mean − population standard deviation.
    #[default]
    MeanMinusStd,
    /// Plain mean (ignores member variability).
    Mean,
    /// Worst member (most conservative).
    Min,
}

/// Evaluates the chosen aggregation over per-member indicator values.
///
/// # Panics
/// Panics on an empty slice — an ensemble has at least one member.
pub fn aggregate(values: &[f64], how: Aggregation) -> f64 {
    assert!(!values.is_empty(), "objective needs at least one member value");
    match how {
        Aggregation::MeanMinusStd => objective(values),
        Aggregation::Mean => mean(values),
        Aggregation::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
    }
}

/// Eq. 9.
pub fn objective(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "objective needs at least one member value");
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    m - var.sqrt()
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_is_its_own_objective() {
        assert!((objective(&[0.42]) - 0.42).abs() < 1e-15);
    }

    #[test]
    fn uniform_members_lose_nothing() {
        assert!((objective(&[0.3, 0.3, 0.3]) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn variability_is_penalized() {
        let even = objective(&[0.5, 0.5]);
        let uneven = objective(&[0.9, 0.1]);
        assert!(even > uneven, "same mean, higher spread must score lower");
        // Hand computation: mean 0.5, std 0.4.
        assert!((uneven - 0.1).abs() < 1e-12);
    }

    #[test]
    fn population_std_is_used() {
        // Sample std of [2, 4] is √2; population std is 1. Eq. 9 uses N.
        assert!((objective(&[2.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregations_differ_where_expected() {
        let v = [0.9, 0.1];
        assert!((aggregate(&v, Aggregation::Mean) - 0.5).abs() < 1e-12);
        assert!((aggregate(&v, Aggregation::Min) - 0.1).abs() < 1e-12);
        assert!(aggregate(&v, Aggregation::MeanMinusStd) < aggregate(&v, Aggregation::Mean));
    }

    #[test]
    fn objective_can_go_negative_on_extreme_spread() {
        // One fast, one starving member: mean 0.5 of {0, 1}, std 0.5 → 0.
        assert!(objective(&[0.0, 1.0]).abs() < 1e-12);
        assert!(objective(&[0.0, 0.0, 3.0]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_values_panic() {
        objective(&[]);
    }
}
