//! Errors of the ensemble model.

use std::fmt;

/// Validation and computation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A member has no analyses (K must be ≥ 1).
    NoAnalyses {
        /// Offending member index.
        member: usize,
    },
    /// A component requests zero cores.
    ZeroCores {
        /// Offending member index.
        member: usize,
        /// Offending component description.
        component: String,
    },
    /// A component's node set is empty.
    EmptyNodeSet {
        /// Offending member index.
        member: usize,
        /// Offending component description.
        component: String,
    },
    /// The components placed on a node request more cores than it has.
    NodeOverSubscribed {
        /// Offending node index.
        node: usize,
        /// Cores requested in total.
        requested: u32,
        /// Cores per node available.
        capacity: u32,
    },
    /// An ensemble has no members.
    EmptyEnsemble,
    /// Stage-time inputs were invalid (negative or non-finite).
    InvalidStageTimes {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoAnalyses { member } => {
                write!(f, "member {member} has no analyses (K ≥ 1 required)")
            }
            ModelError::ZeroCores { member, component } => {
                write!(f, "member {member}: component {component} requests zero cores")
            }
            ModelError::EmptyNodeSet { member, component } => {
                write!(f, "member {member}: component {component} has an empty node set")
            }
            ModelError::NodeOverSubscribed { node, requested, capacity } => {
                write!(f, "node {node} over-subscribed: {requested} cores requested, {capacity} available")
            }
            ModelError::EmptyEnsemble => write!(f, "ensemble has no members"),
            ModelError::InvalidStageTimes { detail } => write!(f, "invalid stage times: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        let e = ModelError::NodeOverSubscribed { node: 1, requested: 40, capacity: 32 };
        assert!(e.to_string().contains("node 1"));
        assert!(ModelError::EmptyEnsemble.to_string().contains("no members"));
    }
}
