//! Computational efficiency of an ensemble member (paper §3.3, Eq. 3):
//!
//! ```text
//! E = (1/K) Σᵢ (1 − (Iˢ* + Iᴬⁱ*) / σ̄*)
//!   = (S* + W*)/σ̄* + (Σᵢ Aⁱ* + Rⁱ*)/(K σ̄*) − 1
//! ```
//!
//! Maximizing `E` minimizes idle time and, through Eq. 2, the member
//! makespan.

use crate::insitu_step::{idle_times, sigma_star};
use crate::stage::MemberStageTimes;

/// Eq. 3 via the closed form.
pub fn efficiency(times: &MemberStageTimes) -> f64 {
    let sigma = sigma_star(times);
    if sigma <= 0.0 {
        // Degenerate member that does no work: define E = 0.
        return 0.0;
    }
    let k = times.k() as f64;
    let analyses_busy: f64 = times.analyses.iter().map(|a| a.busy()).sum();
    times.sim_busy() / sigma + analyses_busy / (k * sigma) - 1.0
}

/// Eq. 3 via the idle-time definition (used to cross-check the closed
/// form in tests and to report per-coupling efficiency).
pub fn efficiency_from_idle(times: &MemberStageTimes) -> f64 {
    let sigma = sigma_star(times);
    if sigma <= 0.0 {
        return 0.0;
    }
    let idle = idle_times(times);
    let k = times.k() as f64;
    idle.analysis_idle.iter().map(|ia| 1.0 - (idle.sim_idle + ia) / sigma).sum::<f64>() / k
}

/// Per-coupling effective-computation fraction:
/// `1 − (Iˢ* + Iᴬⁱ*) / σ̄*` for coupling `j` (0-based).
pub fn coupling_efficiency(times: &MemberStageTimes, j: usize) -> f64 {
    let sigma = sigma_star(times);
    if sigma <= 0.0 {
        return 0.0;
    }
    let idle = idle_times(times);
    1.0 - (idle.sim_idle + idle.analysis_idle[j]) / sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::AnalysisStageTimes;

    fn times(s: f64, w: f64, ra: &[(f64, f64)]) -> MemberStageTimes {
        MemberStageTimes::new(s, w, ra.iter().map(|&(r, a)| AnalysisStageTimes { r, a }).collect())
            .unwrap()
    }

    #[test]
    fn perfectly_balanced_member_has_efficiency_one() {
        let t = times(10.0, 0.5, &[(0.5, 10.0)]);
        assert!((efficiency(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_idle_definition() {
        for t in [
            times(20.0, 0.5, &[(0.3, 15.0)]),
            times(10.0, 0.5, &[(0.3, 25.0)]),
            times(10.0, 0.5, &[(0.3, 5.0), (0.2, 30.0), (0.1, 8.0)]),
            times(1.0, 0.0, &[(0.0, 0.5)]),
        ] {
            let a = efficiency(&t);
            let b = efficiency_from_idle(&t);
            assert!((a - b).abs() < 1e-12, "closed {a} vs idle {b}");
        }
    }

    #[test]
    fn efficiency_in_unit_interval() {
        let t = times(20.0, 0.5, &[(0.3, 2.0)]);
        let e = efficiency(&t);
        assert!(e > 0.0 && e <= 1.0, "E = {e}");
    }

    #[test]
    fn idle_analyzer_value_matches_hand_computation() {
        // σ̄ = 20.5, analysis busy = 15.3: E = 20.5/20.5 + 15.3/20.5 − 1.
        let t = times(20.0, 0.5, &[(0.3, 15.0)]);
        let expected = 1.0 + 15.3 / 20.5 - 1.0;
        assert!((efficiency(&t) - expected).abs() < 1e-12);
    }

    #[test]
    fn idle_simulation_value_matches_hand_computation() {
        // σ̄ = 25.3: E = 10.5/25.3 + 25.3/25.3 − 1 = 10.5/25.3.
        let t = times(10.0, 0.5, &[(0.3, 25.0)]);
        assert!((efficiency(&t) - 10.5 / 25.3).abs() < 1e-12);
    }

    #[test]
    fn balance_beats_imbalance() {
        let balanced = times(10.0, 0.0, &[(0.0, 10.0)]);
        let lopsided = times(10.0, 0.0, &[(0.0, 2.0)]);
        assert!(efficiency(&balanced) > efficiency(&lopsided));
    }

    #[test]
    fn k_couplings_average() {
        // One perfectly-matched analysis, one fast (idle) one.
        let t = times(10.0, 0.0, &[(0.0, 10.0), (0.0, 5.0)]);
        let e0 = coupling_efficiency(&t, 0);
        let e1 = coupling_efficiency(&t, 1);
        assert!((e0 - 1.0).abs() < 1e-12);
        assert!((e1 - 0.5).abs() < 1e-12);
        assert!((efficiency(&t) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_zero_member() {
        let t = times(0.0, 0.0, &[(0.0, 0.0)]);
        assert_eq!(efficiency(&t), 0.0);
        assert_eq!(efficiency_from_idle(&t), 0.0);
        assert_eq!(coupling_efficiency(&t, 0), 0.0);
    }
}
