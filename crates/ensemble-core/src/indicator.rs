//! The multi-stage performance indicators of paper §4:
//!
//! * Eq. 5 — resource **U**sage: `Pᵁ = E / c`;
//! * Eq. 7 — resource **A**llocation: `Pᵁ·ᴬ = Pᵁ × CP`;
//! * Eq. 8 — resource **P**rovisioning: `Pᵁ·ᴬ·ᴾ = Pᵁ·ᴬ / M`;
//! * and the alternative order `Pᵁ → Pᵁ·ᴾ → Pᵁ·ᴾ·ᴬ` explored in §5.2
//!   (the two orders commute to the same final value).

use serde::{Deserialize, Serialize};

use crate::ensemble::EnsembleSpec;
use crate::member::MemberSpec;
use crate::placement::placement_indicator;

/// A refinement stage of the indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndicatorStage {
    /// Resource usage (always first): divide efficiency by member cores.
    Usage,
    /// Resource allocation: multiply by the placement indicator `CPᵢ`.
    Allocation,
    /// Resource provisioning: divide by the ensemble node count `M`.
    Provisioning,
}

impl IndicatorStage {
    /// The paper's letter for the stage.
    pub fn letter(self) -> &'static str {
        match self {
            IndicatorStage::Usage => "U",
            IndicatorStage::Allocation => "A",
            IndicatorStage::Provisioning => "P",
        }
    }
}

/// An ordered sequence of stages, e.g. `U → A → P`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndicatorPath(pub Vec<IndicatorStage>);

impl IndicatorPath {
    /// `U` only (Eq. 5).
    pub fn u() -> Self {
        IndicatorPath(vec![IndicatorStage::Usage])
    }

    /// `U → A` (Eq. 7).
    pub fn ua() -> Self {
        IndicatorPath(vec![IndicatorStage::Usage, IndicatorStage::Allocation])
    }

    /// `U → P` (path 1 of §5.2).
    pub fn up() -> Self {
        IndicatorPath(vec![IndicatorStage::Usage, IndicatorStage::Provisioning])
    }

    /// `U → A → P` (Eq. 8).
    pub fn uap() -> Self {
        IndicatorPath(vec![
            IndicatorStage::Usage,
            IndicatorStage::Allocation,
            IndicatorStage::Provisioning,
        ])
    }

    /// `U → P → A` (path 1's final stage; equals `U → A → P`).
    pub fn upa() -> Self {
        IndicatorPath(vec![
            IndicatorStage::Usage,
            IndicatorStage::Provisioning,
            IndicatorStage::Allocation,
        ])
    }

    /// Label like "U,A,P".
    pub fn label(&self) -> String {
        self.0.iter().map(|s| s.letter()).collect::<Vec<_>>().join(",")
    }
}

/// The per-member inputs the indicator consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberInputs {
    /// Computational efficiency `Eᵢ` (Eq. 3).
    pub efficiency: f64,
    /// Total cores `cᵢ`.
    pub cores: u32,
    /// Placement indicator `CPᵢ` (Eq. 6).
    pub cp: f64,
    /// Ensemble node count `M`.
    pub ensemble_nodes: usize,
}

impl MemberInputs {
    /// Gathers inputs from a member spec, its ensemble, and its measured
    /// efficiency.
    pub fn from_specs(member: &MemberSpec, ensemble: &EnsembleSpec, efficiency: f64) -> Self {
        MemberInputs {
            efficiency,
            cores: member.total_cores(),
            cp: placement_indicator(member),
            ensemble_nodes: ensemble.num_nodes(),
        }
    }
}

/// Evaluates the indicator after applying the stages of `path` in order.
///
/// # Panics
/// Panics if `Usage` is not the first stage or a stage repeats — the
/// paper's methodology always starts from `Pᵁ`.
pub fn indicator(inputs: &MemberInputs, path: &IndicatorPath) -> f64 {
    assert!(
        path.0.first() == Some(&IndicatorStage::Usage),
        "indicator paths start at the Usage stage"
    );
    let mut seen = [false; 3];
    let mut value = 0.0;
    for (idx, stage) in path.0.iter().enumerate() {
        let slot = *stage as usize;
        assert!(!seen[slot], "indicator stage {stage:?} applied twice");
        seen[slot] = true;
        value = match stage {
            IndicatorStage::Usage => {
                assert_eq!(idx, 0);
                assert!(inputs.cores > 0, "member must use at least one core");
                inputs.efficiency / inputs.cores as f64
            }
            IndicatorStage::Allocation => value * inputs.cp,
            IndicatorStage::Provisioning => {
                assert!(inputs.ensemble_nodes > 0, "ensemble must use at least one node");
                value / inputs.ensemble_nodes as f64
            }
        };
    }
    value
}

/// Convenience: Eq. 5.
pub fn p_u(inputs: &MemberInputs) -> f64 {
    indicator(inputs, &IndicatorPath::u())
}

/// Convenience: Eq. 7.
pub fn p_ua(inputs: &MemberInputs) -> f64 {
    indicator(inputs, &IndicatorPath::ua())
}

/// Convenience: Eq. 8 (the full indicator).
pub fn p_uap(inputs: &MemberInputs) -> f64 {
    indicator(inputs, &IndicatorPath::uap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentSpec;

    fn inputs() -> MemberInputs {
        MemberInputs { efficiency: 0.8, cores: 24, cp: 0.5, ensemble_nodes: 3 }
    }

    #[test]
    fn eq5_usage() {
        assert!((p_u(&inputs()) - 0.8 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn eq7_allocation() {
        assert!((p_ua(&inputs()) - 0.8 / 24.0 * 0.5).abs() < 1e-15);
    }

    #[test]
    fn eq8_full() {
        assert!((p_uap(&inputs()) - 0.8 / 24.0 * 0.5 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn stage_orders_commute() {
        let i = inputs();
        let uap = indicator(&i, &IndicatorPath::uap());
        let upa = indicator(&i, &IndicatorPath::upa());
        assert!((uap - upa).abs() < 1e-18, "P^UAP must equal P^UPA");
    }

    #[test]
    fn path_labels() {
        assert_eq!(IndicatorPath::uap().label(), "U,A,P");
        assert_eq!(IndicatorPath::up().label(), "U,P");
    }

    #[test]
    fn from_specs_gathers_cp_and_m() {
        let member = crate::member::MemberSpec::new(
            ComponentSpec::simulation(16, 0),
            vec![ComponentSpec::analysis(8, 2)],
        );
        let other = crate::member::MemberSpec::new(
            ComponentSpec::simulation(16, 1),
            vec![ComponentSpec::analysis(8, 2)],
        );
        let ensemble = crate::ensemble::EnsembleSpec::new(vec![member.clone(), other]);
        let i = MemberInputs::from_specs(&member, &ensemble, 0.9);
        assert_eq!(i.cores, 24);
        assert!((i.cp - 0.5).abs() < 1e-12);
        assert_eq!(i.ensemble_nodes, 3);
        assert_eq!(i.efficiency, 0.9);
    }

    #[test]
    fn higher_colocation_scores_higher() {
        let mut tight = inputs();
        tight.cp = 1.0;
        tight.ensemble_nodes = 2;
        assert!(p_uap(&tight) > p_uap(&inputs()));
    }

    #[test]
    #[should_panic(expected = "start at the Usage stage")]
    fn path_must_start_with_usage() {
        indicator(&inputs(), &IndicatorPath(vec![IndicatorStage::Allocation]));
    }

    #[test]
    #[should_panic(expected = "applied twice")]
    fn repeated_stage_panics() {
        indicator(&inputs(), &IndicatorPath(vec![IndicatorStage::Usage, IndicatorStage::Usage]));
    }
}
