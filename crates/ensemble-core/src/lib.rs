//! # ensemble-core — the paper's formal model and performance indicators
//!
//! This crate is the primary contribution of *"Assessing Resource
//! Provisioning and Allocation of Ensembles of In Situ Workflows"*
//! (Do et al., ICPP Workshops '21), implemented as a library:
//!
//! * **Structure** (§2.1, §4.1): [`ComponentSpec`] / [`MemberSpec`] /
//!   [`EnsembleSpec`] — components, members (one simulation coupled with
//!   K analyses), and ensembles, with the derived quantities `cᵢ`, `dᵢ`,
//!   `M`.
//! * **Execution model** (§3.1–§3.2): the six fine-grained stages
//!   ([`StageKind`]), steady-state stage times ([`MemberStageTimes`],
//!   extracted from per-step samples by [`steady_state`]), the
//!   non-overlapped in situ step `σ̄*` (Eq. 1, [`sigma_star`]) and the
//!   makespan (Eq. 2, [`makespan`]).
//! * **Efficiency** (§3.3): Eq. 3 ([`efficiency`]).
//! * **Indicators** (§4): `Pᵁ`, the placement indicator `CPᵢ` (Eq. 6,
//!   [`placement_indicator`]), `Pᵁ·ᴬ`, `Pᵁ·ᴬ·ᴾ` and both stage orders
//!   ([`indicator`], [`IndicatorPath`]).
//! * **Objective** (§5.1): Eq. 9, mean − std ([`objective`]).
//! * **Configurations**: Tables 2 and 4 as ready-made [`ConfigId`]s.
//!
//! Everything here is pure, deterministic math over stage times — the
//! `runtime` crate produces those stage times by executing ensembles
//! (simulated or threaded), and `scheduler` searches placements with
//! these indicators as the objective.

#![warn(missing_docs)]

pub mod component;
pub mod config;
pub mod efficiency;
pub mod ensemble;
pub mod error;
pub mod indicator;
pub mod insitu_step;
pub mod member;
pub mod objective;
pub mod placement;
pub mod stage;
pub mod steady_state;
pub mod whatif;

pub use component::{ComponentKind, ComponentRef, ComponentSpec};
pub use config::{ConfigId, ANALYSIS_CORES, SIM_CORES};
pub use efficiency::{coupling_efficiency, efficiency, efficiency_from_idle};
pub use ensemble::EnsembleSpec;
pub use error::ModelError;
pub use indicator::{indicator, p_u, p_ua, p_uap, IndicatorPath, IndicatorStage, MemberInputs};
pub use insitu_step::{
    coupling_scenario, idle_times, makespan, sigma_star, CouplingScenario, IdleTimes,
};
pub use member::MemberSpec;
pub use objective::{aggregate, objective, Aggregation};
pub use placement::{coupling_ratio, placement_indicator};
pub use stage::{AnalysisStageTimes, MemberStageTimes, StageGroup, StageKind};
pub use steady_state::{extract_steady_state, steadiness, MemberStepSamples, WarmupPolicy};
pub use whatif::{factor_to_unblock, what_if, Change, WhatIf};
