//! Fine-grained execution stages of the in situ model (paper §3.1).
//!
//! Every simulation step decomposes into `S → Iˢ → W`; every analysis
//! step into `R → A → Iᴬ`. Steady-state (starred) per-stage durations
//! are carried by [`MemberStageTimes`].

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// The six fine-grained stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// `S` — simulation compute.
    Simulate,
    /// `Iˢ` — simulation idle (waiting to stage).
    SimIdle,
    /// `W` — write to the DTL.
    Write,
    /// `R` — read from the DTL.
    Read,
    /// `A` — analysis compute.
    Analyze,
    /// `Iᴬ` — analysis idle (waiting for the next chunk).
    AnaIdle,
}

impl StageKind {
    /// The paper's three sub-groups: computational, I/O, and idle stages.
    pub fn group(self) -> StageGroup {
        match self {
            StageKind::Simulate | StageKind::Analyze => StageGroup::Computational,
            StageKind::Write | StageKind::Read => StageGroup::Io,
            StageKind::SimIdle | StageKind::AnaIdle => StageGroup::Idle,
        }
    }

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Simulate => "S",
            StageKind::SimIdle => "I^S",
            StageKind::Write => "W",
            StageKind::Read => "R",
            StageKind::Analyze => "A",
            StageKind::AnaIdle => "I^A",
        }
    }
}

/// The stage sub-groups of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageGroup {
    /// `S`, `A`.
    Computational,
    /// `W`, `R`.
    Io,
    /// `Iˢ`, `Iᴬ`.
    Idle,
}

/// Steady-state stage durations of one coupling's analysis side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisStageTimes {
    /// `R*` — read stage, seconds.
    pub r: f64,
    /// `A*` — analyze stage, seconds.
    pub a: f64,
}

impl AnalysisStageTimes {
    /// `R* + A*`: the non-idle span of the analysis step.
    pub fn busy(&self) -> f64 {
        self.r + self.a
    }
}

/// Steady-state stage durations of one ensemble member: the starred
/// quantities of §3.1 feeding Equations 1–3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberStageTimes {
    /// `S*` — simulation compute, seconds.
    pub s: f64,
    /// `W*` — write stage, seconds.
    pub w: f64,
    /// `(R*, A*)` per coupled analysis, in coupling order.
    pub analyses: Vec<AnalysisStageTimes>,
}

impl MemberStageTimes {
    /// Builds and validates stage times.
    pub fn new(s: f64, w: f64, analyses: Vec<AnalysisStageTimes>) -> Result<Self, ModelError> {
        let t = MemberStageTimes { s, w, analyses };
        t.validate()?;
        Ok(t)
    }

    /// `S* + W*`: the non-idle span of the simulation step.
    pub fn sim_busy(&self) -> f64 {
        self.s + self.w
    }

    /// Number of couplings `K`.
    pub fn k(&self) -> usize {
        self.analyses.len()
    }

    /// Checks all durations are finite and non-negative and `K ≥ 1`.
    pub fn validate(&self) -> Result<(), ModelError> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        if !ok(self.s) || !ok(self.w) {
            return Err(ModelError::InvalidStageTimes {
                detail: format!("S*={}, W*={}", self.s, self.w),
            });
        }
        if self.analyses.is_empty() {
            return Err(ModelError::InvalidStageTimes { detail: "no couplings".into() });
        }
        for (j, a) in self.analyses.iter().enumerate() {
            if !ok(a.r) || !ok(a.a) {
                return Err(ModelError::InvalidStageTimes {
                    detail: format!("coupling {}: R*={}, A*={}", j + 1, a.r, a.a),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_paper() {
        assert_eq!(StageKind::Simulate.group(), StageGroup::Computational);
        assert_eq!(StageKind::Analyze.group(), StageGroup::Computational);
        assert_eq!(StageKind::Write.group(), StageGroup::Io);
        assert_eq!(StageKind::Read.group(), StageGroup::Io);
        assert_eq!(StageKind::SimIdle.group(), StageGroup::Idle);
        assert_eq!(StageKind::AnaIdle.group(), StageGroup::Idle);
    }

    #[test]
    fn busy_spans() {
        let t =
            MemberStageTimes::new(20.0, 0.5, vec![AnalysisStageTimes { r: 0.3, a: 15.0 }]).unwrap();
        assert!((t.sim_busy() - 20.5).abs() < 1e-12);
        assert!((t.analyses[0].busy() - 15.3).abs() < 1e-12);
        assert_eq!(t.k(), 1);
    }

    #[test]
    fn invalid_times_rejected() {
        assert!(
            MemberStageTimes::new(-1.0, 0.0, vec![AnalysisStageTimes { r: 0.0, a: 1.0 }]).is_err()
        );
        assert!(MemberStageTimes::new(1.0, 0.0, vec![]).is_err());
        assert!(MemberStageTimes::new(1.0, 0.0, vec![AnalysisStageTimes { r: f64::NAN, a: 1.0 }])
            .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(StageKind::Simulate.label(), "S");
        assert_eq!(StageKind::AnaIdle.label(), "I^A");
    }
}
