//! Ensemble members: one simulation coupled with K analyses.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::component::{ComponentKind, ComponentSpec};
use crate::error::ModelError;

/// One ensemble member `EMᵢ`: a simulation plus `K ≥ 1` analyses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberSpec {
    /// The data-producing simulation.
    pub simulation: ComponentSpec,
    /// The coupled analyses `Anaᵢ¹ … AnaᵢᴷⁱΚ`.
    pub analyses: Vec<ComponentSpec>,
}

impl MemberSpec {
    /// Builds and validates a member.
    pub fn new(simulation: ComponentSpec, analyses: Vec<ComponentSpec>) -> Self {
        assert_eq!(
            simulation.kind,
            ComponentKind::Simulation,
            "first component must be a simulation"
        );
        assert!(
            analyses.iter().all(|a| a.kind == ComponentKind::Analysis),
            "coupled components must be analyses"
        );
        MemberSpec { simulation, analyses }
    }

    /// Number of couplings `Kᵢ`.
    pub fn k(&self) -> usize {
        self.analyses.len()
    }

    /// Total cores `cᵢ = csᵢ + Σⱼ caᵢʲ`.
    pub fn total_cores(&self) -> u32 {
        self.simulation.cores + self.analyses.iter().map(|a| a.cores).sum::<u32>()
    }

    /// Nodes the member occupies: `sᵢ ∪ ⋃ⱼ aᵢʲ`.
    pub fn node_set(&self) -> BTreeSet<usize> {
        let mut set = self.simulation.nodes.clone();
        for a in &self.analyses {
            set.extend(a.nodes.iter().copied());
        }
        set
    }

    /// `dᵢ`: number of distinct nodes allocated to the member.
    pub fn num_nodes(&self) -> usize {
        self.node_set().len()
    }

    /// Checks structural invariants (paper §4.1).
    pub fn validate(&self, member_index: usize) -> Result<(), ModelError> {
        if self.analyses.is_empty() {
            return Err(ModelError::NoAnalyses { member: member_index });
        }
        for (name, c) in std::iter::once(("simulation".to_string(), &self.simulation)).chain(
            self.analyses.iter().enumerate().map(|(j, a)| (format!("analysis {}", j + 1), a)),
        ) {
            if c.cores == 0 {
                return Err(ModelError::ZeroCores { member: member_index, component: name });
            }
            if c.nodes.is_empty() {
                return Err(ModelError::EmptyNodeSet { member: member_index, component: name });
            }
        }
        Ok(())
    }

    /// True iff analysis `j` (0-based here) is fully co-located with the
    /// simulation: `|sᵢ| = |sᵢ ∪ aᵢʲ|` (paper §4.3).
    pub fn is_colocated(&self, analysis: usize) -> bool {
        let union: BTreeSet<usize> =
            self.simulation.nodes.union(&self.analyses[analysis].nodes).copied().collect();
        union.len() == self.simulation.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(sim_node: usize, ana_nodes: &[usize]) -> MemberSpec {
        MemberSpec::new(
            ComponentSpec::simulation(16, sim_node),
            ana_nodes.iter().map(|&n| ComponentSpec::analysis(8, n)).collect(),
        )
    }

    #[test]
    fn derived_quantities() {
        let m = member(0, &[1, 2]);
        assert_eq!(m.k(), 2);
        assert_eq!(m.total_cores(), 32);
        assert_eq!(m.node_set(), BTreeSet::from([0, 1, 2]));
        assert_eq!(m.num_nodes(), 3);
        m.validate(0).unwrap();
    }

    #[test]
    fn colocation_detection() {
        let colocated = member(0, &[0]);
        assert!(colocated.is_colocated(0));
        let split = member(0, &[1]);
        assert!(!split.is_colocated(0));
    }

    #[test]
    fn node_sharing_reduces_d() {
        // Analyses on the simulation's node: d = 1 < 1 + K.
        let m = member(0, &[0, 0]);
        assert_eq!(m.num_nodes(), 1);
    }

    #[test]
    fn validation_failures() {
        let no_ana = MemberSpec { simulation: ComponentSpec::simulation(16, 0), analyses: vec![] };
        assert_eq!(no_ana.validate(3), Err(ModelError::NoAnalyses { member: 3 }));

        let zero = member(0, &[1]);
        let mut zero2 = zero.clone();
        zero2.analyses[0].cores = 0;
        assert!(matches!(zero2.validate(0), Err(ModelError::ZeroCores { .. })));

        let mut empty_nodes = zero;
        empty_nodes.simulation.nodes.clear();
        assert!(matches!(empty_nodes.validate(0), Err(ModelError::EmptyNodeSet { .. })));
    }

    #[test]
    #[should_panic(expected = "first component must be a simulation")]
    fn wrong_kind_panics() {
        MemberSpec::new(ComponentSpec::analysis(8, 0), vec![]);
    }
}
