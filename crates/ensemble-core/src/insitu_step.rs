//! The in situ step and its non-overlapped segment (paper §3.2).
//!
//! Equation 1: `σ̄* = max(S* + W*, R¹* + A¹*, …, Rᴷ* + Aᴷ*)`.
//! Equation 2: `MAKESPAN = n_steps × σ̄*`.

use serde::{Deserialize, Serialize};

use crate::stage::MemberStageTimes;

/// Which side of a coupling idles (paper Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CouplingScenario {
    /// The analysis step outlasts the simulation step; the simulation
    /// waits (`Iˢ > 0`).
    IdleSimulation,
    /// The simulation step outlasts the analysis step; the analysis
    /// waits (`Iᴬ > 0`).
    IdleAnalyzer,
    /// Both sides finish together (boundary case).
    Balanced,
}

/// Eq. 1: the non-overlapped segment `σ̄*` of the steady-state in situ
/// step.
pub fn sigma_star(times: &MemberStageTimes) -> f64 {
    times.analyses.iter().map(|a| a.busy()).fold(times.sim_busy(), f64::max)
}

/// Eq. 2: member makespan for `n_steps` in situ steps.
pub fn makespan(times: &MemberStageTimes, n_steps: u64) -> f64 {
    n_steps as f64 * sigma_star(times)
}

/// Steady-state idle-stage durations derived from `σ̄*` (§3.3):
/// `Iˢ* = σ̄* − (S* + W*)` and `Iᴬⁱ* = σ̄* − (Rⁱ* + Aⁱ*)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleTimes {
    /// Simulation idle per in situ step.
    pub sim_idle: f64,
    /// Analysis idle per in situ step, per coupling.
    pub analysis_idle: Vec<f64>,
}

/// Derives the idle stages from the stage times.
pub fn idle_times(times: &MemberStageTimes) -> IdleTimes {
    let sigma = sigma_star(times);
    IdleTimes {
        sim_idle: sigma - times.sim_busy(),
        analysis_idle: times.analyses.iter().map(|a| sigma - a.busy()).collect(),
    }
}

/// Classifies the coupling `(Sim, Anaʲ)` (0-based `j`).
pub fn coupling_scenario(times: &MemberStageTimes, j: usize) -> CouplingScenario {
    let sim = times.sim_busy();
    let ana = times.analyses[j].busy();
    if ana > sim {
        CouplingScenario::IdleSimulation
    } else if ana < sim {
        CouplingScenario::IdleAnalyzer
    } else {
        CouplingScenario::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::AnalysisStageTimes;

    fn times(s: f64, w: f64, ra: &[(f64, f64)]) -> MemberStageTimes {
        MemberStageTimes::new(s, w, ra.iter().map(|&(r, a)| AnalysisStageTimes { r, a }).collect())
            .unwrap()
    }

    #[test]
    fn eq1_idle_analyzer_case() {
        // Simulation side dominates: σ̄* = S* + W*.
        let t = times(20.0, 0.5, &[(0.3, 15.0)]);
        assert!((sigma_star(&t) - 20.5).abs() < 1e-12);
        assert_eq!(coupling_scenario(&t, 0), CouplingScenario::IdleAnalyzer);
    }

    #[test]
    fn eq1_idle_simulation_case() {
        // Analysis dominates: σ̄* = R* + A*.
        let t = times(10.0, 0.5, &[(0.3, 25.0)]);
        assert!((sigma_star(&t) - 25.3).abs() < 1e-12);
        assert_eq!(coupling_scenario(&t, 0), CouplingScenario::IdleSimulation);
    }

    #[test]
    fn eq1_takes_slowest_of_k_analyses() {
        let t = times(10.0, 0.5, &[(0.3, 5.0), (0.2, 30.0), (0.1, 8.0)]);
        assert!((sigma_star(&t) - 30.2).abs() < 1e-12);
        assert_eq!(coupling_scenario(&t, 0), CouplingScenario::IdleAnalyzer);
        assert_eq!(coupling_scenario(&t, 1), CouplingScenario::IdleSimulation);
    }

    #[test]
    fn eq2_makespan_scales_with_steps() {
        let t = times(20.0, 0.5, &[(0.3, 15.0)]);
        assert!((makespan(&t, 37) - 37.0 * 20.5).abs() < 1e-9);
        assert_eq!(makespan(&t, 0), 0.0);
    }

    #[test]
    fn idle_times_sum_to_sigma_complement() {
        let t = times(10.0, 0.5, &[(0.3, 25.0), (0.2, 10.0)]);
        let sigma = sigma_star(&t);
        let idle = idle_times(&t);
        assert!((idle.sim_idle - (sigma - 10.5)).abs() < 1e-12);
        assert!((idle.analysis_idle[0] - 0.0).abs() < 1e-12, "slowest analysis never idles");
        assert!((idle.analysis_idle[1] - (sigma - 10.2)).abs() < 1e-12);
        assert!(idle.sim_idle >= 0.0);
        assert!(idle.analysis_idle.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn balanced_coupling() {
        let t = times(10.0, 0.5, &[(0.5, 10.0)]);
        assert_eq!(coupling_scenario(&t, 0), CouplingScenario::Balanced);
        assert!((sigma_star(&t) - 10.5).abs() < 1e-12);
    }
}
