//! Ensemble components: the simulations and analyses of the paper's
//! Figure 1, described by what the model needs — their kind, core count,
//! and the set of node indexes they run on.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Whether a component produces data or consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A data-producing simulation (one per ensemble member).
    Simulation,
    /// A data-consuming in situ analysis.
    Analysis,
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComponentKind::Simulation => write!(f, "simulation"),
            ComponentKind::Analysis => write!(f, "analysis"),
        }
    }
}

/// Addresses one component within a workflow ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentRef {
    /// Member index `i` (0-based; the paper's `EMᵢ`).
    pub member: usize,
    /// 0 = the simulation; `j ≥ 1` = analysis `j` (the paper's `Anaᵢʲ`).
    pub slot: usize,
}

impl ComponentRef {
    /// The member's simulation.
    pub fn simulation(member: usize) -> Self {
        ComponentRef { member, slot: 0 }
    }

    /// Analysis `j` (1-based, matching the paper's superscript).
    pub fn analysis(member: usize, j: usize) -> Self {
        assert!(j >= 1, "analysis slots are 1-based");
        ComponentRef { member, slot: j }
    }

    /// True for the simulation slot.
    pub fn is_simulation(&self) -> bool {
        self.slot == 0
    }
}

impl std::fmt::Display for ComponentRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_simulation() {
            write!(f, "Sim{}", self.member + 1)
        } else {
            write!(f, "Ana{}.{}", self.member + 1, self.slot)
        }
    }
}

/// Placement and sizing of one component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Simulation or analysis.
    pub kind: ComponentKind,
    /// Physical cores the component uses (the paper's `csᵢ` / `caᵢʲ`).
    pub cores: u32,
    /// Node indexes it runs on (the paper's `sᵢ` / `aᵢʲ`).
    pub nodes: BTreeSet<usize>,
}

impl ComponentSpec {
    /// A simulation on a single node.
    pub fn simulation(cores: u32, node: usize) -> Self {
        ComponentSpec { kind: ComponentKind::Simulation, cores, nodes: BTreeSet::from([node]) }
    }

    /// An analysis on a single node.
    pub fn analysis(cores: u32, node: usize) -> Self {
        ComponentSpec { kind: ComponentKind::Analysis, cores, nodes: BTreeSet::from([node]) }
    }

    /// A component spanning several nodes.
    pub fn spanning(
        kind: ComponentKind,
        cores: u32,
        nodes: impl IntoIterator<Item = usize>,
    ) -> Self {
        ComponentSpec { kind, cores, nodes: nodes.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_display_like_the_paper() {
        assert_eq!(ComponentRef::simulation(0).to_string(), "Sim1");
        assert_eq!(ComponentRef::analysis(1, 2).to_string(), "Ana2.2");
        assert!(ComponentRef::simulation(0).is_simulation());
        assert!(!ComponentRef::analysis(0, 1).is_simulation());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn analysis_slot_zero_panics() {
        ComponentRef::analysis(0, 0);
    }

    #[test]
    fn constructors() {
        let s = ComponentSpec::simulation(16, 0);
        assert_eq!(s.kind, ComponentKind::Simulation);
        assert_eq!(s.nodes, BTreeSet::from([0]));
        let a = ComponentSpec::spanning(ComponentKind::Analysis, 8, [1, 2]);
        assert_eq!(a.nodes.len(), 2);
    }
}
