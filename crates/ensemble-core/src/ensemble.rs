//! The workflow ensemble: N members running concurrently.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::member::MemberSpec;

/// A workflow ensemble of `N` concurrently-starting members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnsembleSpec {
    /// The members `EM₁ … EM_N`.
    pub members: Vec<MemberSpec>,
}

impl EnsembleSpec {
    /// Builds an ensemble.
    pub fn new(members: Vec<MemberSpec>) -> Self {
        EnsembleSpec { members }
    }

    /// Number of members `N`.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// All nodes touched by the ensemble.
    pub fn node_set(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        for m in &self.members {
            set.extend(m.node_set());
        }
        set
    }

    /// `M`: total number of nodes used by the ensemble. Satisfies
    /// `M ≤ Σᵢ dᵢ`, with equality iff members share no nodes (§4.1).
    pub fn num_nodes(&self) -> usize {
        self.node_set().len()
    }

    /// Validates structure and (optionally) per-node core capacity.
    pub fn validate(&self, cores_per_node: Option<u32>) -> Result<(), ModelError> {
        if self.members.is_empty() {
            return Err(ModelError::EmptyEnsemble);
        }
        for (i, m) in self.members.iter().enumerate() {
            m.validate(i)?;
        }
        if let Some(capacity) = cores_per_node {
            // Components spanning multiple nodes split cores evenly; the
            // paper's configurations are all single-node components.
            let mut demand: std::collections::BTreeMap<usize, u32> = Default::default();
            for m in &self.members {
                for c in std::iter::once(&m.simulation).chain(m.analyses.iter()) {
                    let share = c.cores.div_ceil(c.nodes.len() as u32);
                    for &n in &c.nodes {
                        *demand.entry(n).or_default() += share;
                    }
                }
            }
            for (node, requested) in demand {
                if requested > capacity {
                    return Err(ModelError::NodeOverSubscribed { node, requested, capacity });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentSpec;

    fn member(sim_node: usize, ana_nodes: &[usize]) -> MemberSpec {
        MemberSpec::new(
            ComponentSpec::simulation(16, sim_node),
            ana_nodes.iter().map(|&n| ComponentSpec::analysis(8, n)).collect(),
        )
    }

    #[test]
    fn node_count_with_sharing() {
        // Two members sharing node 2 for their analyses: M < Σ dᵢ.
        let e = EnsembleSpec::new(vec![member(0, &[2]), member(1, &[2])]);
        assert_eq!(e.n(), 2);
        assert_eq!(e.num_nodes(), 3);
        let sum_d: usize = e.members.iter().map(|m| m.num_nodes()).sum();
        assert!(e.num_nodes() <= sum_d);
    }

    #[test]
    fn dedicated_nodes_equality() {
        let e = EnsembleSpec::new(vec![member(0, &[1]), member(2, &[3])]);
        let sum_d: usize = e.members.iter().map(|m| m.num_nodes()).sum();
        assert_eq!(e.num_nodes(), sum_d);
    }

    #[test]
    fn capacity_validation() {
        // 16 + 8 + 8 = 32 cores on one node: fits exactly.
        let full = EnsembleSpec::new(vec![member(0, &[0, 0])]);
        full.validate(Some(32)).unwrap();
        // A second member's simulation on the same node overflows.
        let over = EnsembleSpec::new(vec![member(0, &[0, 0]), member(0, &[1, 1])]);
        assert!(matches!(
            over.validate(Some(32)),
            Err(ModelError::NodeOverSubscribed { node: 0, requested: 48, capacity: 32 })
        ));
    }

    #[test]
    fn empty_ensemble_rejected() {
        assert_eq!(EnsembleSpec::new(vec![]).validate(None), Err(ModelError::EmptyEnsemble));
    }
}
