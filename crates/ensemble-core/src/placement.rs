//! The placement indicator `CPᵢ` (paper §4.3, Eq. 6):
//!
//! ```text
//! CPᵢ = (|sᵢ| / Kᵢ) Σⱼ 1 / |sᵢ ∪ aᵢʲ|
//! ```
//!
//! `CPᵢ = 1` iff every analysis is co-located with its simulation;
//! values sink toward 0 as components spread over dedicated nodes.

use std::collections::BTreeSet;

use crate::member::MemberSpec;

/// Eq. 6 for one member.
pub fn placement_indicator(member: &MemberSpec) -> f64 {
    let k = member.k();
    assert!(k > 0, "placement indicator requires at least one coupling");
    let s_size = member.simulation.nodes.len() as f64;
    let sum: f64 = member
        .analyses
        .iter()
        .map(|a| {
            let union: BTreeSet<usize> = member.simulation.nodes.union(&a.nodes).copied().collect();
            1.0 / union.len() as f64
        })
        .sum();
    s_size / k as f64 * sum
}

/// The per-coupling ratio `|sᵢ| / |sᵢ ∪ aᵢʲ|` (0-based `j`).
pub fn coupling_ratio(member: &MemberSpec, j: usize) -> f64 {
    let union: BTreeSet<usize> =
        member.simulation.nodes.union(&member.analyses[j].nodes).copied().collect();
    member.simulation.nodes.len() as f64 / union.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentSpec;

    fn member(sim_node: usize, ana_nodes: &[usize]) -> MemberSpec {
        MemberSpec::new(
            ComponentSpec::simulation(16, sim_node),
            ana_nodes.iter().map(|&n| ComponentSpec::analysis(8, n)).collect(),
        )
    }

    #[test]
    fn fully_colocated_member_scores_one() {
        assert!((placement_indicator(&member(0, &[0])) - 1.0).abs() < 1e-12);
        assert!((placement_indicator(&member(0, &[0, 0])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedicated_analysis_halves_the_ratio() {
        // |s| = 1, |s ∪ a| = 2.
        assert!((placement_indicator(&member(0, &[1])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_placement_averages_couplings() {
        // One co-located analysis (ratio 1), one dedicated (ratio 1/2).
        let m = member(0, &[0, 2]);
        assert!((placement_indicator(&m) - 0.75).abs() < 1e-12);
        assert!((coupling_ratio(&m, 0) - 1.0).abs() < 1e-12);
        assert!((coupling_ratio(&m, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cp_in_half_open_unit_interval() {
        for m in [member(0, &[0]), member(0, &[1]), member(0, &[1, 2]), member(0, &[0, 1])] {
            let cp = placement_indicator(&m);
            assert!(cp > 0.0 && cp <= 1.0, "CP = {cp}");
        }
    }

    #[test]
    fn spreading_monotonically_decreases_cp() {
        // More dedicated nodes per analysis ⇒ lower CP.
        let tight = placement_indicator(&member(0, &[0, 0]));
        let mid = placement_indicator(&member(0, &[0, 1]));
        let loose = placement_indicator(&member(0, &[1, 2]));
        assert!(tight > mid && mid > loose, "{tight} > {mid} > {loose}");
    }

    #[test]
    fn paper_example_c1_1() {
        // §4.1's worked example: C1.1 has s₁={0}, a₁¹={2} → CP = 1/2.
        let m = member(0, &[2]);
        assert!((placement_indicator(&m) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_node_simulation() {
        // A simulation spanning 2 nodes with the analysis inside them.
        let m = MemberSpec::new(
            ComponentSpec::spanning(crate::component::ComponentKind::Simulation, 32, [0, 1]),
            vec![ComponentSpec::analysis(8, 1)],
        );
        assert!((placement_indicator(&m) - 1.0).abs() < 1e-12, "analysis within sim nodes");
    }
}
