//! What-if analysis over steady-state stage times: apply a hypothetical
//! change to a member and report how `σ̄*`, the makespan, and `E`
//! respond — the quantitative backing for tuning recommendations.

use serde::{Deserialize, Serialize};

use crate::efficiency::efficiency;
use crate::insitu_step::sigma_star;
use crate::stage::{AnalysisStageTimes, MemberStageTimes};

/// A hypothetical change to a member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Change {
    /// Scale analysis `j` (0-based) compute time by `factor` — e.g.
    /// `0.5` approximates doubling its cores in the parallel region.
    ScaleAnalysis {
        /// Coupling index (0-based).
        j: usize,
        /// Multiplier on `A*`.
        factor: f64,
    },
    /// Scale the simulation compute time by `factor`.
    ScaleSimulation {
        /// Multiplier on `S*`.
        factor: f64,
    },
    /// Add a coupling with the given read/analyze stage times.
    AddAnalysis {
        /// `R*` of the new coupling.
        r: f64,
        /// `A*` of the new coupling.
        a: f64,
    },
    /// Remove coupling `j` (0-based). The member must keep K ≥ 1.
    RemoveAnalysis {
        /// Coupling index (0-based).
        j: usize,
    },
}

/// Before/after comparison of one change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// The stage times after the change.
    pub after: MemberStageTimes,
    /// `σ̄*` before.
    pub sigma_before: f64,
    /// `σ̄*` after.
    pub sigma_after: f64,
    /// `E` before.
    pub efficiency_before: f64,
    /// `E` after.
    pub efficiency_after: f64,
}

impl WhatIf {
    /// Relative makespan change (negative = faster).
    pub fn makespan_delta(&self) -> f64 {
        self.sigma_after / self.sigma_before - 1.0
    }
}

/// Applies `change` to `times` and reports the effect.
///
/// # Panics
/// Panics on invalid indices, non-positive factors, or removing the
/// last coupling.
pub fn what_if(times: &MemberStageTimes, change: &Change) -> WhatIf {
    let mut after = times.clone();
    match *change {
        Change::ScaleAnalysis { j, factor } => {
            assert!(factor > 0.0, "factor must be positive");
            after.analyses[j].a *= factor;
        }
        Change::ScaleSimulation { factor } => {
            assert!(factor > 0.0, "factor must be positive");
            after.s *= factor;
        }
        Change::AddAnalysis { r, a } => {
            assert!(r >= 0.0 && a >= 0.0, "stage times must be non-negative");
            after.analyses.push(AnalysisStageTimes { r, a });
        }
        Change::RemoveAnalysis { j } => {
            assert!(after.analyses.len() > 1, "a member needs at least one coupling");
            after.analyses.remove(j);
        }
    }
    WhatIf {
        sigma_before: sigma_star(times),
        sigma_after: sigma_star(&after),
        efficiency_before: efficiency(times),
        efficiency_after: efficiency(&after),
        after,
    }
}

/// Scans analysis-`j` scaling factors and returns the smallest factor
/// (most aggressive slowdown tolerated / speedup required) at which the
/// coupling stops dominating `σ̄*` — "how much faster must this analysis
/// get before the simulation is the bottleneck again?"
pub fn factor_to_unblock(times: &MemberStageTimes, j: usize) -> Option<f64> {
    let ana = &times.analyses[j];
    if ana.busy() <= times.sim_busy() {
        return None; // already not the bottleneck
    }
    if ana.a <= 0.0 {
        return None; // pure read time cannot be scaled away
    }
    let target_a = times.sim_busy() - ana.r;
    if target_a <= 0.0 {
        return None; // even a zero-cost analysis would still dominate
    }
    Some(target_a / ana.a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(s: f64, ra: &[(f64, f64)]) -> MemberStageTimes {
        MemberStageTimes::new(
            s,
            0.5,
            ra.iter().map(|&(r, a)| AnalysisStageTimes { r, a }).collect(),
        )
        .unwrap()
    }

    #[test]
    fn halving_a_dominant_analysis_cuts_sigma() {
        let t = times(10.0, &[(0.5, 30.0)]);
        let w = what_if(&t, &Change::ScaleAnalysis { j: 0, factor: 0.5 });
        assert!((w.sigma_after - 15.5).abs() < 1e-12);
        assert!(w.makespan_delta() < -0.4);
        assert!(w.efficiency_after > w.efficiency_before);
    }

    #[test]
    fn scaling_a_hidden_analysis_changes_nothing() {
        // Analysis well under the simulation: mild slowdown is free.
        let t = times(20.0, &[(0.3, 5.0)]);
        let w = what_if(&t, &Change::ScaleAnalysis { j: 0, factor: 1.5 });
        assert_eq!(w.sigma_before, w.sigma_after);
        assert!(w.makespan_delta().abs() < 1e-12);
        // Efficiency actually improves: less idle analysis time.
        assert!(w.efficiency_after > w.efficiency_before);
    }

    #[test]
    fn adding_a_slow_analysis_hurts() {
        let t = times(20.0, &[(0.3, 15.0)]);
        let w = what_if(&t, &Change::AddAnalysis { r: 0.3, a: 30.0 });
        assert!(w.sigma_after > w.sigma_before);
        assert_eq!(w.after.k(), 2);
    }

    #[test]
    fn removing_the_bottleneck_helps() {
        let t = times(10.0, &[(0.5, 30.0), (0.3, 5.0)]);
        let w = what_if(&t, &Change::RemoveAnalysis { j: 0 });
        assert!((w.sigma_after - 10.5).abs() < 1e-12);
        assert_eq!(w.after.k(), 1);
    }

    #[test]
    fn factor_to_unblock_matches_eq4_boundary() {
        let t = times(20.0, &[(0.5, 30.0)]);
        let f = factor_to_unblock(&t, 0).expect("analysis dominates");
        // After scaling, R + A×f == S + W exactly.
        let w = what_if(&t, &Change::ScaleAnalysis { j: 0, factor: f });
        assert!((w.after.analyses[0].busy() - w.after.sim_busy()).abs() < 1e-9);
        // Fast analyses need no unblocking.
        let idle = times(20.0, &[(0.5, 5.0)]);
        assert!(factor_to_unblock(&idle, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one coupling")]
    fn cannot_remove_last_coupling() {
        let t = times(10.0, &[(0.5, 5.0)]);
        what_if(&t, &Change::RemoveAnalysis { j: 0 });
    }
}
