//! Steady-state extraction (paper §3.1): "after a few warm-up steps,
//! executions reach a steady-state where each stage has a similar
//! execution time as measured over many steps" — so per-step samples are
//! reduced to starred stage times by dropping warm-up and averaging.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::stage::{AnalysisStageTimes, MemberStageTimes};

/// Per-step stage-duration samples of one member's execution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemberStepSamples {
    /// `S` durations per in situ step.
    pub s: Vec<f64>,
    /// `W` durations per in situ step.
    pub w: Vec<f64>,
    /// `(R, A)` duration series per coupled analysis.
    pub analyses: Vec<(Vec<f64>, Vec<f64>)>,
}

/// How warm-up steps are excluded before averaging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WarmupPolicy {
    /// Drop a fixed number of leading steps.
    FixedSteps(usize),
    /// Drop a leading fraction (0.0–0.9) of the steps.
    Fraction(f64),
}

impl Default for WarmupPolicy {
    fn default() -> Self {
        // The paper's executions stabilize within a few steps.
        WarmupPolicy::FixedSteps(2)
    }
}

impl WarmupPolicy {
    /// Number of samples to skip for a series of length `n`. Never skips
    /// everything: at least one sample survives.
    pub fn skip_count(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let skip = match *self {
            WarmupPolicy::FixedSteps(k) => k,
            WarmupPolicy::Fraction(f) => ((n as f64) * f.clamp(0.0, 0.9)).floor() as usize,
        };
        skip.min(n - 1)
    }
}

fn steady_mean(series: &[f64], policy: WarmupPolicy) -> Result<f64, ModelError> {
    if series.is_empty() {
        return Err(ModelError::InvalidStageTimes { detail: "empty stage series".into() });
    }
    if series.iter().any(|v| !v.is_finite() || *v < 0.0) {
        return Err(ModelError::InvalidStageTimes {
            detail: "negative or non-finite stage sample".into(),
        });
    }
    let skip = policy.skip_count(series.len());
    let tail = &series[skip..];
    Ok(tail.iter().sum::<f64>() / tail.len() as f64)
}

/// Reduces per-step samples to steady-state [`MemberStageTimes`].
pub fn extract_steady_state(
    samples: &MemberStepSamples,
    policy: WarmupPolicy,
) -> Result<MemberStageTimes, ModelError> {
    let s = steady_mean(&samples.s, policy)?;
    let w = steady_mean(&samples.w, policy)?;
    let mut analyses = Vec::with_capacity(samples.analyses.len());
    for (r_series, a_series) in &samples.analyses {
        analyses.push(AnalysisStageTimes {
            r: steady_mean(r_series, policy)?,
            a: steady_mean(a_series, policy)?,
        });
    }
    MemberStageTimes::new(s, w, analyses)
}

/// Coefficient of variation of the post-warm-up tail — a diagnostic for
/// "did the run actually reach steady state?".
pub fn steadiness(series: &[f64], policy: WarmupPolicy) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let skip = policy.skip_count(series.len());
    let tail = &series[skip..];
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = tail.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / tail.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_excluded_from_mean() {
        // First two steps are cold (slow); steady value is 10.
        let samples = MemberStepSamples {
            s: vec![30.0, 20.0, 10.0, 10.0, 10.0],
            w: vec![1.0; 5],
            analyses: vec![(vec![0.5; 5], vec![8.0; 5])],
        };
        let t = extract_steady_state(&samples, WarmupPolicy::FixedSteps(2)).unwrap();
        assert!((t.s - 10.0).abs() < 1e-12);
        assert!((t.w - 1.0).abs() < 1e-12);
        assert!((t.analyses[0].a - 8.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_policy() {
        assert_eq!(WarmupPolicy::Fraction(0.25).skip_count(8), 2);
        assert_eq!(WarmupPolicy::Fraction(0.99).skip_count(10), 9, "clamped to 0.9");
        assert_eq!(WarmupPolicy::Fraction(0.5).skip_count(1), 0);
    }

    #[test]
    fn never_skips_everything() {
        assert_eq!(WarmupPolicy::FixedSteps(100).skip_count(3), 2);
        let samples = MemberStepSamples {
            s: vec![5.0],
            w: vec![0.1],
            analyses: vec![(vec![0.1], vec![4.0])],
        };
        let t = extract_steady_state(&samples, WarmupPolicy::FixedSteps(100)).unwrap();
        assert!((t.s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_rejected() {
        let samples = MemberStepSamples::default();
        assert!(extract_steady_state(&samples, WarmupPolicy::default()).is_err());
    }

    #[test]
    fn bad_samples_rejected() {
        let samples = MemberStepSamples {
            s: vec![1.0, f64::NAN],
            w: vec![0.1, 0.1],
            analyses: vec![(vec![0.1, 0.1], vec![1.0, 1.0])],
        };
        assert!(extract_steady_state(&samples, WarmupPolicy::FixedSteps(0)).is_err());
    }

    #[test]
    fn steadiness_detects_flat_tail() {
        let flat = vec![30.0, 10.0, 10.0, 10.0];
        assert!(steadiness(&flat, WarmupPolicy::FixedSteps(1)) < 1e-12);
        let noisy = vec![30.0, 5.0, 15.0, 10.0];
        assert!(steadiness(&noisy, WarmupPolicy::FixedSteps(1)) > 0.1);
    }
}
