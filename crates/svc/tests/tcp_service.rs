//! End-to-end tests of the JSON-lines-over-TCP service front end.
//!
//! Everything binds `127.0.0.1:0` (ephemeral ports) and drives the real
//! server through real sockets: concurrent clients under mixed load,
//! admission-control shedding, graceful-shutdown draining, and the
//! failure paths (deadline expiry, client disconnect, malformed input).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ensemble_core::ConfigId;
use svc::{
    serve, small_score_request, ErrorKind, Request, RequestBody, Response, RunRequest,
    ServerHandle, SvcClient, SvcConfig, Workloads,
};

fn server(workers: usize, queue_capacity: usize) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        SvcConfig {
            workers,
            queue_capacity,
            cache_capacity: 64,
            default_deadline: None,
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: None,
            tenant_policy: svc::TenantPolicy::default(),
        },
    )
    .expect("bind ephemeral port")
}

fn run_request(id: u64, steps: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Run(RunRequest {
            spec: ConfigId::C1_5.build(),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

fn metrics_row(handle: &ServerHandle, client: &mut SvcClient, name: &str) -> f64 {
    let _ = handle; // metrics go over the wire on purpose
    match client.request(&Request {
        id: 0,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Metrics,
    }) {
        Ok(Response::Metrics { rows, .. }) => rows
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric '{name}' missing from {rows:?}")),
        other => panic!("expected metrics response, got {other:?}"),
    }
}

/// Polls the wire metrics endpoint until `pred` holds or the deadline
/// passes (metrics are served inline, so this works even under load).
fn wait_for_metric(
    handle: &ServerHandle,
    client: &mut SvcClient,
    name: &str,
    pred: impl Fn(f64) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if pred(metrics_row(handle, client, name)) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting on metric '{name}'");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn eight_concurrent_clients_mixed_score_and_run() {
    let handle = server(2, 32);
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(8));
    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                barrier.wait();
                let mut responses = Vec::new();
                for round in 0..2u64 {
                    let id = 100 * i + round;
                    // Even clients score (all identical → cache hits),
                    // odd clients run short simulations.
                    let request = if i % 2 == 0 {
                        small_score_request(id, 2, 16, 1, 8, 3)
                    } else {
                        run_request(id, 4)
                    };
                    responses.push((id, client.request(&request).expect("response")));
                }
                responses
            })
        })
        .collect();
    let mut scores = 0;
    let mut runs = 0;
    let mut cached = 0;
    for t in threads {
        for (id, response) in t.join().expect("client thread") {
            assert_eq!(response.id(), id, "ids must be echoed");
            match response {
                Response::ScoreResult { placements, cached: c, .. } => {
                    scores += 1;
                    cached += usize::from(c);
                    assert!(!placements.is_empty());
                    for w in placements.windows(2) {
                        assert!(w[0].objective >= w[1].objective);
                    }
                }
                Response::RunResult { ensemble_makespan, members, .. } => {
                    runs += 1;
                    assert!(ensemble_makespan > 0.0);
                    assert_eq!(members.len(), 2);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    assert_eq!(scores, 8);
    assert_eq!(runs, 8);
    assert!(cached >= 6, "identical score queries must hit the cache, got {cached} hits");

    // The full snapshot is visible over the wire: percentiles populated
    // and ordered, cache hit rate consistent with what clients saw.
    let mut probe = SvcClient::connect(addr).expect("connect probe");
    assert_eq!(metrics_row(&handle, &mut probe, "requests_completed"), 16.0);
    let p50 = metrics_row(&handle, &mut probe, "latency_p50_ms");
    let p95 = metrics_row(&handle, &mut probe, "latency_p95_ms");
    let p99 = metrics_row(&handle, &mut probe, "latency_p99_ms");
    assert!(p50 > 0.0, "p50 must populate after 16 requests");
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be ordered: {p50} {p95} {p99}");
    let hit_rate = metrics_row(&handle, &mut probe, "cache_hit_rate");
    assert!(hit_rate > 0.0 && hit_rate <= 1.0, "hit rate {hit_rate} out of range");
    handle.shutdown();
}

#[test]
fn overload_sheds_excess_clients_without_blocking() {
    // One worker, one queue slot: with the worker pinned by a long run,
    // at most one of the concurrent clients can be admitted — everyone
    // else must get `overloaded` immediately, never a stalled socket.
    let handle = server(1, 1);
    let addr = handle.addr();

    let blocker = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect blocker");
        client.set_timeout(Some(Duration::from_secs(120))).unwrap();
        client.request(&run_request(1, 8000)).expect("blocker response")
    });
    let mut probe = SvcClient::connect(addr).expect("connect probe");
    wait_for_metric(&handle, &mut probe, "in_flight", |v| v >= 1.0);

    let barrier = Arc::new(Barrier::new(8));
    let overloaded = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let overloaded = Arc::clone(&overloaded);
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(120))).unwrap();
                barrier.wait();
                let started = Instant::now();
                let response = client.request(&small_score_request(10 + i, 2, 16, 1, 8, 3));
                let elapsed = started.elapsed();
                match response.expect("every client gets an answer") {
                    Response::Overloaded { retry_after_ms, .. } => {
                        assert!(retry_after_ms >= 1, "hint must be actionable");
                        assert!(
                            elapsed < Duration::from_secs(5),
                            "shed responses must be prompt, took {elapsed:?}"
                        );
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Response::ScoreResult { .. } => {} // the one admitted
                    other => panic!("unexpected response {other:?}"),
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no client thread may panic");
    }
    let shed = overloaded.load(Ordering::Relaxed);
    assert!(shed >= 7, "queue capacity 1 admits at most one of 8; shed {shed}");
    assert!(matches!(blocker.join().expect("blocker"), Response::RunResult { .. }));
    assert!(metrics_row(&handle, &mut probe, "requests_rejected_overload") >= 7.0);
    handle.shutdown();
}

#[test]
fn shutdown_drains_accepted_tcp_requests() {
    let handle = server(1, 8);
    let addr = handle.addr();

    // Pin the worker, then queue three more requests behind it.
    let blocker = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect blocker");
        client.set_timeout(Some(Duration::from_secs(120))).unwrap();
        client.request(&run_request(1, 8000)).expect("blocker response")
    });
    let mut probe = SvcClient::connect(addr).expect("connect probe");
    wait_for_metric(&handle, &mut probe, "in_flight", |v| v >= 1.0);
    let queued: Vec<_> = (0..3u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(120))).unwrap();
                client.request(&small_score_request(20 + i, 2, 16, 1, 8, 3)).expect("drained")
            })
        })
        .collect();
    wait_for_metric(&handle, &mut probe, "requests_accepted", |v| v >= 4.0);
    drop(probe);

    // Graceful shutdown must still answer all four admitted requests.
    handle.shutdown();
    assert!(matches!(blocker.join().expect("blocker"), Response::RunResult { .. }));
    for t in queued {
        assert!(matches!(t.join().expect("queued client"), Response::ScoreResult { .. }));
    }

    // And the endpoint is gone: connects are refused (or any surviving
    // socket yields no response).
    match SvcClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            late.set_timeout(Some(Duration::from_millis(200))).unwrap();
            assert!(late.request(&small_score_request(99, 2, 16, 1, 8, 3)).is_err());
        }
    }
}

#[test]
fn deadline_expiry_is_a_structured_error() {
    let handle = server(1, 8);
    let addr = handle.addr();
    let mut probe = SvcClient::connect(addr).expect("connect probe");

    // An already-expired deadline is deterministic in every
    // interleaving: the worker's checkpoint fires before (or during)
    // evaluation and answers with the structured deadline error.
    let mut victim = SvcClient::connect(addr).expect("connect victim");
    victim.set_timeout(Some(Duration::from_secs(120))).unwrap();
    let mut request = small_score_request(42, 2, 16, 1, 8, 3);
    request.deadline = Some(Duration::ZERO);
    match victim.request(&request).expect("victim response") {
        Response::Error { id, kind: ErrorKind::Deadline, message } => {
            assert_eq!(id, 42);
            assert!(message.contains("deadline expired"), "{message}");
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(metrics_row(&handle, &mut probe, "requests_deadline_expired") >= 1.0);

    // The connection (and service) keep working after the expiry.
    match victim.request(&small_score_request(43, 2, 16, 1, 8, 3)).expect("next request") {
        Response::ScoreResult { id, .. } => assert_eq!(id, 43),
        other => panic!("expected score result, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn client_disconnect_before_response_leaves_server_healthy() {
    let handle = server(2, 8);
    let addr = handle.addr();

    // Fire a long run and vanish before the answer can be written.
    {
        use std::io::Write;
        let mut doomed = std::net::TcpStream::connect(addr).expect("connect doomed");
        let mut line = run_request(7, 400).to_json();
        line.push('\n');
        doomed.write_all(line.as_bytes()).expect("send then vanish");
    } // dropped: socket closed with the request in flight

    // The server keeps serving new clients while (and after) absorbing
    // the failed response write.
    let mut client = SvcClient::connect(addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
    match client.request(&small_score_request(8, 2, 16, 1, 8, 3)).expect("healthy response") {
        Response::ScoreResult { id, placements, .. } => {
            assert_eq!(id, 8);
            assert!(!placements.is_empty());
        }
        other => panic!("expected score result, got {other:?}"),
    }
    // The orphaned run still completes and is accounted for.
    wait_for_metric(&handle, &mut client, "requests_completed", |v| v >= 2.0);
    handle.shutdown();
}

#[test]
fn malformed_json_yields_structured_error_not_a_dead_connection() {
    let handle = server(1, 8);
    let addr = handle.addr();
    let mut client = SvcClient::connect(addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    for (raw, expect_id) in [
        ("this is not json", 0),
        ("{\"type\":\"score\"", 0),
        ("{\"type\":\"frobnicate\",\"id\":7}", 7),
        ("{\"type\":\"score\",\"id\":9,\"members\":[]}", 9),
    ] {
        match client.request_raw(raw).expect("structured error line") {
            Response::Error { id, kind: ErrorKind::Malformed, message } => {
                assert_eq!(id, expect_id, "id echoed when recoverable: {raw}");
                assert!(!message.is_empty());
            }
            other => panic!("{raw:?}: expected malformed error, got {other:?}"),
        }
    }

    // Same connection still serves valid work afterwards.
    match client.request(&small_score_request(11, 2, 16, 1, 8, 3)).expect("recovered") {
        Response::ScoreResult { id, .. } => assert_eq!(id, 11),
        other => panic!("expected score result, got {other:?}"),
    }
    // Malformed lines are refused at the protocol layer, before
    // admission: the service's work counters only see the valid request.
    assert_eq!(metrics_row(&handle, &mut client, "requests_submitted"), 1.0);
    handle.shutdown();
}

#[test]
fn handler_panic_is_a_structured_internal_error_not_a_dead_connection() {
    // The fault-injection hook panics the front end on request id 66;
    // the server must contain it to that one request.
    let handle = serve(
        "127.0.0.1:0",
        SvcConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 64,
            default_deadline: None,
            journal: None,
            panic_on_request_id: Some(66),
            scan_workers: 0,
            cosched: None,
            tenant_policy: svc::TenantPolicy::default(),
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();
    let mut client = SvcClient::connect(addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    match client.request(&small_score_request(66, 2, 16, 1, 8, 3)).expect("contained panic") {
        Response::Error { id, kind: ErrorKind::Internal, message } => {
            assert_eq!(id, 66, "the poisoned request's id is echoed");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected internal error, got {other:?}"),
    }

    // The same connection — and fresh ones — still serve valid work.
    match client.request(&small_score_request(67, 2, 16, 1, 8, 3)).expect("same connection") {
        Response::ScoreResult { id, .. } => assert_eq!(id, 67),
        other => panic!("expected score result, got {other:?}"),
    }
    let mut fresh = SvcClient::connect(addr).expect("connect after panic");
    fresh.set_timeout(Some(Duration::from_secs(60))).unwrap();
    match fresh.request(&small_score_request(68, 2, 16, 1, 8, 3)).expect("fresh connection") {
        Response::ScoreResult { id, .. } => assert_eq!(id, 68),
        other => panic!("expected score result, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn client_submit_rides_out_real_overload() {
    // One worker, one queue slot, a long run pinning the worker: a
    // `submit` with a generous retry budget eventually lands where a
    // bare `request` would have returned `overloaded`.
    let handle = server(1, 1);
    let addr = handle.addr();
    let blocker = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect blocker");
        client.set_timeout(Some(Duration::from_secs(120))).unwrap();
        client.request(&run_request(1, 2000)).expect("blocker response")
    });
    let mut probe = SvcClient::connect(addr).expect("connect probe");
    wait_for_metric(&handle, &mut probe, "in_flight", |v| v >= 1.0);
    // Occupy the single queue slot too, so the submit below is shed at
    // least once before the backlog drains.
    let filler = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect filler");
        client.set_timeout(Some(Duration::from_secs(120))).unwrap();
        client.request(&small_score_request(4, 3, 16, 1, 8, 3)).expect("filler response")
    });
    wait_for_metric(&handle, &mut probe, "requests_accepted", |v| v >= 2.0);

    let mut client = SvcClient::connect(addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();
    let policy =
        svc::ClientRetryPolicy { max_attempts: 2000, max_backoff: Duration::from_millis(50) };
    match client.submit(&small_score_request(5, 2, 16, 1, 8, 3), &policy).expect("submit") {
        Response::ScoreResult { id, .. } => assert_eq!(id, 5),
        other => panic!("expected the retried score to land, got {other:?}"),
    }
    assert!(matches!(blocker.join().expect("blocker"), Response::RunResult { .. }));
    assert!(matches!(filler.join().expect("filler"), Response::ScoreResult { .. }));
    handle.shutdown();
}

/// Sustained mixed load with retry-on-overload from a dozen clients.
/// Slow by design; run with `cargo test -p svc -- --ignored`.
#[test]
#[ignore = "soak test: minutes of sustained load, exercised by the nightly CI step"]
fn soak_sustained_mixed_load_stays_consistent() {
    let handle = server(2, 4);
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(12));
    let threads: Vec<_> = (0..12u64)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(120))).unwrap();
                barrier.wait();
                let mut completed = 0u64;
                for round in 0..30u64 {
                    let id = 1000 * i + round;
                    let request = match (i + round) % 3 {
                        0 => small_score_request(id, 2, 16, 1, 8, 3),
                        1 => small_score_request(id, 3, 16, 1, 8, (2 + round % 3) as usize + 2),
                        _ => run_request(id, 4 + round % 4),
                    };
                    // Honor the backpressure contract: back off and retry
                    // on overload, bounded so the soak always terminates.
                    for _attempt in 0..50 {
                        match client.request(&request).expect("response under soak") {
                            Response::Overloaded { retry_after_ms, .. } => {
                                std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                            }
                            Response::ScoreResult { .. } | Response::RunResult { .. } => {
                                completed += 1;
                                break;
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
                completed
            })
        })
        .collect();
    let completed: u64 = threads.into_iter().map(|t| t.join().expect("soak client")).sum();
    assert_eq!(completed, 12 * 30, "every request eventually lands under retry");

    let mut probe = SvcClient::connect(addr).expect("connect probe");
    let submitted = metrics_row(&handle, &mut probe, "requests_submitted");
    let accepted = metrics_row(&handle, &mut probe, "requests_accepted");
    let rejected = metrics_row(&handle, &mut probe, "requests_rejected_overload");
    assert_eq!(submitted, accepted + rejected, "admission accounting must balance");
    assert!(metrics_row(&handle, &mut probe, "requests_completed") >= 360.0);
    assert!(metrics_row(&handle, &mut probe, "latency_p99_ms") > 0.0);
    assert!(metrics_row(&handle, &mut probe, "cache_hit_rate") > 0.0);
    drop(probe);
    handle.shutdown();
}
