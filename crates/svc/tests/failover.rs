//! Warm-standby failover tests: crash the primary at deterministic
//! journal offsets (via [`SvcFaultPlan`]), follow it from a standby
//! (shared file and TCP replication), promote, and assert the promoted
//! service answers with the dead primary's warm state — cache hits
//! visible in metrics, attach results bit-identical — while the
//! deposed primary's late appends are fenced off by the epoch.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use ensemble_core::ConfigId;
use svc::{
    serve, small_score_request, ErrorKind, FailoverClient, FailoverPolicy, FsyncPolicy,
    JournalConfig, Request, RequestBody, Response, RunRequest, Service, Standby, StandbyConfig,
    StandbySource, SvcClient, SvcConfig, SvcFaultPlan, Workloads,
};

fn temp_path(name: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("svc-failover-{}-{name}.jsonl", std::process::id()));
    cleanup(&path);
    path
}

/// Remove the journal and every sidecar a test may have produced.
fn cleanup(path: &PathBuf) {
    for suffix in ["", ".epoch", ".quarantine", ".hb"] {
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(suffix);
        let _ = std::fs::remove_file(path.with_file_name(name));
    }
}

fn config_with_journal(journal: JournalConfig) -> SvcConfig {
    SvcConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 32,
        default_deadline: None,
        journal: Some(journal),
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: None,
        tenant_policy: svc::TenantPolicy::default(),
    }
}

fn per_record_journal(path: &PathBuf, fault: Option<SvcFaultPlan>) -> JournalConfig {
    let mut journal = JournalConfig::new(path);
    journal.fsync = FsyncPolicy::PerRecord;
    journal.fault = fault;
    journal
}

fn run_request(id: u64, steps: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Run(RunRequest {
            spec: ConfigId::C1_5.build(),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

fn makespan_bits(response: &Response) -> u64 {
    match response {
        Response::RunResult { ensemble_makespan, .. } => ensemble_makespan.to_bits(),
        other => panic!("expected a run result, got {other:?}"),
    }
}

/// Polls `done` until it returns true or `deadline` elapses.
fn wait_for(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let start = Instant::now();
    while !done() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The core harness: the primary's journal crashes (torn tail
/// included) at a deterministic append, a file-follow standby picks up
/// everything durable, and promotion yields a service whose cache and
/// run index answer exactly as the dead primary would have.
#[test]
fn crash_point_promotion_preserves_warm_cache_and_runs() {
    let path = temp_path("crash-promote");
    // Appends: score → admit(1) + score(2); run → admit(3) + run(4);
    // the journal crashes at append 4 leaving a torn fragment, so the
    // run record is the last durable line.
    let fault =
        SvcFaultPlan { crash_after_append: Some(4), torn_tail: true, ..SvcFaultPlan::default() };
    let primary = Service::start(config_with_journal(per_record_journal(&path, Some(fault))));
    match primary.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { cached, .. } => assert!(!cached),
        other => panic!("expected score result, got {other:?}"),
    }
    let original = primary.submit(run_request(2, 2)).unwrap().wait();
    let original_bits = makespan_bits(&original);
    let stats = primary.journal_stats().expect("journalled");
    assert!(stats.degraded, "crash_after=4 must have degraded the journal");
    assert_eq!(stats.appended, 4);
    primary.shutdown();

    let standby = Standby::start(StandbyConfig::new(StandbySource::File(path.clone()))).unwrap();
    wait_for("standby catch-up", Duration::from_secs(10), || standby.status().records_applied >= 4);
    let status = standby.status();
    assert_eq!(status.admits, 2);
    assert_eq!(status.scores, 1);
    assert_eq!(status.runs_indexed, 1);
    // Read-only attach from the standby image matches the primary's
    // answer bit for bit.
    assert_eq!(makespan_bits(&standby.attach(70, 2)), original_bits);

    let promoted = standby
        .promote(SvcConfig { journal: None, ..config_with_journal(JournalConfig::new(&path)) })
        .unwrap();
    let m = promoted.metrics();
    assert_eq!(m.journal_replayed_scores, 1, "score cache warmed");
    assert_eq!(m.journal_replayed_runs, 1, "run index rebuilt");
    assert_eq!(m.journal_replay_dropped, 1, "the torn tail was sealed");
    assert_eq!(m.journal_epoch, 1, "promotion bumped the fencing epoch");
    match promoted.submit(small_score_request(10, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { cached, .. } => {
            assert!(cached, "the first post-promotion score of a seen shape must hit");
        }
        other => panic!("expected score result, got {other:?}"),
    }
    assert!(promoted.metrics().cache_hits >= 1, "the warm hit is metrics-visible");
    assert_eq!(makespan_bits(&promoted.attach(11, 2)), original_bits, "attach is bit-identical");
    promoted.shutdown();
    cleanup(&path);
}

/// Split brain: after a standby promotes over the shared journal, the
/// deposed primary's next append is rejected by the fencing epoch and
/// its journal degrades loudly instead of forking history.
#[test]
fn split_brain_deposed_primary_appends_are_fenced() {
    let path = temp_path("split-brain");
    let deposed = Service::start(config_with_journal(per_record_journal(&path, None)));
    match deposed.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { .. } => {}
        other => panic!("expected score result, got {other:?}"),
    }

    let standby = Standby::start(StandbyConfig::new(StandbySource::File(path.clone()))).unwrap();
    wait_for("standby catch-up", Duration::from_secs(10), || standby.status().records_applied >= 2);
    let promoted = standby
        .promote(SvcConfig { journal: None, ..config_with_journal(JournalConfig::new(&path)) })
        .unwrap();
    assert_eq!(promoted.metrics().journal_epoch, 1);

    // The deposed primary is still running and still answers requests —
    // but its journal appends are fenced, so nothing it does after the
    // takeover reaches the shared history.
    match deposed.submit(small_score_request(2, 3, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { .. } => {}
        other => panic!("expected score result, got {other:?}"),
    }
    let stats = deposed.journal_stats().expect("journalled");
    assert!(stats.fenced_appends >= 1, "late appends must be fenced, got {stats:?}");
    assert!(stats.degraded, "a fenced journal degrades to read-only");
    let m = deposed.metrics();
    assert!(m.journal_fenced_appends >= 1, "fencing is metrics-visible");
    assert!(m.journal_degraded);

    // The promoted side keeps appending normally at the higher epoch.
    match promoted.submit(small_score_request(3, 4, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { .. } => {}
        other => panic!("expected score result, got {other:?}"),
    }
    let promoted_stats = promoted.journal_stats().expect("journalled");
    assert!(!promoted_stats.degraded);
    assert!(promoted_stats.appended >= 2);
    deposed.shutdown();
    promoted.shutdown();
    cleanup(&path);
}

/// Network replication end to end: the standby streams records over a
/// `replicate` connection, survives an injected mid-stream drop by
/// reconnecting, refuses writes while read-only, and a failover client
/// rotates past it to the primary.
#[test]
fn network_standby_follows_through_a_dropped_stream_and_promotes() {
    let primary_path = temp_path("net-primary");
    let local_path = temp_path("net-local");
    // The first replication session drops after 2 record frames; the
    // standby must reconnect and restream to catch up.
    let fault = SvcFaultPlan { drop_stream_after: Some(2), ..SvcFaultPlan::default() };
    let handle =
        serve("127.0.0.1:0", config_with_journal(per_record_journal(&primary_path, Some(fault))))
            .unwrap();
    let addr = handle.addr().to_string();
    let mut client = SvcClient::connect(&addr).unwrap();
    match client.request(&small_score_request(1, 2, 16, 1, 8, 3)).unwrap() {
        Response::ScoreResult { .. } => {}
        other => panic!("expected score result, got {other:?}"),
    }
    let original_bits = makespan_bits(&client.request(&run_request(2, 2)).unwrap());

    let mut standby_config = StandbyConfig::new(StandbySource::Primary {
        addr: addr.clone(),
        local: local_path.clone(),
    });
    standby_config.serve_addr = Some("127.0.0.1:0".to_string());
    let standby = Standby::start(standby_config).unwrap();
    wait_for("standby catch-up through the drop", Duration::from_secs(10), || {
        let s = standby.status();
        s.records_applied >= 4 && s.runs_indexed >= 1
    });
    let status = standby.status();
    assert!(status.resets >= 1, "the injected drop forced at least one restream: {status:?}");
    assert!(status.beats >= 1, "heartbeats observed");

    // The standby's own front end serves metrics and attach read-only
    // and refuses work with the dedicated error kind.
    let standby_addr = standby.addr().expect("standby listener").to_string();
    let mut ro = SvcClient::connect(&standby_addr).unwrap();
    match ro
        .request(&Request {
            id: 5,
            deadline: None,
            progress: None,
            tenant: None,
            body: RequestBody::Metrics,
        })
        .unwrap()
    {
        Response::Metrics { rows, .. } => {
            let applied =
                rows.iter().find(|(k, _)| k == "standby_records_applied").map(|(_, v)| *v).unwrap();
            assert!(applied >= 4.0, "standby metrics expose the applied count, got {applied}");
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    match ro.request(&small_score_request(6, 2, 16, 1, 8, 3)).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Standby),
        other => panic!("a standby must refuse writes, got {other:?}"),
    }
    assert_eq!(makespan_bits(&ro.attach(7, 2).unwrap()), original_bits, "read-only attach matches");

    // A failover client pointed at [standby, primary] rotates past the
    // read-only refusal and lands on the primary.
    let mut failover = FailoverClient::new(
        vec![standby_addr, addr.clone()],
        FailoverPolicy { initial_backoff: Duration::from_millis(5), ..FailoverPolicy::default() },
    );
    match failover.request(&small_score_request(8, 2, 16, 1, 8, 3)).unwrap() {
        Response::ScoreResult { cached, .. } => assert!(cached, "primary answers from cache"),
        other => panic!("expected the primary's score result, got {other:?}"),
    }
    assert_eq!(failover.current_addr(), addr, "the failover client settled on the primary");

    // Kill the primary; heartbeats stop; the standby flags it dead and
    // promotes from its local journal copy.
    handle.shutdown();
    wait_for("primary declared dead", Duration::from_secs(10), || standby.primary_dead());
    let promoted = standby
        .promote(SvcConfig {
            journal: None,
            ..config_with_journal(JournalConfig::new(&local_path))
        })
        .unwrap();
    let m = promoted.metrics();
    assert_eq!(m.journal_replayed_runs, 1);
    assert_eq!(m.journal_epoch, 1);
    assert_eq!(makespan_bits(&promoted.attach(9, 2)), original_bits);
    promoted.shutdown();
    cleanup(&primary_path);
    cleanup(&local_path);
}

/// A fault-plan crash degrades the primary's journal mid-flight; the
/// very next replication heartbeat carries `degraded:1`, so the
/// standby declares the primary dead within roughly one heartbeat
/// interval instead of waiting out a multi-beat timeout.
#[test]
fn degraded_primary_is_detected_within_a_heartbeat() {
    let primary_path = temp_path("degraded-primary");
    let local_path = temp_path("degraded-local");
    let fault =
        SvcFaultPlan { crash_after_append: Some(4), torn_tail: true, ..SvcFaultPlan::default() };
    let handle =
        serve("127.0.0.1:0", config_with_journal(per_record_journal(&primary_path, Some(fault))))
            .unwrap();
    let addr = handle.addr().to_string();
    let mut client = SvcClient::connect(&addr).unwrap();
    match client.request(&small_score_request(1, 2, 16, 1, 8, 3)).unwrap() {
        Response::ScoreResult { .. } => {}
        other => panic!("expected score result, got {other:?}"),
    }
    let original_bits = makespan_bits(&client.request(&run_request(2, 2)).unwrap());
    assert!(handle.service().journal_stats().unwrap().degraded, "crash point reached");

    let standby = Standby::start(StandbyConfig::new(StandbySource::Primary {
        addr,
        local: local_path.clone(),
    }))
    .unwrap();
    let started = Instant::now();
    wait_for("degraded primary declared dead", Duration::from_secs(5), || standby.primary_dead());
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "death by degraded heartbeat must not wait out the full timeout, took {:?}",
        started.elapsed()
    );
    wait_for("records before promotion", Duration::from_secs(5), || {
        standby.status().records_applied >= 4
    });
    let promoted = standby
        .promote(SvcConfig {
            journal: None,
            ..config_with_journal(JournalConfig::new(&local_path))
        })
        .unwrap();
    assert_eq!(makespan_bits(&promoted.attach(3, 2)), original_bits);
    match promoted.submit(small_score_request(4, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { cached, .. } => assert!(cached, "warm cache survived failover"),
        other => panic!("expected score result, got {other:?}"),
    }
    promoted.shutdown();
    handle.shutdown();
    cleanup(&primary_path);
    cleanup(&local_path);
}

/// Nightly soak: generations of crash → follow → promote. Every run
/// whose record provably reached the journal before the crash must
/// remain attachable, bit-identical, after every later failover.
#[test]
#[ignore = "multi-generation failover soak; run with --ignored in the nightly job"]
fn soak_generations_of_crash_and_promotion_conserve_the_run_index() {
    let path = temp_path("soak");
    const GENERATIONS: u64 = 6;
    const RUNS_PER_GEN: u64 = 4;
    // Every generation's journal crashes around its last run's appends
    // (promoted generations spend one extra append on the epoch
    // record), so each cycle loses its tail and keeps the rest.
    let fault = SvcFaultPlan {
        crash_after_append: Some(2 * RUNS_PER_GEN),
        torn_tail: true,
        ..SvcFaultPlan::default()
    };
    let mut expected: Vec<(u64, u64)> = Vec::new(); // (job, makespan bits)
    let mut service = Service::start(config_with_journal(per_record_journal(&path, Some(fault))));
    for generation in 0..GENERATIONS {
        for i in 0..RUNS_PER_GEN {
            let job = generation * 100 + i + 1;
            let before = service.journal_stats().unwrap().appended;
            let response = service.submit(run_request(job, 1)).unwrap().wait();
            let stats = service.journal_stats().unwrap();
            // Admit + run both durable ⇒ the run must survive failover.
            if stats.appended >= before + 2 {
                expected.push((job, makespan_bits(&response)));
            }
        }
        service.shutdown();

        let standby =
            Standby::start(StandbyConfig::new(StandbySource::File(path.clone()))).unwrap();
        let want = expected.len() as u64;
        wait_for("soak standby catch-up", Duration::from_secs(20), || {
            standby.status().runs_indexed >= want
        });
        let promoted =
            standby.promote(config_with_journal(per_record_journal(&path, Some(fault)))).unwrap();
        for &(job, bits) in &expected {
            assert_eq!(
                makespan_bits(&promoted.attach(job, job)),
                bits,
                "generation {generation}: job {job} lost or changed across failover"
            );
        }
        service = promoted;
    }
    service.shutdown();
    assert!(
        expected.len() as u64 >= GENERATIONS * (RUNS_PER_GEN - 1),
        "most runs must have survived: {} of {}",
        expected.len(),
        GENERATIONS * RUNS_PER_GEN
    );
    cleanup(&path);
}
