//! Co-scheduler integration tests: concurrent ensembles against live
//! residual capacity, admission-queue dynamics (FIFO + EASY backfill),
//! deadline expiry of queued submits, journal-replayed reservations,
//! and the wire-level `submit` protocol with per-tenant accounting.
//!
//! Platform sizing used throughout: nodes of 32 cores; a "large" member
//! is 16 sim + 8 analysis = 24 cores (two cannot share a node), a
//! "small" member is 4 + 4 = 8 cores (fits beside a large one).

use std::time::{Duration, Instant};

use ensemble_core::ConfigId;
use scheduler::{EnsembleShape, NodeBudget};
use svc::{
    serve, CoschedSvcConfig, ErrorKind, Journal, JournalConfig, ReplayedReservation, Request,
    RequestBody, Response, RunRequest, Service, SubmitRequest, SvcClient, SvcConfig, Workloads,
};

fn cosched_config(nodes: usize, workers: usize) -> SvcConfig {
    SvcConfig {
        workers,
        queue_capacity: 32,
        cache_capacity: 32,
        default_deadline: None,
        journal: None,
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: Some(CoschedSvcConfig::new(NodeBudget { max_nodes: nodes, cores_per_node: 32 })),
        tenant_policy: svc::TenantPolicy::default(),
    }
}

fn submit_request(id: u64, members: usize, sim_cores: u32, ana_cores: u32) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Submit(SubmitRequest {
            shape: EnsembleShape::uniform(members, sim_cores, 1, ana_cores),
            steps: 4,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

fn large(id: u64) -> Request {
    submit_request(id, 1, 16, 8) // 24 cores: two cannot share a node
}

fn small(id: u64) -> Request {
    submit_request(id, 1, 4, 4) // 8 cores: fits beside a large member
}

/// A long plain `run` that occupies one worker for a couple of seconds
/// (~20 µs/step unoptimized) — holds the pool busy so admissions made
/// behind it are decided while earlier reservations are provably still
/// open, without any sleep-and-hope timing.
fn blocker(id: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Run(RunRequest {
            spec: ConfigId::C1_5.build(),
            steps: 100_000,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

fn expect_submit(response: Response) -> (Vec<usize>, bool, f64) {
    match response {
        Response::SubmitResult { assignment, backfilled, queue_wait_ms, residual, .. } => {
            assert!(!assignment.is_empty());
            assert!(!residual.is_empty());
            (assignment, backfilled, queue_wait_ms)
        }
        other => panic!("expected submit result, got {other:?}"),
    }
}

#[test]
fn concurrent_submits_never_overlap_node_assignments() {
    let svc = Service::start(cosched_config(2, 1));
    // The single worker is pinned on the blocker, so both submits are
    // admitted — and their reservations opened — before either run can
    // start: the second placement sees the first's committed capacity,
    // not an idle platform.
    let blocked = svc.submit(blocker(100)).unwrap();
    let a = svc.submit(large(1)).unwrap();
    let b = svc.submit(large(2)).unwrap();
    let m = svc.metrics();
    assert_eq!(m.cosched_open_reservations, 2, "both reservations open concurrently");
    assert_eq!(m.cosched_committed_cores, 48);
    let (nodes_a, _, _) = expect_submit(a.wait());
    let (nodes_b, _, _) = expect_submit(b.wait());
    assert!(matches!(blocked.wait(), Response::RunResult { .. }));
    assert!(
        nodes_a.iter().all(|n| !nodes_b.contains(n)),
        "24-core members cannot share a 32-core node: {nodes_a:?} vs {nodes_b:?}"
    );
    let m = svc.metrics();
    assert_eq!(m.cosched_open_reservations, 0, "drained service holds no residency");
    assert_eq!(m.cosched_committed_cores, 0);
    assert_eq!(m.cosched_placed, 2);
    svc.shutdown();
}

#[test]
fn backfill_places_a_small_job_past_a_blocked_head() {
    let svc = Service::start(cosched_config(1, 1));
    let blocked = svc.submit(blocker(100)).unwrap(); // pins the worker
    let a = svc.submit(large(1)).unwrap(); // node 0: 24/32 committed
    let b = svc.submit(large(2)).unwrap(); // blocked: 24 > 8 residual
    assert_eq!(svc.metrics().cosched_queue_depth, 1);
    let c = svc.submit(small(3)).unwrap(); // 8 cores fit the residual
    let (_, backfilled_c, wait_c) = expect_submit(c.wait());
    assert!(matches!(blocked.wait(), Response::RunResult { .. }));
    assert!(backfilled_c, "the small job jumped the blocked queue head");
    assert_eq!(wait_c, 0.0, "backfilled at admission, never queued");
    let (nodes_a, backfilled_a, _) = expect_submit(a.wait());
    let (nodes_b, _, wait_b) = expect_submit(b.wait());
    assert!(!backfilled_a, "first admission onto an idle platform is not a backfill");
    assert_eq!(nodes_a, nodes_b, "one-node platform: the head reuses the freed node");
    assert!(wait_b > 0.0, "the blocked head observed queue wait");
    let m = svc.metrics();
    assert_eq!(m.cosched_backfilled, 1);
    assert_eq!(m.cosched_open_reservations, 0);
    assert_eq!(m.cosched_committed_cores, 0);
    svc.shutdown();
}

#[test]
fn identical_request_streams_reproduce_identical_schedules() {
    let run = || {
        let svc = Service::start(cosched_config(2, 1));
        let mut placements = Vec::new();
        for id in 1..=6u64 {
            let request = if id % 2 == 0 { small(id) } else { large(id) };
            match svc.submit(request).unwrap().wait() {
                Response::SubmitResult { assignment, objective, .. } => {
                    placements.push((assignment, objective.to_bits()));
                }
                other => panic!("expected submit result, got {other:?}"),
            }
        }
        svc.shutdown();
        placements
    };
    assert_eq!(run(), run(), "same stream, same schedule, bit-identical objectives");
}

#[test]
fn deadline_expired_backlog_leaks_no_residual_capacity() {
    let svc = Service::start(cosched_config(1, 1));
    let blocked = svc.submit(blocker(100)).unwrap(); // pins the worker
    let a = svc.submit(large(1)).unwrap();
    // Two more large jobs cannot fit while `a` holds its reservation;
    // their zero deadlines expire the moment they start waiting. The
    // regression this guards: an expired waiter must free its queue
    // slot without leaking any committed capacity.
    let queued: Vec<_> = (2..=3u64)
        .map(|id| {
            let mut request = large(id);
            request.deadline = Some(Duration::ZERO);
            svc.submit(request).unwrap()
        })
        .collect();
    assert!(matches!(blocked.wait(), Response::RunResult { .. }));
    expect_submit(a.wait());
    for pending in queued {
        match pending.wait() {
            Response::Error { kind: ErrorKind::Deadline, message, .. } => {
                assert!(message.contains("queued"), "{message}");
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
    }
    let m = svc.metrics();
    assert_eq!(m.deadline_expired, 2);
    assert_eq!(m.cosched_queue_depth, 0, "expired waiters freed their slots");
    assert_eq!(m.cosched_open_reservations, 0, "no reservation leaked");
    assert_eq!(m.cosched_committed_cores, 0, "no residual capacity leaked");
    svc.shutdown();
}

#[test]
fn journaled_reservations_rebuild_residency_after_restart() {
    let path =
        std::env::temp_dir().join(format!("svc-cosched-replay-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // A reserve record with no matching release — what a crash between
    // admission and completion leaves behind.
    {
        let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append_reserve(&ReplayedReservation {
            job: 7,
            members: vec![(16, vec![8])],
            // One slot per component: the sim and its analysis both on
            // node 0 — 24 cores committed there.
            assignment: vec![0, 0],
            predicted_end: 50.0,
            seq: 1,
            tenant: None,
        });
    }
    let mut config = cosched_config(2, 1);
    config.journal = Some(JournalConfig::new(&path));
    let svc = Service::start(config);
    let m = svc.metrics();
    assert_eq!(m.cosched_open_reservations, 1, "restart restored the orphan reservation");
    assert_eq!(m.cosched_committed_cores, 24);
    // New admissions see the restored residency: node 0 has 8 free, so
    // a large member must land elsewhere.
    let (nodes, _, _) = expect_submit(svc.submit(large(8)).unwrap().wait());
    assert!(!nodes.contains(&0), "placement avoided the restored reservation: {nodes:?}");
    // The operator path releases the orphan (its worker died with the
    // old process); a second release is a no-op.
    assert!(svc.release_reservation(7));
    assert!(!svc.release_reservation(7));
    let m = svc.metrics();
    assert_eq!(m.cosched_open_reservations, 0);
    assert_eq!(m.cosched_committed_cores, 0);
    svc.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn submit_over_the_wire_reports_placement_and_tenant_rows() {
    let handle = serve("127.0.0.1:0", cosched_config(2, 2)).expect("bind");
    let mut client = SvcClient::connect(handle.addr()).expect("connect");
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut request = large(1);
    request.tenant = Some("team-a".to_string());
    match client.request(&request).expect("response") {
        Response::SubmitResult { id, assignment, nodes_used, residual, members, .. } => {
            assert_eq!(id, 1);
            assert_eq!(assignment.len(), 2, "one slot per component (sim + analysis)");
            assert_eq!(nodes_used, 1);
            assert_eq!(residual.len(), 2, "one residual entry per node");
            assert_eq!(members.len(), 1);
        }
        other => panic!("expected submit result, got {other:?}"),
    }
    let metrics =
        Request { id: 2, deadline: None, progress: None, tenant: None, body: RequestBody::Metrics };
    match client.request(&metrics).expect("metrics") {
        Response::Metrics { rows, .. } => {
            let get = |name: &str| {
                rows.iter()
                    .find(|(n, _)| n == name)
                    .unwrap_or_else(|| panic!("missing row {name}"))
                    .1
            };
            assert_eq!(get("cosched_enabled"), 1.0);
            assert_eq!(get("cosched_placed"), 1.0);
            assert_eq!(get("cosched_open_reservations"), 0.0);
            assert_eq!(get("tenant_team-a_admitted"), 1.0);
            assert_eq!(get("tenant_team-a_executed"), 1.0);
            assert_eq!(get("tenant_team-a_shed"), 0.0);
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn submit_without_cosched_is_rejected_with_a_clear_error() {
    let mut config = cosched_config(2, 1);
    config.cosched = None;
    let svc = Service::start(config);
    match svc.submit(large(1)).unwrap().wait() {
        Response::Error { kind: ErrorKind::Invalid, message, .. } => {
            assert!(message.contains("--cosched"), "{message}");
        }
        other => panic!("expected invalid, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn infeasible_ensembles_are_refused_at_admission() {
    let svc = Service::start(cosched_config(1, 1));
    // 4 members × 24 cores = 96 cores can never fit one 32-core node.
    match svc.submit(submit_request(1, 4, 16, 8)).unwrap().wait() {
        Response::Error { kind: ErrorKind::Invalid, message, .. } => {
            assert!(message.contains("cannot fit"), "{message}");
        }
        other => panic!("expected invalid, got {other:?}"),
    }
    assert_eq!(svc.metrics().cosched_infeasible, 1);
    svc.shutdown();
}

/// Sustained mixed interactive/batch stream against the co-scheduler —
/// the nightly leak check: after the stream drains, the residency map
/// must be empty and committed capacity exactly zero. Run with
/// `-- --ignored`.
#[test]
#[ignore = "soak test: sustained co-scheduled load, run explicitly or nightly"]
fn soak_mixed_stream_leaks_no_residual_capacity() {
    let handle = serve("127.0.0.1:0", cosched_config(2, 3)).expect("bind");
    let addr = handle.addr();
    let stop_at = Instant::now() + Duration::from_secs(15);
    let threads: Vec<_> = (0..3u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let mut round = 0u64;
                let mut answered = 0u64;
                while Instant::now() < stop_at {
                    let id = 100_000 * (t + 1) + round;
                    let mut request = match round % 4 {
                        0 => small(id),
                        1 => large(id),
                        // Interactive lane: score queries share the pool
                        // with co-scheduled runs.
                        _ => svc::small_score_request(id, 2, 16, 1, 8, 2),
                    };
                    if round % 5 == 0 {
                        // Some submits expire while queued — the leak
                        // the drain assertion below would catch.
                        request.deadline = Some(Duration::from_millis(1));
                    }
                    request.tenant = Some(if t == 0 { "interactive" } else { "batch" }.to_string());
                    match client.request(&request) {
                        Ok(Response::Overloaded { retry_after_ms, .. }) => {
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(20)));
                        }
                        Ok(_) => answered += 1,
                        Err(e) => panic!("wire failure under soak: {e}"),
                    }
                    round += 1;
                }
                answered
            })
        })
        .collect();
    let answered: u64 = threads.into_iter().map(|t| t.join().expect("soak thread")).sum();
    assert!(answered > 0);
    let m = handle.metrics();
    assert_eq!(m.cosched_open_reservations, 0, "drained soak leaked reservations: {m:?}");
    assert_eq!(m.cosched_committed_cores, 0, "drained soak leaked capacity: {m:?}");
    assert_eq!(m.cosched_queue_depth, 0);
    assert!(m.cosched_placed > 0, "soak exercised placements: {m:?}");
    handle.shutdown();
}
