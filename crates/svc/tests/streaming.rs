//! End-to-end tests of opt-in progress streaming over real sockets.
//!
//! A progress-opted request sees `{"type":"progress"}` lines before its
//! final on the same connection; a legacy (non-opted) request sees the
//! exact pre-streaming wire bytes; a watcher that disconnects after the
//! first frame cancels the remaining scan; and overload shedding treats
//! opted requests exactly like any other.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use svc::{
    serve, small_score_request, ProgressBody, ProgressSpec, Request, RequestBody, Response,
    ScoreRequest, ServerHandle, SvcClient, SvcConfig, Workloads,
};

fn server(workers: usize, queue_capacity: usize) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        SvcConfig {
            workers,
            queue_capacity,
            cache_capacity: 64,
            default_deadline: None,
            journal: None,
            panic_on_request_id: None,
            scan_workers: 0,
            cosched: None,
            tenant_policy: svc::TenantPolicy::default(),
        },
    )
    .expect("bind ephemeral port")
}

/// A score over a ~4k-candidate space: dozens of per-64-candidate
/// progress frames before the final, but still seconds of scan even in
/// debug builds on a one-core runner.
fn medium_score_request(id: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: Some(ProgressSpec { every_candidates: Some(64), every_ms: None }),
        tenant: None,
        body: RequestBody::Score(ScoreRequest {
            shape: scheduler::EnsembleShape::uniform(4, 4, 1, 4),
            budget: scheduler::NodeBudget { max_nodes: 6, cores_per_node: 32 },
            top_k: 0,
            steps: 6,
            workloads: Workloads::Small,
            workers: 1,
        }),
    }
}

fn medium_space_total() -> u64 {
    scheduler::enumerate_placements(&scheduler::EnsembleShape::uniform(4, 4, 1, 4), 6, 32).len()
        as u64
}

/// A score over a space large enough (a hundred thousand placements)
/// that a watcher disconnecting mid-stream observably stops the scan
/// far short of completion. Only used where the scan is cancelled — a
/// full scan of this space takes minutes in debug builds.
fn big_score_request(id: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: Some(ProgressSpec { every_candidates: Some(64), every_ms: None }),
        tenant: None,
        body: RequestBody::Score(ScoreRequest {
            shape: scheduler::EnsembleShape::uniform(5, 4, 1, 4),
            budget: scheduler::NodeBudget { max_nodes: 8, cores_per_node: 32 },
            top_k: 16,
            steps: 6,
            workloads: Workloads::Small,
            workers: 1,
        }),
    }
}

fn big_space_total() -> u64 {
    scheduler::enumerate_placements(&scheduler::EnsembleShape::uniform(5, 4, 1, 4), 8, 32).len()
        as u64
}

/// A DES run long enough to hold a worker while other requests arrive.
/// Unlike a score, its duration does not shrink as the scan path gets
/// faster, so tests that need a busy worker stay deterministic.
fn run_request(id: u64, steps: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Run(svc::RunRequest {
            spec: ensemble_core::ConfigId::C1_5.build(),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

fn metric(client: &mut SvcClient, name: &str) -> f64 {
    let req =
        Request { id: 0, deadline: None, progress: None, tenant: None, body: RequestBody::Metrics };
    match client.request(&req) {
        Ok(Response::Metrics { rows, .. }) => rows
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("metric '{name}' missing from {rows:?}")),
        other => panic!("expected metrics response, got {other:?}"),
    }
}

#[test]
fn opted_score_streams_progress_frames_then_exactly_one_final() {
    let handle = server(1, 4);
    let mut client = SvcClient::connect(handle.addr()).expect("connect");
    let mut counts = Vec::new();
    let response = client
        .request_streaming(&medium_score_request(7), |p| {
            assert_eq!(p.id, 7);
            match &p.body {
                ProgressBody::Score { candidates_scanned, .. } => counts.push(*candidates_scanned),
                other => panic!("expected score progress, got {other:?}"),
            }
        })
        .expect("request");
    let total = medium_space_total();
    match response {
        Response::ScoreResult { id, candidates_scanned, .. } => {
            assert_eq!(id, 7);
            assert_eq!(candidates_scanned, total);
        }
        other => panic!("expected score result, got {other:?}"),
    }
    assert!(counts.len() >= 2, "expected several interim frames, got {counts:?}");
    assert!(counts.windows(2).all(|w| w[0] < w[1]), "monotone counts: {counts:?}");
    // The connection is clean after the final: a follow-up request on
    // the same client gets its own answer (no leftover frames).
    let m = metric(&mut client, "progress_frames_sent");
    assert_eq!(m as usize, counts.len());
    // The scan ran on the delta evaluator: its cache counters are
    // visible over the wire alongside the legacy metrics.
    assert!(metric(&mut client, "delta_solve_misses") >= 1.0, "a real scan runs solves");
    assert!(
        metric(&mut client, "delta_solve_hits") >= 1.0,
        "a 4k-candidate sweep revisits node-occupancy signatures"
    );
    assert!(metric(&mut client, "delta_members_recomputed") >= 1.0);
    handle.shutdown();
}

#[test]
fn opted_run_streams_member_steps() {
    let handle = server(1, 4);
    let mut client = SvcClient::connect(handle.addr()).expect("connect");
    let request = Request {
        id: 11,
        deadline: None,
        progress: Some(ProgressSpec { every_candidates: Some(1), every_ms: None }),
        tenant: None,
        body: RequestBody::Run(svc::RunRequest {
            spec: ensemble_core::ConfigId::C1_5.build(),
            steps: 10,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    };
    let mut frames = Vec::new();
    let response = client
        .request_streaming(&request, |p| match &p.body {
            ProgressBody::Run { steps, member_steps } => {
                frames.push((*steps, member_steps.clone()))
            }
            other => panic!("expected run progress, got {other:?}"),
        })
        .expect("request");
    assert!(matches!(response, Response::RunResult { id: 11, .. }), "got {response:?}");
    assert_eq!(frames.len(), 20, "2 members x 10 steps, one frame per step event");
    let (steps, members) = frames.last().expect("frames");
    assert_eq!(*steps, 10);
    assert!(members.iter().all(|&s| s == 10));
    handle.shutdown();
}

#[test]
fn legacy_requests_see_byte_identical_wire_behavior() {
    // Drive the protocol over a raw socket with a request line that has
    // no `progress` field: the reply must be exactly one line, with no
    // progress frames before it — byte-compatible with the
    // pre-streaming protocol.
    let handle = server(1, 4);
    let mut legacy = TcpStream::connect(handle.addr()).expect("connect");
    let mut line = small_score_request(21, 2, 16, 1, 8, 3).to_json();
    assert!(!line.contains("progress"), "legacy line must not opt in: {line}");
    line.push('\n');
    legacy.write_all(line.as_bytes()).expect("send");
    let mut reader = BufReader::new(legacy.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(
        !reply.contains("\"type\":\"progress\""),
        "a non-opted request must never receive a progress frame: {reply}"
    );
    let response = Response::from_json(reply.trim_end()).expect("final parses as a response");
    assert!(matches!(response, Response::ScoreResult { id: 21, .. }), "got {response:?}");
    // Nothing further is in flight for this request: a short read
    // timeout finds the socket silent.
    legacy.set_read_timeout(Some(Duration::from_millis(100))).expect("timeout");
    let mut probe = [0u8; 1];
    match legacy.read(&mut probe) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} extra bytes after the final response"),
        Err(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected read error {e:?}"
        ),
    }
    assert_eq!(handle.metrics().progress_frames_sent, 0);
    handle.shutdown();
}

#[test]
fn watcher_disconnecting_after_the_first_frame_cancels_the_scan() {
    let handle = server(1, 4);
    let addr = handle.addr();
    {
        let mut watcher = TcpStream::connect(addr).expect("connect");
        let mut line = big_score_request(31).to_json();
        line.push('\n');
        watcher.write_all(line.as_bytes()).expect("send");
        let mut reader = BufReader::new(watcher.try_clone().expect("clone"));
        let mut frame = String::new();
        reader.read_line(&mut frame).expect("read first frame");
        assert!(
            frame.contains("\"type\":\"progress\""),
            "the first line of an opted big scan is a progress frame: {frame}"
        );
        // Drop the socket mid-stream: the server's next progress write
        // fails, which must cancel the in-flight scan.
    }
    // The worker notices at its next cancellation probe; poll metrics
    // (served inline, never queued) until the cancel lands.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut probe = SvcClient::connect(addr).expect("connect probe");
    while metric(&mut probe, "requests_cancelled") < 1.0 {
        assert!(
            Instant::now() < deadline,
            "scan was never cancelled after the watcher disconnected"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let scanned = metric(&mut probe, "candidates_scanned") as u64;
    let total = big_space_total();
    assert!(
        scanned < total / 2,
        "the abandoned scan must stop well short of the space: {scanned} of {total}"
    );
    handle.shutdown();
}

#[test]
fn overload_sheds_progress_opted_requests_like_any_other() {
    // One worker, one queue slot: occupy both, then an opted request
    // must get `overloaded` as its single final frame — no progress
    // frames, no hang.
    let handle = server(1, 1);
    let addr = handle.addr();
    // Hold the single worker with a scan of the big space: reading its
    // first progress frame proves it is in flight, and it stays in
    // flight until this socket is dropped (watcher-disconnect cancels
    // it) — no race against how fast the evaluator scores.
    let blocker = TcpStream::connect(addr).expect("connect blocker");
    let mut line = big_score_request(41).to_json();
    line.push('\n');
    (&blocker).write_all(line.as_bytes()).expect("send blocker");
    let mut blocker_reader = BufReader::new(blocker.try_clone().expect("clone"));
    let mut frame = String::new();
    blocker_reader.read_line(&mut frame).expect("read first frame");
    assert!(frame.contains("\"type\":\"progress\""), "blocker not in flight: {frame}");
    let queued = std::thread::spawn(move || {
        let mut c = SvcClient::connect(addr).expect("connect queued");
        c.request(&run_request(42, 100)).expect("queued result")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().queue_depth == 0 {
        assert!(Instant::now() < deadline, "second request never queued");
        std::thread::yield_now();
    }
    let mut shed_client = SvcClient::connect(addr).expect("connect shed");
    let mut frames = 0usize;
    let shed = shed_client
        .request_streaming(&medium_score_request(43), |_| frames += 1)
        .expect("shed response");
    match shed {
        Response::Overloaded { id, retry_after_ms } => {
            assert_eq!(id, 43);
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(frames, 0, "a shed request must not stream progress");
    // Release the worker: the abandoned blocker scan cancels, and the
    // queued run gets its turn.
    drop(blocker_reader);
    drop(blocker);
    assert!(matches!(queued.join().expect("queued"), Response::RunResult { .. }));
    handle.shutdown();
}

#[test]
fn connection_handles_are_reaped_not_leaked() {
    // Regression for the accept-loop leak: the server used to push one
    // JoinHandle per connection ever served and only reap at shutdown,
    // so a long-lived server grew without bound under connect/disconnect
    // churn. With the sweep, tracked handles stay bounded by live
    // connections (+1 for a race with the reaper).
    let handle = server(1, 4);
    let addr = handle.addr();
    for i in 0..100 {
        let mut c = SvcClient::connect(addr).expect("connect");
        let response = c
            .request(&Request {
                id: i,
                deadline: None,
                progress: None,
                tenant: None,
                body: RequestBody::Metrics,
            })
            .expect("metrics");
        assert!(matches!(response, Response::Metrics { .. }));
        drop(c);
    }
    // The sweep runs on each accept, so poll by opening a fresh
    // connection each round until the finished handles are reaped.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let probe = TcpStream::connect(addr).expect("probe connect");
        std::thread::sleep(Duration::from_millis(20));
        drop(probe);
        let n = handle.tracked_connections();
        if n <= 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "tracked connection handles never shrank: {n} still held after 100 closed connections"
        );
    }
    handle.shutdown();
}

/// Long-running soak used by the nightly CI job (ignored in the normal
/// suite): a progress-opted watcher issuing repeated big scans while a
/// legacy client hammers small queries, asserting frame ordering and
/// connection health throughout.
#[test]
#[ignore = "nightly soak; run with --ignored"]
fn soak_progress_watcher_alongside_legacy_traffic() {
    let handle = server(2, 16);
    let addr = handle.addr();
    let legacy = std::thread::spawn(move || {
        let mut c = SvcClient::connect(addr).expect("connect legacy");
        for i in 0..200u64 {
            let r = c.request(&small_score_request(1000 + i, 2, 16, 1, 8, 3)).expect("small");
            assert!(matches!(r, Response::ScoreResult { .. }));
        }
    });
    let mut watcher = SvcClient::connect(addr).expect("connect watcher");
    for round in 0..5u64 {
        let mut req = medium_score_request(round);
        // Vary the cadence between candidate-count and wall-clock.
        if round % 2 == 1 {
            req.progress = Some(ProgressSpec { every_candidates: None, every_ms: Some(10) });
        }
        let mut last = 0u64;
        let response = watcher
            .request_streaming(&req, |p| {
                if let ProgressBody::Score { candidates_scanned, .. } = &p.body {
                    assert!(*candidates_scanned >= last, "monotone within a request");
                    last = *candidates_scanned;
                }
            })
            .expect("watched scan");
        assert!(matches!(response, Response::ScoreResult { .. }), "round {round}: {response:?}");
    }
    legacy.join().expect("legacy client");
    assert!(handle.metrics().progress_frames_sent > 0);
    handle.shutdown();
}
