//! Per-tenant quota and weighted-fair-admission integration tests.
//!
//! The headline demo is the starvation flip: with no tenant policy the
//! queue is one global FIFO and a batch flood starves an interactive
//! request (documented baseline); with lanes on, the interactive tenant
//! is served within one weighted round no matter how deep the batch
//! backlog is. The rest covers the accounting holes this PR closes:
//! quota shed with tenant-sized hints, the bounded tenant table, dead
//! waiters holding slots on a quiet server, and the conservation
//! invariant `admitted = executed + expired + cancelled + in_queue +
//! in_flight` per tenant.

use std::time::Duration;

use ensemble_core::ConfigId;
use scheduler::{EnsembleShape, NodeBudget};
use svc::{
    serve, CoschedSvcConfig, ErrorKind, Journal, JournalConfig, Rejected, ReplayedReservation,
    Request, RequestBody, Response, RunRequest, Service, SubmitRequest, SvcClient, SvcConfig,
    TenantPolicy, TenantRow, Workloads,
};

fn config(workers: usize, queue: usize, policy: TenantPolicy) -> SvcConfig {
    SvcConfig {
        workers,
        queue_capacity: queue,
        cache_capacity: 32,
        default_deadline: None,
        journal: None,
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: None,
        tenant_policy: policy,
    }
}

fn run_request(id: u64, tenant: Option<&str>, steps: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: tenant.map(str::to_string),
        body: RequestBody::Run(RunRequest {
            spec: ConfigId::C1_5.build(),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

/// A plain untagged `run` long enough (~20 µs/step) to pin one worker
/// while the test lines up the queue behind it — admission decisions
/// happen against a provably busy pool, no sleep-and-hope.
fn blocker(id: u64) -> Request {
    run_request(id, None, 30_000)
}

fn tenant_row(svc: &Service, name: &str) -> TenantRow {
    svc.metrics()
        .tenants
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, row)| row.clone())
        .unwrap_or_else(|| panic!("tenant '{name}' missing from snapshot"))
}

fn assert_conserved(row: &TenantRow, name: &str) {
    assert_eq!(
        row.admitted,
        row.executed + row.expired + row.cancelled + row.in_queue + row.in_flight,
        "conservation broken for '{name}': {row:?}"
    );
}

/// Baseline (policy off): one global FIFO, so every batch item admitted
/// ahead of the interactive request executes first. This is the
/// documented starvation the fair queue exists to fix — the companion
/// test below flips it by turning the policy on.
#[test]
fn fifo_baseline_starves_interactive_behind_a_batch_flood() {
    let svc = Service::start(config(1, 16, TenantPolicy::default()));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let batch: Vec<_> =
        (0..4).map(|i| svc.submit(run_request(i, Some("batch"), 10_000)).unwrap()).collect();
    let interactive = svc.submit(run_request(50, Some("interactive"), 4)).unwrap();
    assert!(matches!(interactive.wait(), Response::RunResult { .. }));
    let row = tenant_row(&svc, "batch");
    assert_eq!(
        row.executed, 4,
        "FIFO baseline: the whole batch backlog ran before the interactive request"
    );
    for b in batch {
        assert!(matches!(b.wait(), Response::RunResult { .. }));
    }
}

/// The flip: same traffic, policy on. Batch and interactive ride
/// separate lanes, so the interactive request is dequeued within one
/// weighted round — almost the whole batch backlog is still waiting
/// when its result lands.
#[test]
fn fair_lanes_serve_interactive_while_batch_saturates() {
    let mut policy = TenantPolicy::default();
    policy.weights.insert("interactive".to_string(), 2);
    let svc = Service::start(config(1, 16, policy));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let batch: Vec<_> =
        (0..4).map(|i| svc.submit(run_request(i, Some("batch"), 10_000)).unwrap()).collect();
    let interactive = svc.submit(run_request(50, Some("interactive"), 4)).unwrap();
    assert!(matches!(interactive.wait(), Response::RunResult { .. }));
    let row = tenant_row(&svc, "batch");
    assert!(
        row.executed <= 2,
        "fair dequeue served interactive within one round; batch executed = {}",
        row.executed
    );
    for b in batch {
        assert!(matches!(b.wait(), Response::RunResult { .. }));
    }
    let interactive_row = tenant_row(&svc, "interactive");
    assert_eq!(interactive_row.weight, 2, "configured weight is visible in the snapshot");
}

/// Quota exhaustion sheds the over-quota tenant with a hint sized to
/// *its* backlog while the global queue still admits everyone else.
#[test]
fn quota_exhaustion_sheds_with_tenant_hint_while_others_admit() {
    let mut policy = TenantPolicy::default();
    policy.quotas.insert("batch".to_string(), 2);
    let svc = Service::start(config(1, 32, policy));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let b0 = svc.submit(run_request(1, Some("batch"), 4)).unwrap();
    let b1 = svc.submit(run_request(2, Some("batch"), 4)).unwrap();
    match svc.submit(run_request(3, Some("batch"), 4)) {
        Err(Rejected::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "hint must be actionable, got {retry_after_ms}");
        }
        other => panic!("third batch submit must be quota-shed, got {other:?}"),
    }
    // The global queue had 29 free slots: the shed was the tenant's
    // quota, not capacity — untagged and other-tenant traffic sails on.
    let ok = svc.submit(run_request(4, None, 4)).unwrap();
    let other = svc.submit(run_request(5, Some("team-a"), 4)).unwrap();
    let row = tenant_row(&svc, "batch");
    assert_eq!(row.admitted, 2);
    assert_eq!(row.shed, 1);
    assert_eq!(row.quota, 2, "configured quota is visible in the snapshot");
    for p in [b0, b1, ok, other] {
        assert!(matches!(p.wait(), Response::RunResult { .. }));
    }
    // Quota slots freed by completion: the tenant admits again.
    let again = svc.submit(run_request(6, Some("batch"), 4)).unwrap();
    assert!(matches!(again.wait(), Response::RunResult { .. }));
    let row = tenant_row(&svc, "batch");
    assert_conserved(&row, "batch");
    assert_eq!(row.executed, 3);
}

/// A client cycling random tenant tags cannot grow service memory (or
/// the metrics payload) without bound: past the cap, fresh tags fold
/// into the shared `other` row.
#[test]
fn tenant_flood_cannot_grow_the_table_unbounded() {
    let svc = Service::start(config(2, 256, TenantPolicy::default()));
    let pendings: Vec<_> = (0..100u64)
        .map(|i| svc.submit(run_request(i, Some(&format!("flood-{i}")), 1)).unwrap())
        .collect();
    for p in pendings {
        assert!(matches!(p.wait(), Response::RunResult { .. }));
    }
    let m = svc.metrics();
    let cap = TenantPolicy::DEFAULT_MAX_TRACKED;
    assert!(
        m.tenants.len() <= cap + 1,
        "{} tenant rows leaked past the cap of {cap} (+1 overflow row)",
        m.tenants.len()
    );
    let overflow = tenant_row(&svc, TenantPolicy::OVERFLOW_TENANT);
    assert_eq!(
        overflow.admitted,
        100 - cap as u64,
        "every tag past the cap folded into '{}'",
        TenantPolicy::OVERFLOW_TENANT
    );
    assert_conserved(&overflow, TenantPolicy::OVERFLOW_TENANT);
}

/// Unusable tenant tags are refused with a structured `invalid` error —
/// in-process and over the wire — and never mint a table row.
#[test]
fn invalid_tenant_tags_are_rejected_with_a_structured_error() {
    // In-process: validation happens before admission.
    let svc = Service::start(config(1, 8, TenantPolicy::default()));
    let mut bad = run_request(1, None, 1);
    bad.tenant = Some("has space".to_string());
    match svc.submit(bad).unwrap().wait() {
        Response::Error { kind: ErrorKind::Invalid, message, .. } => {
            assert!(message.starts_with("invalid tenant"), "unexpected message: {message}");
        }
        other => panic!("expected invalid-tenant error, got {other:?}"),
    }
    assert!(svc.metrics().tenants.is_empty(), "a rejected tag must not mint a row");
    drop(svc);

    // Over the wire: the decoder rejects the tag, the server maps it to
    // `invalid` (not `malformed` — the JSON itself was fine).
    let handle = serve("127.0.0.1:0", config(1, 8, TenantPolicy::default())).expect("bind");
    let mut client = SvcClient::connect(handle.addr()).expect("connect");
    let line = run_request(2, Some("placeholder"), 1).to_json().replace("placeholder", "no;semis");
    match client.request_raw(&line).expect("response") {
        Response::Error { kind: ErrorKind::Invalid, message, .. } => {
            assert!(message.starts_with("invalid tenant"), "unexpected message: {message}");
        }
        other => panic!("expected invalid-tenant error over the wire, got {other:?}"),
    }
    // The connection survives: the next well-formed request answers.
    let ok = client.request(&run_request(3, Some("fine-tag"), 1)).expect("response");
    assert!(matches!(ok, Response::RunResult { .. }));
    handle.shutdown();
}

fn cosched_config(policy: TenantPolicy) -> SvcConfig {
    SvcConfig {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 16,
        default_deadline: None,
        journal: None,
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: Some(CoschedSvcConfig::new(NodeBudget { max_nodes: 1, cores_per_node: 32 })),
        tenant_policy: policy,
    }
}

fn submit_request(id: u64, tenant: Option<&str>, deadline: Option<Duration>) -> Request {
    Request {
        id,
        deadline,
        progress: None,
        tenant: tenant.map(str::to_string),
        body: RequestBody::Submit(SubmitRequest {
            // 24 of 32 cores: two can never hold reservations at once,
            // so the second submit waits in the co-scheduler queue.
            shape: EnsembleShape::uniform(1, 16, 1, 8),
            steps: 4,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

/// PR 7 hole: on a quiet server a deadline-expired waiting submit held
/// its queue slot (and now its quota slot) forever, because reaping
/// only ran inside *other* requests' admissions. A metrics scrape now
/// reaps too.
#[test]
fn metrics_scrape_reaps_a_lone_expired_waiter() {
    let svc = Service::start(cosched_config(TenantPolicy::default()));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let placed = svc.submit(submit_request(1, Some("t"), None)).unwrap();
    let waiting =
        svc.submit(submit_request(2, Some("t"), Some(Duration::from_millis(50)))).unwrap();
    std::thread::sleep(Duration::from_millis(80));
    // No further traffic — the scrape itself must evict the dead waiter.
    let m = svc.metrics();
    assert_eq!(m.cosched_queue_depth, 0, "metrics() reaped the expired waiter");
    match waiting.wait() {
        Response::Error { kind: ErrorKind::Deadline, .. } => {}
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    assert!(matches!(placed.wait(), Response::SubmitResult { .. }));
    let row = tenant_row(&svc, "t");
    assert_eq!(row.expired, 1, "the reaped waiter lands in the expired bucket");
    assert_conserved(&row, "t");
}

/// Same hole from the caller's side: the waiter's own `wait_timeout`
/// expiry triggers the reap, so a lone client gets its deadline answer
/// with no other request ever arriving.
#[test]
fn wait_timeout_reaps_a_lone_expired_waiter() {
    let svc = Service::start(cosched_config(TenantPolicy::default()));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let _placed = svc.submit(submit_request(1, Some("t"), None)).unwrap();
    let waiting =
        svc.submit(submit_request(2, Some("t"), Some(Duration::from_millis(50)))).unwrap();
    match waiting.wait_timeout(Duration::from_millis(150)) {
        Ok(Response::Error { kind: ErrorKind::Deadline, .. }) => {}
        Ok(other) => panic!("expected deadline expiry, got {other:?}"),
        Err(_) => panic!("wait_timeout expiry must reap and deliver the deadline answer"),
    }
    let row = tenant_row(&svc, "t");
    assert_eq!(row.expired, 1);
    assert_conserved(&row, "t");
}

/// Every admitted job lands in exactly one terminal bucket — executed,
/// expired, or cancelled — across all three exits (worker drain, waiter
/// reap, cancellation), so the per-tenant sum closes at quiescence.
#[test]
fn per_tenant_accounting_conserves_every_admitted_job() {
    let svc = Service::start(config(1, 16, TenantPolicy::default()));
    let _blocked = svc.submit(blocker(100)).unwrap();
    let executed = svc.submit(run_request(1, Some("t"), 4)).unwrap();
    let mut with_deadline = run_request(2, Some("t"), 4);
    with_deadline.deadline = Some(Duration::from_millis(20));
    let expired = svc.submit(with_deadline).unwrap();
    let cancelled = svc.submit(run_request(3, Some("t"), 4)).unwrap();
    cancelled.cancel();
    assert!(matches!(executed.wait(), Response::RunResult { .. }));
    match expired.wait() {
        Response::Error { kind: ErrorKind::Deadline, .. } => {}
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    match cancelled.wait() {
        Response::Error { kind: ErrorKind::Cancelled, .. } => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
    let row = tenant_row(&svc, "t");
    assert_eq!((row.admitted, row.executed, row.expired, row.cancelled), (3, 1, 1, 1));
    assert_eq!((row.in_queue, row.in_flight), (0, 0), "quiescent service holds nothing");
    assert_conserved(&row, "t");
    assert!(row.queue_wait_p95_ms >= 0.0, "queue-wait quantiles populated");
}

/// Restart rebuilds per-tenant quota occupancy from the journal: an
/// orphan reservation left by a crash keeps holding its tenant's quota
/// in the new process until explicitly released.
#[test]
fn journaled_reservation_reoccupies_tenant_quota_after_restart() {
    let path = std::env::temp_dir().join(format!("svc-fair-replay-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append_reserve(&ReplayedReservation {
            job: 7,
            members: vec![(16, vec![8])],
            assignment: vec![0, 0],
            predicted_end: 50.0,
            seq: 1,
            tenant: Some("t".to_string()),
        });
    }
    let mut policy = TenantPolicy::default();
    policy.quotas.insert("t".to_string(), 1);
    let mut cfg = cosched_config(policy);
    cfg.journal = Some(JournalConfig::new(&path));
    let svc = Service::start(cfg);
    let row = tenant_row(&svc, "t");
    assert_eq!((row.admitted, row.in_flight), (1, 1), "orphan re-occupies the quota");
    // Quota 1 is fully held by the orphan: a live submit is shed even
    // though the platform and queue are otherwise empty.
    match svc.submit(submit_request(10, Some("t"), None)) {
        Err(Rejected::Overloaded { .. }) => {}
        other => panic!("orphan must hold the quota, got {other:?}"),
    }
    assert!(svc.release_reservation(7), "operator releases the orphan");
    let row = tenant_row(&svc, "t");
    assert_eq!((row.in_flight, row.cancelled), (0, 1), "released orphan retires as cancelled");
    assert_conserved(&row, "t");
    let admitted = svc.submit(submit_request(11, Some("t"), None)).unwrap();
    assert!(matches!(admitted.wait(), Response::SubmitResult { .. }));
    let row = tenant_row(&svc, "t");
    assert_conserved(&row, "t");
    drop(svc);
    let _ = std::fs::remove_file(&path);
}

/// Nightly soak: a batch flood and an interactive stream share a
/// quota'd server for hundreds of requests. The interactive tenant
/// finishes everything (zero starvation), shed batch requests retry to
/// completion, and the drained server's queues close at zero with both
/// tenants' books balanced.
#[test]
#[ignore = "multi-second soak; run with --ignored in the nightly lane"]
fn two_tenant_soak_drains_clean_with_no_starvation() {
    let mut policy = TenantPolicy::default();
    policy.quotas.insert("batch".to_string(), 4);
    policy.weights.insert("interactive".to_string(), 2);
    let handle = serve("127.0.0.1:0", config(2, 8, policy)).expect("bind");
    let addr = handle.addr();
    let batch = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut completed = 0u64;
        for i in 0..200u64 {
            loop {
                match client.request(&run_request(1000 + i, Some("batch"), 200)).expect("response")
                {
                    Response::RunResult { .. } => {
                        completed += 1;
                        break;
                    }
                    Response::Overloaded { .. } => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    other => panic!("unexpected batch response: {other:?}"),
                }
            }
        }
        completed
    });
    let interactive = std::thread::spawn(move || {
        let mut client = SvcClient::connect(addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut completed = 0u64;
        for i in 0..50u64 {
            match client.request(&run_request(2000 + i, Some("interactive"), 200)).expect("resp") {
                Response::RunResult { .. } => completed += 1,
                other => panic!("interactive starved or errored: {other:?}"),
            }
        }
        completed
    });
    assert_eq!(batch.join().expect("batch client"), 200);
    assert_eq!(interactive.join().expect("interactive client"), 50);
    let svc = handle.service();
    let m = svc.metrics();
    assert_eq!(m.queue_depth, 0, "drained server queues at zero");
    for name in ["batch", "interactive"] {
        let row = tenant_row(svc, name);
        assert_eq!((row.in_queue, row.in_flight), (0, 0), "'{name}' drained clean");
        assert_conserved(&row, name);
    }
    let interactive_row = tenant_row(svc, "interactive");
    assert_eq!(interactive_row.executed, 50, "zero starvation: every interactive run finished");
    handle.shutdown();
}
