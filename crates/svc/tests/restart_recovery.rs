//! Restart-recovery tests for the journaled service: a service
//! restarted against its journal answers previously-seen queries from
//! the warmed cache, serves completed runs via `attach { job }`, shrugs
//! off a torn journal tail, and keeps the file bounded under rotation.
//!
//! In-process tests drive [`Service`] directly (restart = drop +
//! re-start against the same path); the wire test goes through a real
//! TCP server on an ephemeral port.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use ensemble_core::ConfigId;
use svc::{
    serve, small_score_request, ErrorKind, FsyncPolicy, JournalConfig, Request, RequestBody,
    Response, RunRequest, Service, SvcClient, SvcConfig, Workloads,
};

fn temp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("svc-restart-recovery-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn config_with_journal(journal: JournalConfig) -> SvcConfig {
    SvcConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 32,
        default_deadline: None,
        journal: Some(journal),
        panic_on_request_id: None,
        scan_workers: 0,
        cosched: None,
        tenant_policy: svc::TenantPolicy::default(),
    }
}

fn run_request(id: u64, steps: u64) -> Request {
    Request {
        id,
        deadline: None,
        progress: None,
        tenant: None,
        body: RequestBody::Run(RunRequest {
            spec: ConfigId::C1_5.build(),
            steps,
            jitter: 0.0,
            seed: 1,
            workloads: Workloads::Small,
        }),
    }
}

#[test]
fn replay_warms_the_score_cache_across_restart() {
    let path = temp_journal("warm-cache");
    {
        let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
        match svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait() {
            Response::ScoreResult { cached, .. } => assert!(!cached, "fresh query is a miss"),
            other => panic!("expected score result, got {other:?}"),
        }
        svc.shutdown();
    }
    // Restart against the same journal: the very first request of the
    // new process must be served from the replayed cache.
    let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
    let m = svc.metrics();
    assert!(m.journal_enabled);
    assert_eq!(m.journal_replayed_scores, 1, "replay recovered the scored query");
    assert_eq!(m.cache_entries, 1, "cache warmed before any request");
    match svc.submit(small_score_request(2, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { cached, placements, .. } => {
            assert!(cached, "first post-restart query of a seen shape must hit");
            assert!(!placements.is_empty());
        }
        other => panic!("expected score result, got {other:?}"),
    }
    let m = svc.metrics();
    assert_eq!(m.cache_hits, 1, "the hit is metrics-visible");
    assert_eq!(m.cache_misses, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn attach_returns_a_completed_run_after_restart() {
    let path = temp_journal("attach");
    let makespan = {
        let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
        let done = svc.submit(run_request(41, 6)).unwrap().wait();
        let Response::RunResult { ensemble_makespan, .. } = done else {
            panic!("expected run result, got {done:?}");
        };
        svc.shutdown();
        ensemble_makespan
    };
    let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
    assert_eq!(svc.metrics().journal_replayed_runs, 1);
    assert_eq!(svc.metrics().run_index_entries, 1);
    match svc.attach(7, 41) {
        Response::RunResult { id, ensemble_makespan, members, .. } => {
            assert_eq!(id, 7, "attach answers under its own correlation id");
            assert_eq!(ensemble_makespan.to_bits(), makespan.to_bits());
            assert_eq!(members.len(), 2, "C1.5 has two members");
        }
        other => panic!("expected run result, got {other:?}"),
    }
    match svc.attach(8, 999) {
        Response::Error { kind: ErrorKind::NotFound, message, .. } => {
            assert!(message.contains("999"), "{message}");
        }
        other => panic!("expected not_found, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_journal_tail_replays_cleanly() {
    let path = temp_journal("torn-tail");
    {
        let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
        assert!(matches!(
            svc.submit(small_score_request(1, 2, 16, 1, 8, 3)).unwrap().wait(),
            Response::ScoreResult { .. }
        ));
        assert!(matches!(
            svc.submit(run_request(2, 6)).unwrap().wait(),
            Response::RunResult { .. }
        ));
        svc.shutdown();
    }
    // Simulate a crash mid-append: a truncated final line, no newline.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\":\"score\",\"key\":\"torn-off-mid").unwrap();
    }
    let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
    let m = svc.metrics();
    assert_eq!(m.journal_replay_dropped, 1, "torn tail dropped, not fatal");
    assert_eq!(m.journal_replayed_scores, 1, "intact records still recovered");
    assert_eq!(m.journal_replayed_runs, 1);
    match svc.submit(small_score_request(3, 2, 16, 1, 8, 3)).unwrap().wait() {
        Response::ScoreResult { cached, .. } => assert!(cached, "warm-up survived the tear"),
        other => panic!("expected score result, got {other:?}"),
    }
    assert!(matches!(svc.attach(9, 2), Response::RunResult { .. }));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rotation_keeps_the_journal_under_the_size_cap() {
    let path = temp_journal("rotation");
    let mut journal = JournalConfig::new(&path);
    journal.max_bytes = 4096;
    // Keep the retained set well under the cap (a single-member score
    // record runs ~1.5 KiB, so two fit a 4 KiB cap with room to grow).
    journal.retain_scores = 2;
    journal.retain_runs = 2;
    let svc = Service::start(config_with_journal(journal));
    // Distinct queries (steps varies the cache key) so every score is a
    // fresh journaled record.
    for steps in 1..=40u64 {
        let mut request = small_score_request(steps, 1, 16, 1, 8, 2);
        let RequestBody::Score(score) = &mut request.body else { unreachable!() };
        score.steps = steps;
        assert!(matches!(svc.submit(request).unwrap().wait(), Response::ScoreResult { .. }));
    }
    let m = svc.metrics();
    assert!(m.journal_rotations >= 1, "rotation must have triggered, stats: {m:?}");
    assert!(
        m.journal_bytes <= 4096 + 1024,
        "journal stays near its cap after compaction, got {} bytes",
        m.journal_bytes
    );
    assert_eq!(m.journal_append_errors, 0);
    drop(svc);
    let disk = std::fs::metadata(&path).unwrap().len();
    assert!(disk <= 4096 + 1024, "on-disk size bounded, got {disk} bytes");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn attach_works_over_the_wire_across_server_restart() {
    let path = temp_journal("tcp-attach");
    let mut journal = JournalConfig::new(&path);
    journal.fsync = FsyncPolicy::PerRecord;
    let makespan = {
        let handle = serve("127.0.0.1:0", config_with_journal(journal.clone())).unwrap();
        let mut client = SvcClient::connect(handle.addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let done = client.request(&run_request(77, 6)).unwrap();
        let Response::RunResult { ensemble_makespan, .. } = done else {
            panic!("expected run result, got {done:?}");
        };
        handle.shutdown();
        ensemble_makespan
    };
    // A brand-new server process (new port, same journal) serves the
    // finished run to a brand-new client.
    let handle = serve("127.0.0.1:0", config_with_journal(journal)).unwrap();
    let mut client = SvcClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();
    match client.attach(5, 77).unwrap() {
        Response::RunResult { id, ensemble_makespan, .. } => {
            assert_eq!(id, 5);
            assert_eq!(ensemble_makespan.to_bits(), makespan.to_bits());
        }
        other => panic!("expected run result, got {other:?}"),
    }
    match client.attach(6, 12345).unwrap() {
        Response::Error { kind: ErrorKind::NotFound, .. } => {}
        other => panic!("expected not_found, got {other:?}"),
    }
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Sustained mixed load with a journal attached and an aggressive
/// rotation cap — catches fsync/rotation races. Run with `-- --ignored`
/// (the nightly soak does).
#[test]
#[ignore = "soak test: sustained journaled load, run explicitly or nightly"]
fn soak_journaled_service_under_sustained_load() {
    let path = temp_journal("soak");
    let mut journal = JournalConfig::new(&path);
    journal.max_bytes = 64 * 1024;
    journal.retain_scores = 16;
    journal.retain_runs = 16;
    let handle = serve("127.0.0.1:0", config_with_journal(journal)).unwrap();
    let addr = handle.addr();
    let stop_at = Instant::now() + Duration::from_secs(20);
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = SvcClient::connect(addr).expect("connect");
                client.set_timeout(Some(Duration::from_secs(60))).unwrap();
                let mut round = 0u64;
                while Instant::now() < stop_at {
                    let id = 1000 * t + round;
                    let response = if round.is_multiple_of(4) {
                        client.request(&run_request(id, 4))
                    } else {
                        let mut request = small_score_request(id, 2, 16, 1, 8, 3);
                        let RequestBody::Score(score) = &mut request.body else { unreachable!() };
                        score.steps = 1 + (round % 24);
                        client.request(&request)
                    };
                    match response.expect("request survives") {
                        Response::ScoreResult { .. } | Response::RunResult { .. } => {}
                        Response::Overloaded { retry_after_ms, .. } => {
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(50)));
                        }
                        other => panic!("unexpected response under soak: {other:?}"),
                    }
                    round += 1;
                }
                round
            })
        })
        .collect();
    let rounds: u64 = threads.into_iter().map(|t| t.join().expect("soak thread")).sum();
    assert!(rounds > 0);
    let m = handle.metrics();
    assert_eq!(m.journal_append_errors, 0, "no fsync/rotation races under load: {m:?}");
    assert!(m.journal_rotations >= 1, "the cap was aggressive enough to rotate: {m:?}");
    handle.shutdown();
    // The journal must still replay cleanly after the pounding.
    let svc = Service::start(config_with_journal(JournalConfig::new(&path)));
    assert_eq!(svc.metrics().journal_replay_dropped, 0);
    let _ = std::fs::remove_file(&path);
}
