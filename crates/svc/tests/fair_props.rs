//! Property-based tests of the weighted fair dequeuer
//! ([`svc::FairQueue`]): the guarantees the module docs promise —
//! per-lane FIFO, work conservation, bounded waiting (no starvation
//! within one weighted round), and bit-identical determinism — hold for
//! arbitrary push sequences, not just the handpicked unit-test shapes.

use std::collections::BTreeMap;

use proptest::prelude::*;
use svc::FairQueue;

const LANES: [&str; 4] = ["a", "b", "c", "d"];

/// A random assignment of items to lanes: index into [`LANES`], with
/// one extra slot meaning the implicit untagged lane.
fn pushes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..=LANES.len(), 1..=80)
}

fn lane_weights() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..=4u64, LANES.len())
}

fn lane_of(idx: usize) -> Option<&'static str> {
    LANES.get(idx).copied()
}

/// Drains the queue after pushing `seq`, returning `(lane_idx, item)`
/// in pop order. Items are numbered by push position, so order checks
/// fall out of integer comparisons.
fn drain(seq: &[usize], weights: &BTreeMap<String, u64>) -> Vec<(usize, usize)> {
    let q = FairQueue::new(seq.len().max(1), weights.clone());
    for (item, &lane) in seq.iter().enumerate() {
        q.try_push(lane_of(lane), (lane, item)).expect("capacity covers the whole sequence");
    }
    q.close();
    std::iter::from_fn(|| q.pop()).collect()
}

proptest! {
    #[test]
    fn per_lane_order_is_fifo_and_nothing_is_lost_or_duplicated(
        seq in pushes(),
        w in lane_weights(),
    ) {
        let weights: BTreeMap<String, u64> =
            LANES.iter().zip(&w).map(|(l, &w)| (l.to_string(), w)).collect();
        let drained = drain(&seq, &weights);

        // Work conservation: every pushed item comes out exactly once.
        let mut seen: Vec<usize> = drained.iter().map(|&(_, item)| item).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..seq.len()).collect::<Vec<_>>());

        // FIFO within each lane: the subsequence of any one lane is in
        // push order.
        for lane in 0..=LANES.len() {
            let order: Vec<usize> =
                drained.iter().filter(|&&(l, _)| l == lane).map(|&(_, item)| item).collect();
            prop_assert!(
                order.windows(2).all(|p| p[0] < p[1]),
                "lane {} popped out of push order: {:?}",
                lane,
                order
            );
        }
    }

    #[test]
    fn no_lane_waits_longer_than_one_weighted_round(
        seq in pushes(),
        w in lane_weights(),
    ) {
        let weights: BTreeMap<String, u64> =
            LANES.iter().zip(&w).map(|(l, &w)| (l.to_string(), w)).collect();
        let drained = drain(&seq, &weights);
        let weight_of = |lane: usize| -> u64 {
            LANES.get(lane).map_or(1, |l| weights[*l])
        };
        // Replay the drain against per-lane backlog counts: while a
        // lane has items, at most one full weighted round (the sum of
        // every *other* lane's weight) of foreign pops may pass before
        // it is served again.
        let mut backlog = vec![0u64; LANES.len() + 1];
        for &lane in &seq {
            backlog[lane] += 1;
        }
        let mut waited = vec![0u64; LANES.len() + 1];
        for &(popped, _) in &drained {
            for lane in 0..backlog.len() {
                if lane == popped || backlog[lane] == 0 {
                    continue;
                }
                waited[lane] += 1;
                let round: u64 =
                    (0..backlog.len()).filter(|&l| l != lane).map(weight_of).sum();
                prop_assert!(
                    waited[lane] <= round,
                    "lane {} starved: waited {} pops, one weighted round is {}",
                    lane,
                    waited[lane],
                    round
                );
            }
            waited[popped] = 0;
            backlog[popped] -= 1;
        }
    }

    #[test]
    fn identical_push_sequences_pop_bit_identically(
        seq in pushes(),
        w in lane_weights(),
    ) {
        let weights: BTreeMap<String, u64> =
            LANES.iter().zip(&w).map(|(l, &w)| (l.to_string(), w)).collect();
        // Determinism is the foundation of the reproducible-admission
        // acceptance bar: no clocks, hashes, or randomness may leak
        // into pop order.
        prop_assert_eq!(drain(&seq, &weights), drain(&seq, &weights));
    }

    #[test]
    fn single_lane_degenerates_to_plain_fifo(seq in pushes()) {
        // The inactive-policy wire-compatibility argument: one lane in,
        // exact FIFO out, whatever the weight table says about tenants
        // that never show up.
        let weights: BTreeMap<String, u64> =
            LANES.iter().map(|l| (l.to_string(), 3)).collect();
        let untagged: Vec<usize> = seq.iter().map(|_| LANES.len()).collect();
        let drained = drain(&untagged, &weights);
        let items: Vec<usize> = drained.iter().map(|&(_, item)| item).collect();
        prop_assert_eq!(items, (0..seq.len()).collect::<Vec<_>>());
    }
}
