//! Request-level service metrics: counters, gauges, and a latency
//! histogram with percentile extraction.
//!
//! Everything is lock-free (`AtomicU64`) so the hot path pays a handful
//! of relaxed increments. The histogram uses power-of-two microsecond
//! buckets — coarse, but percentiles of a service latency distribution
//! only need order-of-magnitude resolution, and recording is one atomic
//! add at any concurrency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40; // 2⁰ µs … 2³⁹ µs ≈ 9 days; saturating top.

/// Concurrent latency histogram over power-of-two microsecond buckets.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().max(1) as u64;
        let idx = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the *geometric midpoint* of the
    /// power-of-two bucket containing it, in milliseconds. Zero when no
    /// samples exist.
    ///
    /// Bucket `i` covers `[2^i, 2^{i+1})` µs; reporting its geometric
    /// midpoint `2^{i+1/2}` bounds the multiplicative error at `≤ √2`
    /// in either direction (the bucket's upper bound, by contrast,
    /// overstates the true quantile by up to 2×).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let snapshot: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &count) in snapshot.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_midpoint_ms(idx);
            }
        }
        bucket_midpoint_ms(BUCKETS - 1)
    }
}

/// Live counters of the service (see [`MetricsSnapshot`] for the
/// point-in-time view).
#[derive(Default)]
pub struct SvcStats {
    /// Requests offered to admission (accepted + rejected).
    pub submitted: AtomicU64,
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests shed with `Overloaded`.
    pub rejected: AtomicU64,
    /// Requests answered successfully.
    pub completed: AtomicU64,
    /// Requests that genuinely reached a worker and executed (as
    /// opposed to draining from the queue already expired/cancelled).
    /// Denominator of the mean-service-time estimate.
    pub executed: AtomicU64,
    /// Requests cancelled cooperatively before completion.
    pub cancelled: AtomicU64,
    /// Requests whose deadline expired before or during execution.
    pub deadline_expired: AtomicU64,
    /// Requests answered with a structured error.
    pub errored: AtomicU64,
    /// Requests currently executing on a worker.
    pub in_flight: AtomicU64,
    /// Cumulative busy nanoseconds across workers (drives the
    /// retry-after hint).
    pub busy_nanos: AtomicU64,
    /// Placement candidates pulled through the scan engine across all
    /// score requests (cache hits add nothing; cancelled scans add only
    /// what they actually evaluated).
    pub candidates_scanned: AtomicU64,
    /// Per-node interference solves served from the delta evaluator's
    /// occupancy-signature cache across all score scans.
    pub delta_solve_hits: AtomicU64,
    /// Per-node interference solves the delta evaluator had to run.
    pub delta_solve_misses: AtomicU64,
    /// Members whose indicator terms the delta evaluator recomputed
    /// (the rest were served from its per-member cache).
    pub delta_members_recomputed: AtomicU64,
    /// Interim progress frames delivered to progress-opted clients.
    pub progress_frames_sent: AtomicU64,
    /// Submit→response latency distribution.
    pub latency: LatencyHistogram,
}

/// Geometric midpoint of power-of-two µs bucket `idx`, in ms.
fn bucket_midpoint_ms(idx: usize) -> f64 {
    (1u64 << idx) as f64 * std::f64::consts::SQRT_2 / 1000.0
}

/// Seed for the mean-service-time estimate before any request finishes
/// (see [`SvcStats::mean_service_time_or`]).
pub const COLD_START_SERVICE_TIME: Duration = Duration::from_millis(25);

impl SvcStats {
    /// Mean execution time of finished requests, seeded with
    /// [`COLD_START_SERVICE_TIME`] before the first completion.
    pub fn mean_service_time(&self) -> Duration {
        self.mean_service_time_or(COLD_START_SERVICE_TIME)
    }

    /// Mean execution time of finished requests, or `fallback` while no
    /// sample exists yet. The fallback keeps the overload retry hint
    /// proportional to backlog at cold start instead of collapsing to
    /// the 1 ms floor (a thundering-herd invitation).
    ///
    /// Only requests that genuinely executed count: jobs that expire or
    /// cancel while still queued drain in near-zero time, and letting
    /// them into the denominator dragged the mean — and with it the
    /// overload retry hint — back toward that same floor.
    pub fn mean_service_time_or(&self, fallback: Duration) -> Duration {
        let executed = self.executed.load(Ordering::Relaxed);
        if executed == 0 {
            return fallback;
        }
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed) / executed)
    }
}

/// Point-in-time metrics view, exported via `metrics::export::kv_csv`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests offered to admission.
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests cancelled before completion.
    pub cancelled: u64,
    /// Requests that hit their deadline.
    pub deadline_expired: u64,
    /// Requests answered with a structured error.
    pub errored: u64,
    /// Requests that genuinely executed on a worker.
    pub executed: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Admission capacity of the queue.
    pub queue_capacity: usize,
    /// Requests executing right now.
    pub in_flight: u64,
    /// Worker pool size.
    pub workers: usize,
    /// Median submit→response latency, milliseconds (geometric midpoint
    /// of the histogram bucket, ≤ √2 ratio error).
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Score-cache hits.
    pub cache_hits: u64,
    /// Score-cache misses.
    pub cache_misses: u64,
    /// Entries resident in the score cache.
    pub cache_entries: usize,
    /// Placement candidates evaluated by the scan engine, cumulative.
    pub candidates_scanned: u64,
    /// Delta-evaluator per-node solves served from the signature cache.
    pub delta_solve_hits: u64,
    /// Delta-evaluator per-node solves actually run.
    pub delta_solve_misses: u64,
    /// Members the delta evaluator recomputed (vs served from cache).
    pub delta_members_recomputed: u64,
    /// Interim progress frames delivered to progress-opted clients.
    pub progress_frames_sent: u64,
    /// Completed runs held in the attachable-job index.
    pub run_index_entries: usize,
    /// Whether a journal is attached (all `journal_*` rows are zero
    /// when not).
    pub journal_enabled: bool,
    /// Journal records appended since open.
    pub journal_appended: u64,
    /// Journal appends that failed at the I/O layer.
    pub journal_append_errors: u64,
    /// Journal file size, bytes.
    pub journal_bytes: u64,
    /// Journal rotation/compaction passes since open.
    pub journal_rotations: u64,
    /// Score records recovered by the open-time replay.
    pub journal_replayed_scores: u64,
    /// Run records recovered by the open-time replay.
    pub journal_replayed_runs: u64,
    /// Torn/corrupt journal lines the replay dropped.
    pub journal_replay_dropped: u64,
    /// Journal fsync calls that reported failure (counted, never
    /// swallowed).
    pub journal_fsync_errors: u64,
    /// Corrupt journal lines quarantined at open.
    pub journal_quarantined: u64,
    /// Current fencing epoch of the journal.
    pub journal_epoch: u64,
    /// Journal appends rejected because a higher fencing epoch exists
    /// (this service was deposed by a promoted standby).
    pub journal_fenced_appends: u64,
    /// Whether the journal degraded to read-only (fenced, fault-killed,
    /// or past the consecutive-fsync-failure limit).
    pub journal_degraded: bool,
    /// Whether the co-scheduler is enabled (all `cosched_*` rows are
    /// zero when not).
    pub cosched_enabled: bool,
    /// Submit jobs waiting in the co-scheduler admission queue.
    pub cosched_queue_depth: usize,
    /// Reservations currently open in the residency map.
    pub cosched_open_reservations: usize,
    /// Cores committed across all open reservations.
    pub cosched_committed_cores: u64,
    /// Submit jobs placed immediately at admission.
    pub cosched_placed: u64,
    /// Submit jobs queued at admission.
    pub cosched_queued: u64,
    /// Queued jobs started out of FIFO order by backfill.
    pub cosched_backfilled: u64,
    /// Submit jobs shed at a full admission queue.
    pub cosched_shed: u64,
    /// Submit jobs rejected as infeasible on the empty platform.
    pub cosched_infeasible: u64,
    /// Reservations released (completion, failure, or rollback).
    pub cosched_released: u64,
    /// Queued jobs cancelled or expired before placement.
    pub cosched_cancelled: u64,
    /// Per-tenant accounting rows, sorted by tenant name. Requests
    /// without a tenant tag are not listed (the global rows cover them).
    pub tenants: Vec<(String, TenantRow)>,
}

/// Per-tenant request accounting (counted for every request kind, not
/// just submit). The terminal buckets are mutually exclusive, so the
/// conservation invariant holds at every snapshot:
/// `admitted = executed + expired + cancelled + in_queue + in_flight`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantRow {
    /// Requests from this tenant accepted into a queue.
    pub admitted: u64,
    /// Requests from this tenant that genuinely executed.
    pub executed: u64,
    /// Requests from this tenant shed with `Overloaded` (admission-time
    /// only; not part of `admitted`).
    pub shed: u64,
    /// Admitted requests that hit their deadline before executing (or
    /// while executing, when the entry checkpoint caught it).
    pub expired: u64,
    /// Admitted requests cancelled — cooperatively, at shutdown, or by
    /// a post-admission rollback — before executing.
    pub cancelled: u64,
    /// Requests currently queued (gauge).
    pub in_queue: u64,
    /// Requests currently executing on a worker (gauge).
    pub in_flight: u64,
    /// Slot quota applied to this tenant (0 = unlimited).
    pub quota: u64,
    /// Fair-dequeue weight of this tenant's lane.
    pub weight: u64,
    /// Median queue wait of this tenant's dequeued requests, ms.
    pub queue_wait_p50_ms: f64,
    /// 95th-percentile queue wait, ms.
    pub queue_wait_p95_ms: f64,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]` (zero before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The snapshot as `(metric, value)` rows, stable order.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("requests_submitted", self.submitted as f64),
            ("requests_accepted", self.accepted as f64),
            ("requests_rejected_overload", self.rejected as f64),
            ("requests_completed", self.completed as f64),
            ("requests_cancelled", self.cancelled as f64),
            ("requests_deadline_expired", self.deadline_expired as f64),
            ("requests_errored", self.errored as f64),
            ("requests_executed", self.executed as f64),
            ("queue_depth", self.queue_depth as f64),
            ("queue_capacity", self.queue_capacity as f64),
            ("in_flight", self.in_flight as f64),
            ("workers", self.workers as f64),
            ("latency_p50_ms", self.latency_p50_ms),
            ("latency_p95_ms", self.latency_p95_ms),
            ("latency_p99_ms", self.latency_p99_ms),
            ("cache_hits", self.cache_hits as f64),
            ("cache_misses", self.cache_misses as f64),
            ("cache_entries", self.cache_entries as f64),
            ("cache_hit_rate", self.cache_hit_rate()),
            ("candidates_scanned", self.candidates_scanned as f64),
            ("delta_solve_hits", self.delta_solve_hits as f64),
            ("delta_solve_misses", self.delta_solve_misses as f64),
            ("delta_members_recomputed", self.delta_members_recomputed as f64),
            ("progress_frames_sent", self.progress_frames_sent as f64),
            ("run_index_entries", self.run_index_entries as f64),
            ("journal_enabled", f64::from(u8::from(self.journal_enabled))),
            ("journal_appended", self.journal_appended as f64),
            ("journal_append_errors", self.journal_append_errors as f64),
            ("journal_bytes", self.journal_bytes as f64),
            ("journal_rotations", self.journal_rotations as f64),
            ("journal_replayed_scores", self.journal_replayed_scores as f64),
            ("journal_replayed_runs", self.journal_replayed_runs as f64),
            ("journal_replay_dropped", self.journal_replay_dropped as f64),
            ("journal_fsync_errors", self.journal_fsync_errors as f64),
            ("journal_quarantined", self.journal_quarantined as f64),
            ("journal_epoch", self.journal_epoch as f64),
            ("journal_fenced_appends", self.journal_fenced_appends as f64),
            ("journal_degraded", f64::from(u8::from(self.journal_degraded))),
            ("cosched_enabled", f64::from(u8::from(self.cosched_enabled))),
            ("cosched_queue_depth", self.cosched_queue_depth as f64),
            ("cosched_open_reservations", self.cosched_open_reservations as f64),
            ("cosched_committed_cores", self.cosched_committed_cores as f64),
            ("cosched_placed", self.cosched_placed as f64),
            ("cosched_queued", self.cosched_queued as f64),
            ("cosched_backfilled", self.cosched_backfilled as f64),
            ("cosched_shed", self.cosched_shed as f64),
            ("cosched_infeasible", self.cosched_infeasible as f64),
            ("cosched_released", self.cosched_released as f64),
            ("cosched_cancelled", self.cosched_cancelled as f64),
        ]
    }

    /// Every row of [`MetricsSnapshot::rows`] plus eleven
    /// `tenant_<name>_*` rows per tagged tenant — what the wire metrics
    /// response carries. Tenant tags are validated at decode
    /// (`[A-Za-z0-9._-]`, ≤ 64 bytes), so the `tenant_<name>_<counter>`
    /// key grammar stays unambiguous.
    pub fn all_rows(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> =
            self.rows().into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        for (tenant, row) in &self.tenants {
            rows.push((format!("tenant_{tenant}_admitted"), row.admitted as f64));
            rows.push((format!("tenant_{tenant}_executed"), row.executed as f64));
            rows.push((format!("tenant_{tenant}_shed"), row.shed as f64));
            rows.push((format!("tenant_{tenant}_expired"), row.expired as f64));
            rows.push((format!("tenant_{tenant}_cancelled"), row.cancelled as f64));
            rows.push((format!("tenant_{tenant}_queued"), row.in_queue as f64));
            rows.push((format!("tenant_{tenant}_in_flight"), row.in_flight as f64));
            rows.push((format!("tenant_{tenant}_quota"), row.quota as f64));
            rows.push((format!("tenant_{tenant}_weight"), row.weight as f64));
            rows.push((format!("tenant_{tenant}_queue_wait_p50_ms"), row.queue_wait_p50_ms));
            rows.push((format!("tenant_{tenant}_queue_wait_p95_ms"), row.queue_wait_p95_ms));
        }
        rows
    }

    /// CSV rendering through the shared metrics exporter (includes the
    /// per-tenant rows).
    pub fn to_csv(&self) -> String {
        let rows = self.all_rows();
        let borrowed: Vec<(&str, f64)> = rows.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        metrics::export::kv_csv(&borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket 2⁶ = 64–128 µs
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50)); // 2¹⁵ µs bucket: 32.8–65.5 ms
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        assert!((0.064..0.128).contains(&p50), "p50 {p50}ms must sit inside the 100µs bucket");
        let p99 = h.quantile_ms(0.99);
        assert!((32.768..65.536).contains(&p99), "p99 {p99}ms must sit inside the 50ms bucket");
        assert!(h.quantile_ms(0.50) <= h.quantile_ms(0.95));
        assert!(h.quantile_ms(0.95) <= h.quantile_ms(0.99));
    }

    #[test]
    fn quantiles_stay_within_the_true_bucket_bounds() {
        // Regression: quantile_ms used to return the bucket's *upper*
        // bound, overstating every percentile by up to 2×. A uniform
        // burst of known-latency samples must now report quantiles
        // within the true bounds of the bucket holding them.
        let h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.record(Duration::from_micros(300)); // bucket 2⁸ = 256–512 µs
        }
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let ms = h.quantile_ms(q);
            assert!(
                (0.256..0.512).contains(&ms),
                "q={q}: {ms}ms escapes the [0.256, 0.512)ms bucket"
            );
        }
        // And the documented error bound: within √2 of the true 0.3ms.
        let p50 = h.quantile_ms(0.5);
        let ratio = (p50 / 0.3).max(0.3 / p50);
        assert!(ratio <= std::f64::consts::SQRT_2 + 1e-9, "ratio error {ratio} exceeds √2");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn sub_microsecond_samples_land_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_ms(1.0) <= 0.01);
    }

    #[test]
    fn snapshot_rows_and_hit_rate() {
        let snap = MetricsSnapshot {
            submitted: 10,
            accepted: 8,
            rejected: 2,
            completed: 7,
            cancelled: 0,
            deadline_expired: 1,
            errored: 0,
            executed: 7,
            queue_depth: 0,
            queue_capacity: 16,
            in_flight: 0,
            workers: 2,
            latency_p50_ms: 1.0,
            latency_p95_ms: 4.0,
            latency_p99_ms: 8.0,
            cache_hits: 3,
            cache_misses: 1,
            cache_entries: 1,
            candidates_scanned: 42,
            delta_solve_hits: 9,
            delta_solve_misses: 3,
            delta_members_recomputed: 27,
            progress_frames_sent: 5,
            run_index_entries: 2,
            journal_enabled: true,
            journal_appended: 12,
            journal_append_errors: 0,
            journal_bytes: 4096,
            journal_rotations: 1,
            journal_replayed_scores: 3,
            journal_replayed_runs: 2,
            journal_replay_dropped: 1,
            journal_fsync_errors: 2,
            journal_quarantined: 1,
            journal_epoch: 3,
            journal_fenced_appends: 0,
            journal_degraded: false,
            cosched_enabled: true,
            cosched_queue_depth: 1,
            cosched_open_reservations: 2,
            cosched_committed_cores: 48,
            cosched_placed: 4,
            cosched_queued: 3,
            cosched_backfilled: 1,
            cosched_shed: 1,
            cosched_infeasible: 0,
            cosched_released: 2,
            cosched_cancelled: 1,
            tenants: vec![
                (
                    "batch".to_string(),
                    TenantRow {
                        admitted: 3,
                        executed: 2,
                        shed: 1,
                        expired: 1,
                        quota: 8,
                        weight: 1,
                        ..TenantRow::default()
                    },
                ),
                (
                    "team-a".to_string(),
                    TenantRow {
                        admitted: 5,
                        executed: 5,
                        weight: 4,
                        queue_wait_p50_ms: 1.5,
                        ..TenantRow::default()
                    },
                ),
            ],
        };
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
        let rows = snap.rows();
        assert_eq!(rows.len(), 49);
        let all = snap.all_rows();
        assert_eq!(all.len(), 49 + 22, "eleven rows per tagged tenant");
        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("cache_hit_rate,0.75"));
        assert!(csv.contains("candidates_scanned,42"));
        assert!(csv.contains("delta_solve_hits,9"));
        assert!(csv.contains("delta_solve_misses,3"));
        assert!(csv.contains("delta_members_recomputed,27"));
        assert!(csv.contains("progress_frames_sent,5"));
        assert!(csv.contains("requests_executed,7"));
        assert!(csv.contains("latency_p95_ms,4"));
        assert!(csv.contains("journal_enabled,1"));
        assert!(csv.contains("journal_replayed_scores,3"));
        assert!(csv.contains("cosched_enabled,1"));
        assert!(csv.contains("cosched_committed_cores,48"));
        assert!(csv.contains("cosched_backfilled,1"));
        assert!(csv.contains("tenant_batch_shed,1"));
        assert!(csv.contains("tenant_batch_expired,1"));
        assert!(csv.contains("tenant_batch_quota,8"));
        assert!(csv.contains("tenant_team-a_admitted,5"));
        assert!(csv.contains("tenant_team-a_weight,4"));
        assert!(csv.contains("tenant_team-a_queue_wait_p50_ms,1.5"));
    }

    #[test]
    fn mean_service_time_defaults_before_data() {
        let stats = SvcStats::default();
        assert_eq!(stats.mean_service_time(), COLD_START_SERVICE_TIME);
        assert_eq!(
            stats.mean_service_time_or(Duration::from_millis(300)),
            Duration::from_millis(300)
        );
        stats.completed.store(2, Ordering::Relaxed);
        stats.executed.store(2, Ordering::Relaxed);
        stats.busy_nanos.store(4_000_000, Ordering::Relaxed);
        assert_eq!(stats.mean_service_time(), Duration::from_millis(2));
        // Once real samples exist the fallback is ignored.
        assert_eq!(stats.mean_service_time_or(Duration::from_secs(9)), Duration::from_millis(2));
    }

    #[test]
    fn queue_drains_do_not_deflate_the_mean_service_time() {
        // Regression: expired/cancelled jobs drain from the queue in
        // near-zero time; counting them in the denominator dragged the
        // mean toward zero and the overload retry hint back to its
        // thundering-herd floor.
        let stats = SvcStats::default();
        stats.executed.store(4, Ordering::Relaxed);
        stats.completed.store(4, Ordering::Relaxed);
        stats.busy_nanos.store(4 * 20_000_000, Ordering::Relaxed);
        let before = stats.mean_service_time();
        assert_eq!(before, Duration::from_millis(20));
        // A flood of queue drains: expired + cancelled pile up, with no
        // extra executed work and no extra busy time.
        stats.deadline_expired.store(100, Ordering::Relaxed);
        stats.cancelled.store(50, Ordering::Relaxed);
        assert_eq!(stats.mean_service_time(), before, "drains must not shrink the mean");
    }
}
