//! Warm standby: follow a primary's journal, keep a hot image, take
//! over deterministically when the primary dies.
//!
//! A [`Standby`] consumes the primary's record stream from one of two
//! sources:
//!
//! - **File follow** ([`StandbySource::File`]) — tail the primary's
//!   journal directly over a shared filesystem with a
//!   [`JournalFollower`]. Liveness comes from the primary's
//!   `<journal>.hb` heartbeat file (see
//!   [`heartbeat_path`](crate::server::heartbeat_path)): when its
//!   mtime stops advancing, the primary is presumed dead. Promotion
//!   reopens the *same* journal with `promote = true`, which bumps the
//!   fencing epoch so the deposed primary's late appends are rejected.
//! - **Network replication** ([`StandbySource::Primary`]) — open a
//!   `replicate` request against the primary's TCP front end and apply
//!   the `repl-*` frames it streams, persisting every record verbatim
//!   into a local journal copy. Liveness comes from `repl-hb` frames;
//!   a heartbeat carrying `degraded:1` (the primary's journal crashed
//!   or was fenced) counts as death immediately. Promotion replays the
//!   local copy.
//!
//! While following, the standby serves **read-only** `metrics` and
//! `attach` on its own listener; anything that would mutate state is
//! refused with [`ErrorKind::Standby`] so clients can fail over
//! knowingly rather than silently double-running work.
//!
//! Promotion is supervised, not automatic: the caller decides (e.g.
//! after [`Standby::primary_dead`] turns true) and calls
//! [`Standby::promote`], which stops the follower, seals any torn tail
//! via normal journal replay, bumps the fencing epoch, and starts a
//! full read-write [`Service`] warm from the followed records.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::journal::{decode_line, FollowEvent, JournalConfig, JournalFollower, JournalRecord};
use crate::json::Value;
use crate::protocol::{ErrorKind, Request, RequestBody, Response};
use crate::server::{heartbeat_path, REPL_HEARTBEAT};
use crate::service::{Service, SvcConfig};

/// Missed heartbeats after which the primary is presumed dead.
pub const DEAD_AFTER_BEATS: u32 = 4;
/// Poll cadence for the follower and the read-only listener.
const POLL: Duration = Duration::from_millis(20);
/// Cap on the reconnect backoff of a network follower.
const MAX_RECONNECT_BACKOFF: Duration = Duration::from_secs(1);

/// Where a standby's record stream comes from.
#[derive(Debug, Clone)]
pub enum StandbySource {
    /// Tail the primary's journal file over a shared filesystem.
    File(PathBuf),
    /// Stream records from a primary's TCP front end, persisting them
    /// into a local journal copy.
    Primary {
        /// Primary address (`host:port`).
        addr: String,
        /// Local journal copy a promotion will replay.
        local: PathBuf,
    },
}

/// How a standby follows and when it gives up on the primary.
#[derive(Debug, Clone)]
pub struct StandbyConfig {
    /// Record-stream source.
    pub source: StandbySource,
    /// Bind address for the read-only front end; `None` serves nothing
    /// (in-process observation only).
    pub serve_addr: Option<String>,
    /// Expected primary heartbeat interval.
    pub heartbeat: Duration,
    /// Heartbeats the primary may miss before it is presumed dead.
    pub dead_after_beats: u32,
}

impl StandbyConfig {
    /// Defaults: no listener, the server's replication heartbeat
    /// cadence, dead after [`DEAD_AFTER_BEATS`] missed beats.
    pub fn new(source: StandbySource) -> StandbyConfig {
        StandbyConfig {
            source,
            serve_addr: None,
            heartbeat: REPL_HEARTBEAT,
            dead_after_beats: DEAD_AFTER_BEATS,
        }
    }
}

/// Point-in-time view of what the standby has applied and what it
/// knows about the primary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StandbyStatus {
    /// Records applied since the last reset.
    pub records_applied: u64,
    /// Admit records applied.
    pub admits: u64,
    /// Score records applied (the warm score-cache image).
    pub scores: u64,
    /// Distinct completed runs indexed (served read-only via attach).
    pub runs_indexed: u64,
    /// Reservations currently open (reserve net of release).
    pub open_reservations: u64,
    /// Stream resets observed (journal rotation, reconnects).
    pub resets: u64,
    /// Corrupt records skipped (checksum or parse failures).
    pub corrupt: u64,
    /// Highest fencing epoch seen in the stream.
    pub epoch: u64,
    /// Primary's appended count from its last heartbeat (network mode).
    pub primary_appended: u64,
    /// Heartbeats received from the primary.
    pub beats: u64,
    /// The primary reported its journal degraded (crashed or fenced).
    pub primary_degraded: bool,
}

/// The standby's warm image: counters plus the run index it serves
/// read-only.
#[derive(Default)]
struct Image {
    status: StandbyStatus,
    runs: HashMap<u64, Response>,
    reservations: HashSet<u64>,
}

impl Image {
    /// Discard everything derived from the stream (rotation or
    /// reconnect restreams from the top); cumulative counters
    /// (`resets`, `corrupt`, `beats`) survive.
    fn reset(&mut self) {
        self.runs.clear();
        self.reservations.clear();
        self.status.records_applied = 0;
        self.status.admits = 0;
        self.status.scores = 0;
        self.status.runs_indexed = 0;
        self.status.open_reservations = 0;
        self.status.resets += 1;
    }

    fn apply(&mut self, record: JournalRecord) {
        self.status.records_applied += 1;
        match record {
            JournalRecord::Admit { .. } => self.status.admits += 1,
            JournalRecord::Score { .. } => self.status.scores += 1,
            JournalRecord::Run { job, response } => {
                self.runs.insert(job, response);
                self.status.runs_indexed = self.runs.len() as u64;
            }
            JournalRecord::Reserve(r) => {
                self.reservations.insert(r.job);
                self.status.open_reservations = self.reservations.len() as u64;
            }
            JournalRecord::Release { job } => {
                self.reservations.remove(&job);
                self.status.open_reservations = self.reservations.len() as u64;
            }
            JournalRecord::Epoch { epoch } => {
                self.status.epoch = self.status.epoch.max(epoch);
            }
        }
    }
}

struct StandbyShared {
    stopping: AtomicBool,
    image: Mutex<Image>,
    last_beat: Mutex<Instant>,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl StandbyShared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    fn beat(&self) {
        *self.last_beat.lock().expect("beat lock") = Instant::now();
        self.image.lock().expect("image lock").status.beats += 1;
    }
}

/// A running warm standby. Drop stops the follower and listener
/// without promoting.
pub struct Standby {
    shared: Arc<StandbyShared>,
    local: PathBuf,
    heartbeat: Duration,
    dead_after_beats: u32,
    addr: Option<SocketAddr>,
    follow_thread: Option<std::thread::JoinHandle<()>>,
    listen_thread: Option<std::thread::JoinHandle<()>>,
}

impl Standby {
    /// Starts following per `config`. Returns once the follower (and
    /// listener, if configured) threads are running; catching up with
    /// the primary happens in the background.
    pub fn start(config: StandbyConfig) -> std::io::Result<Standby> {
        let shared = Arc::new(StandbyShared {
            stopping: AtomicBool::new(false),
            image: Mutex::new(Image::default()),
            last_beat: Mutex::new(Instant::now()),
            conns: Mutex::new(Vec::new()),
        });
        let local = match &config.source {
            StandbySource::File(path) => path.clone(),
            StandbySource::Primary { local, .. } => local.clone(),
        };
        // Seed the epoch from the sidecar so a standby of an already
        // promoted lineage never accepts a lower-epoch image.
        shared.image.lock().expect("image lock").status.epoch = crate::journal::read_epoch(&local);
        let follow_shared = Arc::clone(&shared);
        let source = config.source.clone();
        let heartbeat = config.heartbeat;
        let follow_thread =
            std::thread::Builder::new().name("svc-standby-follow".into()).spawn(move || {
                match source {
                    StandbySource::File(path) => follow_file(&path, &follow_shared),
                    StandbySource::Primary { addr, local } => {
                        follow_primary(&addr, &local, &follow_shared, heartbeat);
                    }
                }
            })?;
        let (addr, listen_thread) = match &config.serve_addr {
            Some(bind) => {
                let listener = TcpListener::bind(bind.as_str())?;
                listener.set_nonblocking(true)?;
                let local_addr = listener.local_addr()?;
                let listen_shared = Arc::clone(&shared);
                let t = std::thread::Builder::new()
                    .name("svc-standby-accept".into())
                    .spawn(move || accept_loop(&listener, &listen_shared))?;
                (Some(local_addr), Some(t))
            }
            None => (None, None),
        };
        Ok(Standby {
            shared,
            local,
            heartbeat: config.heartbeat,
            dead_after_beats: config.dead_after_beats,
            addr,
            follow_thread: Some(follow_thread),
            listen_thread,
        })
    }

    /// Bound address of the read-only front end, when one was
    /// configured.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// The journal file a promotion will replay (the followed file in
    /// file mode, the local copy in network mode).
    pub fn local_journal(&self) -> &Path {
        &self.local
    }

    /// Point-in-time follower status.
    pub fn status(&self) -> StandbyStatus {
        self.shared.image.lock().expect("image lock").status
    }

    /// Read-only attach from the warm run index — same answer the
    /// primary would give, echoing `id`.
    pub fn attach(&self, id: u64, job: u64) -> Response {
        attach_from_image(&self.shared, id, job)
    }

    /// True once the primary has missed `dead_after_beats` heartbeats
    /// (or reported its journal degraded). The supervisor polls this
    /// and decides whether to [`promote`](Standby::promote).
    pub fn primary_dead(&self) -> bool {
        let status = self.status();
        if status.primary_degraded {
            return true;
        }
        let last = *self.shared.last_beat.lock().expect("beat lock");
        last.elapsed() > self.heartbeat * self.dead_after_beats
    }

    /// Stops following and serving; returns the journal path a
    /// promotion would replay. Use when supervision happens out of
    /// process (e.g. the CLI re-execs a full server).
    pub fn stop(mut self) -> PathBuf {
        self.halt();
        std::mem::take(&mut self.local)
    }

    /// Promotes this standby into a full read-write [`Service`]:
    /// stops following, replays the followed journal (sealing any torn
    /// tail), bumps the fencing epoch so the deposed primary's late
    /// appends are rejected, and starts admitting.
    ///
    /// `config` supplies everything but the journal; its `journal`
    /// field (if any) donates fsync/rotation/retention settings while
    /// the path and `promote` flag are forced to the standby's.
    pub fn promote(self, mut config: SvcConfig) -> std::io::Result<Service> {
        let path = self.stop();
        let mut journal = config.journal.take().unwrap_or_else(|| JournalConfig::new(path.clone()));
        journal.path = path;
        journal.promote = true;
        config.journal = Some(journal);
        Service::try_start(config)
    }

    fn halt(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(t) = self.follow_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.listen_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.halt();
    }
}

fn apply_event(shared: &StandbyShared, event: FollowEvent) {
    let mut image = shared.image.lock().expect("image lock");
    match event {
        FollowEvent::Record { record, .. } => image.apply(record),
        FollowEvent::Reset => image.reset(),
        FollowEvent::Corrupt { .. } => image.status.corrupt += 1,
    }
}

/// Shared-filesystem follower: tail the journal, watch the heartbeat
/// file's mtime for liveness.
fn follow_file(path: &Path, shared: &StandbyShared) {
    let hb_path = heartbeat_path(path);
    let mut follower = JournalFollower::new(path);
    let mut last_mtime: Option<SystemTime> = None;
    while !shared.stopping() {
        for event in follower.poll().unwrap_or_default() {
            apply_event(shared, event);
        }
        if let Some(mtime) = std::fs::metadata(&hb_path).and_then(|m| m.modified()).ok() {
            if last_mtime != Some(mtime) {
                last_mtime = Some(mtime);
                shared.beat();
            }
        }
        std::thread::sleep(POLL);
    }
}

/// Network follower: keep a `replicate` stream open against the
/// primary, persist records into the local copy, reconnect with capped
/// backoff. Returns (ending the thread) once the primary reports
/// itself degraded — from then on only promotion makes progress.
fn follow_primary(addr: &str, local: &Path, shared: &StandbyShared, heartbeat: Duration) {
    let mut backoff = Duration::from_millis(50);
    while !shared.stopping() {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                backoff = Duration::from_millis(50);
                if stream_session(stream, local, shared, heartbeat) {
                    return; // primary reported degraded: stop following
                }
            }
            Err(_) => {}
        }
        sleep_observing_stop(shared, backoff);
        backoff = (backoff * 2).min(MAX_RECONNECT_BACKOFF);
    }
}

fn sleep_observing_stop(shared: &StandbyShared, total: Duration) {
    let deadline = Instant::now() + total;
    while !shared.stopping() && Instant::now() < deadline {
        std::thread::sleep(POLL.min(total));
    }
}

/// One replication session. Every (re)connect restreams the journal
/// from the top, so the local copy is truncated and the image reset
/// before applying. Returns true iff the primary declared itself
/// degraded (the caller stops following instead of reconnecting).
fn stream_session(
    mut stream: TcpStream,
    local: &Path,
    shared: &StandbyShared,
    heartbeat: Duration,
) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    if stream.write_all(b"{\"type\":\"replicate\",\"id\":1}\n").is_err() {
        return false;
    }
    let Ok(mut file) = std::fs::File::create(local) else {
        return false;
    };
    {
        let mut image = shared.image.lock().expect("image lock");
        if image.status.records_applied > 0 {
            image.reset();
        }
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_frame = Instant::now();
    while !shared.stopping() {
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            last_frame = Instant::now();
            let Ok(frame) = Value::parse(&line) else {
                shared.image.lock().expect("image lock").status.corrupt += 1;
                continue;
            };
            match frame.get("type").and_then(Value::as_str) {
                Some("repl-record") => {
                    let Some(record_line) = frame.get("line").and_then(Value::as_str) else {
                        shared.image.lock().expect("image lock").status.corrupt += 1;
                        continue;
                    };
                    let _ = writeln!(file, "{record_line}");
                    match decode_line(record_line.as_bytes()) {
                        Some(record) => apply_event(
                            shared,
                            FollowEvent::Record { line: record_line.to_string(), record },
                        ),
                        None => shared.image.lock().expect("image lock").status.corrupt += 1,
                    }
                }
                Some("repl-reset") => {
                    if file.set_len(0).is_ok() {
                        let _ = std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(0));
                    }
                    apply_event(shared, FollowEvent::Reset);
                }
                Some("repl-corrupt") => {
                    shared.image.lock().expect("image lock").status.corrupt += 1;
                }
                Some("repl-hb") => {
                    let epoch = frame.get("epoch").and_then(Value::as_u64).unwrap_or(0);
                    let appended = frame.get("appended").and_then(Value::as_u64).unwrap_or(0);
                    let degraded = frame.get("degraded").and_then(Value::as_u64).unwrap_or(0) != 0;
                    {
                        let mut image = shared.image.lock().expect("image lock");
                        image.status.epoch = image.status.epoch.max(epoch);
                        image.status.primary_appended = appended;
                        image.status.primary_degraded = degraded;
                    }
                    if degraded {
                        let _ = file.sync_data();
                        return true;
                    }
                    shared.beat();
                }
                _ => shared.image.lock().expect("image lock").status.corrupt += 1,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // primary closed (or an injected drop)
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                // A stalled stream (fault injection or a wedged primary)
                // keeps the connection open but silent: treat a long
                // frame gap exactly like a disconnect so the supervisor
                // sees missed heartbeats rather than a healthy follow.
                if last_frame.elapsed() > heartbeat * DEAD_AFTER_BEATS {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = file.sync_data();
    false
}

/// Read-only front end: metrics and attach answered from the image,
/// everything else refused with [`ErrorKind::Standby`].
fn accept_loop(listener: &TcpListener, shared: &Arc<StandbyShared>) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("svc-standby-conn".into())
                    .spawn(move || standby_connection(stream, &conn_shared))
                    .expect("spawn standby connection");
                let mut conns = shared.conns.lock().expect("conns lock");
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

fn standby_connection(mut stream: TcpStream, shared: &Arc<StandbyShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let response = standby_answer(shared, &line);
            let out = format!("{}\n", response.to_json());
            if stream.write_all(out.as_bytes()).and_then(|()| stream.flush()).is_err() {
                break 'conn;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if shared.stopping() {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
}

fn standby_answer(shared: &StandbyShared, line: &str) -> Response {
    let id = Value::parse(line).ok().and_then(|v| v.get("id").and_then(Value::as_u64)).unwrap_or(0);
    let request = match Request::from_json(line) {
        Ok(r) => r,
        Err(message) => return Response::Error { id, kind: ErrorKind::Malformed, message },
    };
    match request.body {
        RequestBody::Metrics => Response::Metrics { id: request.id, rows: standby_rows(shared) },
        RequestBody::Attach { job } => attach_from_image(shared, request.id, job),
        _ => Response::Error {
            id: request.id,
            kind: ErrorKind::Standby,
            message: "standby: read-only until promoted (metrics and attach only)".into(),
        },
    }
}

fn attach_from_image(shared: &StandbyShared, id: u64, job: u64) -> Response {
    let image = shared.image.lock().expect("image lock");
    match image.runs.get(&job) {
        Some(Response::RunResult { ensemble_makespan, members, elapsed_ms, .. }) => {
            Response::RunResult {
                id,
                ensemble_makespan: *ensemble_makespan,
                members: members.clone(),
                elapsed_ms: *elapsed_ms,
            }
        }
        Some(other) => Response::Error {
            id,
            kind: ErrorKind::Internal,
            message: format!("standby run index held a non-run response for job {job}: {other:?}"),
        },
        None => Response::Error {
            id,
            kind: ErrorKind::NotFound,
            message: format!("no completed run with job id {job}"),
        },
    }
}

/// Standby metrics rows (`standby_*` keys, disjoint from the primary's
/// rows so dashboards can tell which side answered).
fn standby_rows(shared: &StandbyShared) -> Vec<(String, f64)> {
    let image = shared.image.lock().expect("image lock");
    let s = image.status;
    vec![
        ("standby_records_applied".into(), s.records_applied as f64),
        ("standby_admits".into(), s.admits as f64),
        ("standby_scores".into(), s.scores as f64),
        ("standby_runs_indexed".into(), s.runs_indexed as f64),
        ("standby_open_reservations".into(), s.open_reservations as f64),
        ("standby_resets".into(), s.resets as f64),
        ("standby_corrupt".into(), s.corrupt as f64),
        ("standby_epoch".into(), s.epoch as f64),
        ("standby_primary_appended".into(), s.primary_appended as f64),
        ("standby_beats".into(), s.beats as f64),
        ("standby_primary_degraded".into(), f64::from(u8::from(s.primary_degraded))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MemberSummary;

    fn run_response(id: u64, makespan: f64) -> Response {
        Response::RunResult {
            id,
            ensemble_makespan: makespan,
            members: vec![MemberSummary { sigma_star: 1.0, efficiency: 0.9, cp: 1.0, makespan }],
            elapsed_ms: 2.0,
        }
    }

    #[test]
    fn image_applies_and_resets() {
        let mut image = Image::default();
        image.apply(JournalRecord::Admit { job: 1, tenant: None });
        image.apply(JournalRecord::Score { key: "k".into(), placements: vec![] });
        image.apply(JournalRecord::Run { job: 7, response: run_response(7, 42.0) });
        image.apply(JournalRecord::Release { job: 99 });
        image.apply(JournalRecord::Epoch { epoch: 3 });
        assert_eq!(image.status.records_applied, 5);
        assert_eq!(image.status.admits, 1);
        assert_eq!(image.status.scores, 1);
        assert_eq!(image.status.runs_indexed, 1);
        assert_eq!(image.status.epoch, 3);
        image.reset();
        assert_eq!(image.status.records_applied, 0);
        assert_eq!(image.status.runs_indexed, 0);
        assert_eq!(image.status.resets, 1);
        assert_eq!(image.status.epoch, 3, "epoch is monotone across resets");
        assert!(image.runs.is_empty());
    }

    #[test]
    fn attach_serves_the_warm_run_index_read_only() {
        let shared = StandbyShared {
            stopping: AtomicBool::new(false),
            image: Mutex::new(Image::default()),
            last_beat: Mutex::new(Instant::now()),
            conns: Mutex::new(Vec::new()),
        };
        shared
            .image
            .lock()
            .unwrap()
            .apply(JournalRecord::Run { job: 7, response: run_response(7, 42.0) });
        match attach_from_image(&shared, 55, 7) {
            Response::RunResult { id, ensemble_makespan, .. } => {
                assert_eq!(id, 55, "attach echoes the caller's id");
                assert_eq!(ensemble_makespan.to_bits(), 42.0f64.to_bits());
            }
            other => panic!("expected a run result, got {other:?}"),
        }
        assert!(matches!(
            attach_from_image(&shared, 56, 8),
            Response::Error { kind: ErrorKind::NotFound, .. }
        ));
    }

    #[test]
    fn writes_are_refused_with_the_standby_error_kind() {
        let shared = StandbyShared {
            stopping: AtomicBool::new(false),
            image: Mutex::new(Image::default()),
            last_beat: Mutex::new(Instant::now()),
            conns: Mutex::new(Vec::new()),
        };
        let score = "{\"type\":\"score\",\"id\":3,\"max_nodes\":2,\"cores_per_node\":4,\"members\":[{\"sim_cores\":2,\"analyses\":[1]}]}";
        match standby_answer(&shared, score) {
            Response::Error { id, kind, .. } => {
                assert_eq!(id, 3);
                assert_eq!(kind, ErrorKind::Standby);
            }
            other => panic!("expected a standby refusal, got {other:?}"),
        }
        assert!(matches!(
            standby_answer(&shared, "{\"type\":\"metrics\",\"id\":4}"),
            Response::Metrics { id: 4, .. }
        ));
    }
}
