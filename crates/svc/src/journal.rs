//! Append-only on-disk journal: the service's restart persistence and
//! the replication source for warm standbys.
//!
//! Every admitted request and every completed result is appended as one
//! JSON line (the crate-local [`crate::json`] codec — no new
//! dependencies), so a restarted service can replay the file to warm
//! the score cache and rebuild the completed-job index that backs the
//! `attach { job }` wire request. Record kinds:
//!
//! ```text
//! {"rec":"admit","v":2,"job":3,"tenant":"t",        // request admitted (v2; "tenant"
//!  "request":{...},"crc":"9f2a01c4"}                //  only when tagged)
//! {"rec":"score","key":"...","placements":[...],...}// score evaluated (full ranking)
//! {"rec":"run","job":7,"response":{...},...}        // run completed
//! {"rec":"reserve","job":9,"members":[...],         // cosched reservation opened
//!  "assignment":[...],"predicted_end":12.5,"seq":4,
//!  "tenant":"t",...}                                //  ("tenant" only when tagged)
//! {"rec":"release","job":9,...}                     // cosched reservation closed
//! {"rec":"epoch","epoch":2,...}                     // fencing epoch advanced
//! ```
//!
//! Every appended line is sealed with a CRC32 (IEEE) checksum carried
//! as the record's final `"crc"` field, computed over the record bytes
//! *without* that field. Verification is byte-exact: strip the trailing
//! `,"crc":"xxxxxxxx"` suffix, restore the closing brace, and compare.
//! Lines without a checksum (pre-HA journals) still replay; lines whose
//! checksum mismatches — a bit flip, a partial overwrite — are
//! **quarantined**: skipped with a counter and copied to
//! `<journal>.quarantine` for forensics, never fatal and never allowed
//! to truncate the records that follow them.
//!
//! Admit records are versioned: v2 carries explicit `job`/`tenant`
//! fields so replay rebuilds per-tenant quota occupancy without
//! re-parsing the embedded request. Unversioned (v1, pre-quota) admit
//! records still replay — job and tenant are recovered from the
//! embedded request, which always carried both. Reserve records carry
//! the tenant too because compaction drops admits but keeps open
//! reservations, and those are exactly the records quota occupancy is
//! rebuilt from.
//!
//! Reserve and release records net out at replay: a restarted service
//! sees only the reservations still open at the crash
//! ([`JournalReplay::reservations`]) and rebuilds its residency map
//! from them, so capacity committed to jobs that never completed is
//! not silently forgotten.
//!
//! Durability is configurable ([`FsyncPolicy`]): fsync after every
//! record, or batched every N records (flushed again on rotation and
//! drop). Fsync failures are **counted, not swallowed**
//! ([`JournalStats::fsync_errors`]); after
//! [`FSYNC_FAILURE_LIMIT`] consecutive failures the journal degrades
//! to a loud read-only state ([`JournalStats::degraded`]) instead of
//! pretending writes are durable. Replay tolerates a torn tail — a
//! final line truncated by a crash mid-append parses as garbage and is
//! dropped, never fatal, and [`Journal::open`] seals the tear by
//! truncating the file back to the last newline so later appends start
//! a fresh line.
//!
//! **Fencing epochs** make failover split-brain safe. The current
//! epoch lives in a `<journal>.epoch` sidecar (written atomically via
//! temp + rename) and is also journaled as an `epoch` record. Opening
//! the journal with [`JournalConfig::promote`] set — what a standby
//! does when it takes over — bumps the epoch; every append first
//! checks the sidecar and refuses to write once a higher epoch exists
//! ([`JournalStats::fenced_appends`]), so a deposed primary's late
//! appends can never diverge the journal two services share.
//!
//! [`JournalFollower`] is the live tail: it streams records as they
//! are appended (for a warm standby or a replication stream), detects
//! rotation/compaction/truncation underneath it and signals a
//! [`FollowEvent::Reset`] so the consumer re-derives its state, and
//! surfaces checksum failures as [`FollowEvent::Corrupt`].
//!
//! Size-based rotation keeps the file bounded: once an append pushes
//! the journal past `max_bytes`, it is compacted in place — rewritten
//! keeping only the newest `retain_scores` score records (deduplicated
//! by cache key, last write wins) and the newest `retain_runs` run
//! records (deduplicated by job id); admit records, having served their
//! forensic purpose for the previous epoch, are dropped, while the
//! current fencing epoch is re-journaled first so the compacted file
//! stays self-describing. The rewrite goes through a temp file + rename
//! so a crash during compaction leaves either the old or the new
//! journal, never a half-written one.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fault::SvcFaultPlan;
use crate::json::{obj, Value};
use crate::protocol::{
    placement_from_value, placement_to_value, RankedPlacement, Request, Response,
};

/// Consecutive fsync failures tolerated before the journal degrades to
/// read-only (each one is still counted and logged).
pub const FSYNC_FAILURE_LIMIT: u32 = 3;

/// When appended records are fsynced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: maximum durability, one disk
    /// round-trip per request.
    PerRecord,
    /// `fdatasync` every `n` records (and on rotation and drop): bounded
    /// data loss of at most `n` records on an OS crash, near-zero
    /// steady-state cost. A process crash alone loses nothing — writes
    /// reach the page cache immediately.
    Batched(u32),
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Batched(64)
    }
}

/// Where and how the journal persists.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Journal file path (created if absent; replayed if present).
    pub path: PathBuf,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Size threshold that triggers rotation + compaction.
    pub max_bytes: u64,
    /// Score records surviving compaction (wire this to the score-cache
    /// capacity: retaining more than the cache can hold is waste).
    pub retain_scores: usize,
    /// Run records surviving compaction (bounds the completed-job index
    /// a replay rebuilds).
    pub retain_runs: usize,
    /// Bump the fencing epoch at open: what a promoting standby sets so
    /// the deposed primary's later appends are rejected.
    pub promote: bool,
    /// Deterministic fault injection (crash kill points, torn tails,
    /// simulated fsync failures) for failover tests and rehearsals.
    pub fault: Option<SvcFaultPlan>,
}

impl JournalConfig {
    /// Defaults: batched fsync, 8 MiB rotation threshold, 256 retained
    /// records of each kind, no promotion, no fault injection.
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            path: path.into(),
            fsync: FsyncPolicy::default(),
            max_bytes: 8 << 20,
            retain_scores: 256,
            retain_runs: 256,
            promote: false,
            fault: None,
        }
    }
}

/// What a replay recovered, in file (= chronological) order with
/// duplicates collapsed to their newest occurrence.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// `(cache key, full ranking)` pairs to warm the score cache.
    pub scores: Vec<(String, Vec<RankedPlacement>)>,
    /// `(job id, run result)` pairs to rebuild the completed-job index.
    pub runs: Vec<(u64, Response)>,
    /// Co-scheduler reservations still open (reserve net of release),
    /// to rebuild the residency map.
    pub reservations: Vec<ReplayedReservation>,
    /// Admit records seen (forensic count).
    pub admits: u64,
    /// Job → tenant attribution recovered from admit records (v2
    /// directly; v1 via the embedded request), for rebuilding
    /// per-tenant quota occupancy of still-open reservations.
    pub admit_tenants: HashMap<u64, String>,
    /// Torn or corrupt lines dropped.
    pub dropped: u64,
    /// Fencing epoch in effect after open: the maximum of the sidecar
    /// file and any journaled epoch records, plus one if the open
    /// promoted.
    pub epoch: u64,
}

/// One open co-scheduler reservation recovered by replay — the durable
/// fields of a `scheduler::cosched::Reservation` (the per-node load
/// vectors are recomputed from shape + assignment on restore).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedReservation {
    /// Job id holding the reservation.
    pub job: u64,
    /// Ensemble shape: per member, (simulation cores, analysis cores).
    pub members: Vec<(u32, Vec<u32>)>,
    /// Member → node assignment.
    pub assignment: Vec<usize>,
    /// Predicted completion in scheduler virtual time.
    pub predicted_end: f64,
    /// Admission sequence number (restores deterministic tie-breaking).
    pub seq: u64,
    /// Tenant holding the reservation, when the request was tagged
    /// (absent from the record when untagged, and from pre-quota
    /// journals).
    pub tenant: Option<String>,
}

/// Point-in-time journal counters for the metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JournalStats {
    /// Records appended since open.
    pub appended: u64,
    /// Appends that failed at the I/O layer or were rejected because
    /// the journal degraded (service kept running).
    pub append_errors: u64,
    /// Current journal file size, bytes.
    pub bytes: u64,
    /// Rotation + compaction passes since open.
    pub rotations: u64,
    /// Score records recovered by the open-time replay.
    pub replayed_scores: u64,
    /// Run records recovered by the open-time replay.
    pub replayed_runs: u64,
    /// Torn/corrupt lines the replay dropped.
    pub replay_dropped: u64,
    /// Fsync calls that reported failure (counted, never swallowed).
    pub fsync_errors: u64,
    /// Corrupt interior lines copied to `<journal>.quarantine` at open.
    pub quarantined: u64,
    /// Current fencing epoch.
    pub epoch: u64,
    /// Appends rejected because a higher fencing epoch exists: this
    /// handle belongs to a deposed primary.
    pub fenced_appends: u64,
    /// True once the journal stopped accepting appends — fenced by a
    /// newer epoch, killed by a fault plan, or past
    /// [`FSYNC_FAILURE_LIMIT`] consecutive fsync failures.
    pub degraded: bool,
}

/// One decoded journal record, as replayed at open and streamed to
/// followers ([`JournalFollower`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A request was admitted.
    Admit {
        /// Job id (the request id at admission).
        job: u64,
        /// Tenant tag, when the request carried one.
        tenant: Option<String>,
    },
    /// A score ranking was evaluated and cached.
    Score {
        /// Score-cache key.
        key: String,
        /// The full ranking stored under the key.
        placements: Vec<RankedPlacement>,
    },
    /// A run completed.
    Run {
        /// Job id.
        job: u64,
        /// The stored `RunResult` response.
        response: Response,
    },
    /// A co-scheduler reservation opened.
    Reserve(ReplayedReservation),
    /// A co-scheduler reservation closed.
    Release {
        /// Job id whose reservation closed.
        job: u64,
    },
    /// The fencing epoch advanced (a standby promoted itself).
    Epoch {
        /// The new epoch value.
        epoch: u64,
    },
}

struct Inner {
    file: File,
    bytes: u64,
    since_sync: u32,
    fsync_attempts: u64,
    fsync_fail_streak: u32,
}

/// The append side of the journal (replay happens once, at
/// [`Journal::open`]).
pub struct Journal {
    inner: Mutex<Inner>,
    config: JournalConfig,
    appended: AtomicU64,
    append_errors: AtomicU64,
    rotations: AtomicU64,
    fsync_errors: AtomicU64,
    fenced_appends: AtomicU64,
    dead: AtomicBool,
    epoch: u64,
    quarantined: u64,
    replayed_scores: u64,
    replayed_runs: u64,
    replay_dropped: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `config.path`, replays
    /// any existing records, and returns the append handle plus what
    /// the replay recovered. A torn final line is dropped, not fatal;
    /// corrupt interior lines are quarantined and skipped. With
    /// [`JournalConfig::promote`] set, the fencing epoch is bumped and
    /// journaled before the handle is returned.
    pub fn open(config: JournalConfig) -> std::io::Result<(Journal, JournalReplay)> {
        let existing = match std::fs::read(&config.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let parsed = parse_records(&existing);
        let quarantined = parsed.corrupt.len() as u64;
        if !parsed.corrupt.is_empty() {
            match OpenOptions::new().create(true).append(true).open(quarantine_path(&config.path)) {
                Ok(mut q) => {
                    for line in &parsed.corrupt {
                        let _ = writeln!(q, "{line}");
                    }
                    eprintln!(
                        "svc journal: quarantined {} corrupt line(s) to {}",
                        parsed.corrupt.len(),
                        quarantine_path(&config.path).display()
                    );
                }
                Err(e) => eprintln!("svc journal: cannot write quarantine file: {e}"),
            }
        }
        let mut replay = build_replay(parsed.records, parsed.dropped);
        let mut epoch = read_epoch(&config.path).max(replay.epoch);
        if config.promote {
            epoch += 1;
            write_epoch(&config.path, epoch)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let mut bytes = file.metadata()?.len();
        // Seal a torn tail: everything past the last newline is a
        // half-written record from a crash mid-append. It is already
        // dropped from the replay; physically truncating it keeps the
        // next append from merging into the fragment and corrupting a
        // good record.
        let sealed = existing.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0) as u64;
        if sealed < bytes {
            file.set_len(sealed)?;
            bytes = sealed;
        }
        let promote = config.promote;
        let journal = Journal {
            inner: Mutex::new(Inner {
                file,
                bytes,
                since_sync: 0,
                fsync_attempts: 0,
                fsync_fail_streak: 0,
            }),
            replayed_scores: replay.scores.len() as u64,
            replayed_runs: replay.runs.len() as u64,
            replay_dropped: replay.dropped,
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            fsync_errors: AtomicU64::new(0),
            fenced_appends: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            epoch,
            quarantined,
            config,
        };
        if promote {
            // Journal the new epoch so followers (and the next replay)
            // learn it from the record stream, not just the sidecar.
            journal.append_line(&epoch_record(epoch));
        }
        replay.epoch = epoch;
        Ok((journal, replay))
    }

    /// Journals an admitted request (v2 record: explicit job and tenant
    /// attribution alongside the full request).
    pub fn append_admit(&self, request: &Request) {
        let mut fields =
            vec![("rec", "admit".into()), ("v", 2u64.into()), ("job", request.id.into())];
        if let Some(t) = &request.tenant {
            fields.push(("tenant", t.as_str().into()));
        }
        fields.push(("request", request.to_value()));
        self.append_line(&obj(fields));
    }

    /// Journals a freshly evaluated score ranking under its cache key
    /// (the full, untruncated ranking — what the cache holds).
    pub fn append_score(&self, key: &str, placements: &[RankedPlacement]) {
        self.append_line(&score_record(key, placements));
    }

    /// Journals a completed run result under its job id.
    pub fn append_run(&self, job: u64, response: &Response) {
        self.append_line(&run_record(job, response));
    }

    /// Journals an opened co-scheduler reservation.
    pub fn append_reserve(&self, reservation: &ReplayedReservation) {
        self.append_line(&reserve_record(reservation));
    }

    /// Journals a closed co-scheduler reservation (completion, failure,
    /// cancellation, or admission rollback).
    pub fn append_release(&self, job: u64) {
        self.append_line(&obj(vec![("rec", "release".into()), ("job", job.into())]));
    }

    /// The fencing epoch this handle was opened under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True once the journal stopped accepting appends (fenced, killed
    /// by a fault plan, or past the fsync failure limit).
    pub fn is_degraded(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            bytes: self.inner.lock().expect("journal lock").bytes,
            rotations: self.rotations.load(Ordering::Relaxed),
            replayed_scores: self.replayed_scores,
            replayed_runs: self.replayed_runs,
            replay_dropped: self.replay_dropped,
            fsync_errors: self.fsync_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined,
            epoch: self.epoch,
            fenced_appends: self.fenced_appends.load(Ordering::Relaxed),
            degraded: self.dead.load(Ordering::Relaxed),
        }
    }

    /// Marks the journal read-only, loudly, exactly once.
    fn degrade(&self, reason: &str) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            eprintln!("svc journal: degraded to read-only: {reason}");
        }
    }

    /// Runs one fsync, counting failures (real or fault-injected) and
    /// degrading the journal after [`FSYNC_FAILURE_LIMIT`] consecutive
    /// ones.
    fn sync_data_locked(&self, inner: &mut Inner) {
        inner.fsync_attempts += 1;
        let injected =
            self.config.fault.as_ref().is_some_and(|f| f.fsync_fails(inner.fsync_attempts));
        let result = if injected {
            Err(std::io::Error::other("injected fsync failure (fault plan)"))
        } else {
            inner.file.sync_data()
        };
        match result {
            Ok(()) => inner.fsync_fail_streak = 0,
            Err(e) => {
                self.fsync_errors.fetch_add(1, Ordering::Relaxed);
                inner.fsync_fail_streak += 1;
                eprintln!("svc journal: fsync failed ({}x): {e}", inner.fsync_fail_streak);
                if inner.fsync_fail_streak >= FSYNC_FAILURE_LIMIT {
                    self.degrade(&format!(
                        "{} consecutive fsync failures — appended records are no longer durable",
                        inner.fsync_fail_streak
                    ));
                }
            }
        }
    }

    fn append_line(&self, record: &Value) {
        if self.dead.load(Ordering::Relaxed) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Fencing: a higher epoch in the sidecar means a standby
        // promoted over us. Refuse the write — a deposed primary must
        // never extend a journal the new primary now owns.
        let disk_epoch = read_epoch(&self.config.path);
        if disk_epoch > self.epoch {
            self.fenced_appends.fetch_add(1, Ordering::Relaxed);
            self.degrade(&format!(
                "fenced: epoch {} on disk exceeds this handle's epoch {}",
                disk_epoch, self.epoch
            ));
            return;
        }
        let mut line = sealed_line(record);
        line.push('\n');
        let mut inner = self.inner.lock().expect("journal lock");
        // Re-check under the lock: a concurrent append may have tripped
        // the crash fault (leaving an unterminated torn fragment) while
        // we waited — writing now would merge into that fragment.
        if self.dead.load(Ordering::Relaxed) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Err(e) = inner.file.write_all(line.as_bytes()) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("svc journal: append failed: {e}");
            return;
        }
        inner.bytes += line.len() as u64;
        let appended = self.appended.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(fault) = &self.config.fault {
            if fault.crash_after_append.is_some_and(|n| appended >= n) {
                if fault.torn_tail {
                    let fragment = fault.torn_fragment();
                    let _ = inner.file.write_all(fragment.as_bytes());
                    inner.bytes += fragment.len() as u64;
                }
                // Flush the crash image so a follower sees exactly what
                // a real kill -9 would have left on disk.
                let _ = inner.file.sync_data();
                self.degrade(&format!("fault-plan crash after record {appended}"));
                return;
            }
        }
        match self.config.fsync {
            FsyncPolicy::PerRecord => self.sync_data_locked(&mut inner),
            FsyncPolicy::Batched(n) => {
                inner.since_sync += 1;
                if inner.since_sync >= n.max(1) {
                    self.sync_data_locked(&mut inner);
                    inner.since_sync = 0;
                }
            }
        }
        if inner.bytes > self.config.max_bytes {
            if let Err(e) = self.rotate_locked(&mut inner) {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("svc journal: rotation failed: {e}");
            }
        }
    }

    /// Compacts the journal in place: keep the newest `retain_scores` /
    /// `retain_runs` records of each kind (deduplicated, last write
    /// wins), drop admit records, rewrite through a temp file + rename.
    fn rotate_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        self.sync_data_locked(inner);
        let existing = std::fs::read(&self.config.path)?;
        let parsed = parse_records(&existing);
        let replay = build_replay(parsed.records, 0);
        let mut compacted = String::new();
        // Re-journal the fencing epoch first so the compacted file is
        // self-describing without the sidecar.
        if self.epoch > 0 {
            compacted.push_str(&sealed_line(&epoch_record(self.epoch)));
            compacted.push('\n');
        }
        let skip = replay.scores.len().saturating_sub(self.config.retain_scores);
        for (key, placements) in replay.scores.iter().skip(skip) {
            compacted.push_str(&sealed_line(&score_record(key, placements)));
            compacted.push('\n');
        }
        let skip = replay.runs.len().saturating_sub(self.config.retain_runs);
        for (job, response) in replay.runs.iter().skip(skip) {
            compacted.push_str(&sealed_line(&run_record(*job, response)));
            compacted.push('\n');
        }
        // Open reservations are live capacity commitments — every one
        // survives compaction, uncapped (bounded in practice by the
        // co-scheduler's own admission queue).
        for reservation in &replay.reservations {
            compacted.push_str(&sealed_line(&reserve_record(reservation)));
            compacted.push('\n');
        }
        let tmp = self.config.path.with_extension("journal-compact");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(compacted.as_bytes())?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.config.path)?;
        inner.file = OpenOptions::new().append(true).open(&self.config.path)?;
        inner.bytes = compacted.len() as u64;
        inner.since_sync = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(mut inner) = self.inner.lock() {
            self.sync_data_locked(&mut inner);
        }
    }
}

/// Follows a journal file as it grows: the live tail that feeds a warm
/// standby or a replication stream. Poll-driven and read-only — the
/// follower never takes the journal lock, so it can run in another
/// thread or another process (shared-filesystem deployments).
pub struct JournalFollower {
    path: PathBuf,
    file: Option<File>,
    file_id: u64,
    offset: u64,
    partial: Vec<u8>,
}

/// What [`JournalFollower::poll`] observed since the previous poll.
#[derive(Debug, Clone, PartialEq)]
pub enum FollowEvent {
    /// One intact record appended: the raw line exactly as on disk
    /// (checksum included, newline stripped) and its decoded form.
    Record {
        /// The raw journal line.
        line: String,
        /// The decoded record.
        record: JournalRecord,
    },
    /// The journal rotated, compacted, or truncated underneath the
    /// follower. All state derived from earlier `Record` events must be
    /// discarded: subsequent events re-stream the file from the top.
    Reset,
    /// A complete line failed its checksum or did not parse.
    Corrupt {
        /// The corrupt raw line.
        line: String,
    },
}

impl JournalFollower {
    /// Starts following the journal at `path` from the beginning. The
    /// file does not need to exist yet.
    pub fn new(path: impl Into<PathBuf>) -> JournalFollower {
        JournalFollower {
            path: path.into(),
            file: None,
            file_id: 0,
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// Bytes consumed from the currently-open journal file.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads everything appended since the last poll. An unterminated
    /// final line (a record the primary is mid-append on, or a torn
    /// crash tail) is buffered, not emitted — it completes on a later
    /// poll or disappears with a [`FollowEvent::Reset`].
    pub fn poll(&mut self) -> std::io::Result<Vec<FollowEvent>> {
        let mut events = Vec::new();
        let meta = match std::fs::metadata(&self.path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if self.file.take().is_some() {
                    self.reset_state();
                    events.push(FollowEvent::Reset);
                }
                return Ok(events);
            }
            Err(e) => return Err(e),
        };
        if self.file.is_some() && (file_id(&meta) != self.file_id || meta.len() < self.offset) {
            // Rotation (rename swapped a compacted file in, changing
            // the inode) or truncation (a promote sealed a torn tail):
            // either way our offset is meaningless now.
            self.file = None;
            self.reset_state();
            events.push(FollowEvent::Reset);
        }
        if self.file.is_none() {
            let file = match File::open(&self.path) {
                Ok(f) => f,
                // Raced a rename; pick the new file up next poll.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(events),
                Err(e) => return Err(e),
            };
            self.file_id = file_id(&file.metadata()?);
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("follower file open");
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        self.offset += buf.len() as u64;
        self.partial.extend_from_slice(&buf);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=pos).collect();
            let line = &line[..line.len() - 1];
            if line.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            let text = String::from_utf8_lossy(line).into_owned();
            match decode_line(line) {
                Some(record) => events.push(FollowEvent::Record { line: text, record }),
                None => events.push(FollowEvent::Corrupt { line: text }),
            }
        }
        Ok(events)
    }

    fn reset_state(&mut self) {
        self.file_id = 0;
        self.offset = 0;
        self.partial.clear();
    }
}

#[cfg(unix)]
fn file_id(meta: &std::fs::Metadata) -> u64 {
    use std::os::unix::fs::MetadataExt;
    meta.ino()
}

#[cfg(not(unix))]
fn file_id(_meta: &std::fs::Metadata) -> u64 {
    // Without inodes, rotation is detected by length shrink alone.
    0
}

/// The fencing-epoch sidecar path for a journal (`<journal>.epoch`).
fn epoch_path(journal_path: &Path) -> PathBuf {
    sibling(journal_path, ".epoch")
}

/// The quarantine file path for a journal (`<journal>.quarantine`).
fn quarantine_path(journal_path: &Path) -> PathBuf {
    sibling(journal_path, ".quarantine")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Reads the fencing epoch recorded beside the journal at
/// `journal_path` (0 when no epoch was ever written).
pub fn read_epoch(journal_path: &Path) -> u64 {
    std::fs::read_to_string(epoch_path(journal_path))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

fn write_epoch(journal_path: &Path, epoch: u64) -> std::io::Result<()> {
    let target = epoch_path(journal_path);
    let tmp = sibling(journal_path, ".epoch-next");
    {
        let mut out = File::create(&tmp)?;
        writeln!(out, "{epoch}")?;
        out.sync_data()?;
    }
    std::fs::rename(&tmp, &target)
}

fn score_record(key: &str, placements: &[RankedPlacement]) -> Value {
    obj(vec![
        ("rec", "score".into()),
        ("key", key.into()),
        ("placements", Value::Arr(placements.iter().map(placement_to_value).collect())),
    ])
}

fn run_record(job: u64, response: &Response) -> Value {
    obj(vec![("rec", "run".into()), ("job", job.into()), ("response", response.to_value())])
}

fn epoch_record(epoch: u64) -> Value {
    obj(vec![("rec", "epoch".into()), ("epoch", epoch.into())])
}

fn reserve_record(r: &ReplayedReservation) -> Value {
    let mut fields = vec![
        ("rec", "reserve".into()),
        ("job", r.job.into()),
        (
            "members",
            Value::Arr(
                r.members
                    .iter()
                    .map(|(sim, anas)| {
                        obj(vec![
                            ("sim_cores", u64::from(*sim).into()),
                            (
                                "analyses",
                                Value::Arr(anas.iter().map(|&a| u64::from(a).into()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("assignment", Value::Arr(r.assignment.iter().map(|&n| (n as u64).into()).collect())),
        ("predicted_end", r.predicted_end.into()),
        ("seq", r.seq.into()),
    ];
    if let Some(t) = &r.tenant {
        fields.push(("tenant", t.as_str().into()));
    }
    obj(fields)
}

// ---- checksum sealing ------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) over the concatenation of `parts`.
fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = u32::MAX;
    for part in parts {
        for &b in *part {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Renders a record with its CRC32 seal appended as the final `"crc"`
/// field: `{...,"crc":"xxxxxxxx"}`. The checksum covers the record
/// bytes *without* the seal, so verification is a byte-exact strip,
/// restore-the-brace, recompute.
fn sealed_line(record: &Value) -> String {
    let json = record.to_json();
    let body = json.strip_suffix('}').expect("journal records are JSON objects");
    let crc = crc32_parts(&[json.as_bytes()]);
    format!("{body},\"crc\":\"{crc:08x}\"}}")
}

const CRC_TAG: &str = ",\"crc\":\"";

/// Verifies a line's trailing checksum. Lines without one (pre-HA
/// journals) pass; parsing decides their fate.
fn crc_valid(text: &str) -> bool {
    match text.rfind(CRC_TAG) {
        // 10 = 8 hex digits + closing `"}`.
        Some(p) if text.len() == p + CRC_TAG.len() + 10 && text.ends_with("\"}") => {
            let hex = &text[p + CRC_TAG.len()..text.len() - 2];
            match u32::from_str_radix(hex, 16) {
                Ok(want) => crc32_parts(&[text[..p].as_bytes(), b"}"]) == want,
                Err(_) => false,
            }
        }
        _ => true,
    }
}

/// Decodes one complete journal line: checksum check, then parse.
/// `None` means the line is corrupt (flip, tear, or unknown shape).
/// Decodes one complete journal line (checksum verified, then parsed).
/// `None` means the line is corrupt or not a known record kind —
/// exactly the lines replay quarantines. Standbys use this to apply
/// lines streamed over a replication connection.
pub fn decode_line(line: &[u8]) -> Option<JournalRecord> {
    let text = std::str::from_utf8(line).ok()?;
    if !crc_valid(text) {
        return None;
    }
    parse_record(line)
}

struct ParsedLines {
    records: Vec<JournalRecord>,
    dropped: u64,
    /// Complete lines that failed their checksum or did not parse —
    /// quarantine candidates (the torn tail is sealed instead).
    corrupt: Vec<String>,
}

/// Splits `bytes` into newline-terminated records, dropping (and
/// counting) corrupt lines and the torn unterminated tail.
fn parse_records(bytes: &[u8]) -> ParsedLines {
    let mut out = ParsedLines { records: Vec::new(), dropped: 0, corrupt: Vec::new() };
    let mut start = 0usize;
    while let Some(pos) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + pos];
        start += pos + 1;
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        match decode_line(line) {
            Some(r) => out.records.push(r),
            None => {
                out.dropped += 1;
                out.corrupt.push(String::from_utf8_lossy(line).into_owned());
            }
        }
    }
    // No trailing newline: the final append was interrupted. Drop it.
    if !bytes[start..].iter().all(u8::is_ascii_whitespace) {
        out.dropped += 1;
    }
    out
}

fn parse_record(line: &[u8]) -> Option<JournalRecord> {
    let text = std::str::from_utf8(line).ok()?;
    let v = Value::parse(text).ok()?;
    match v.get("rec")?.as_str()? {
        "admit" => {
            // v2 carries job/tenant explicitly; v1 (unversioned) only
            // embeds the request — which always carried both, so old
            // journals replay with full attribution.
            let request = Request::from_value(v.get("request")?).ok()?;
            let job = v.get("job").and_then(Value::as_u64).unwrap_or(request.id);
            let tenant = match v.get("tenant") {
                Some(t) => Some(t.as_str()?.to_string()),
                None => request.tenant,
            };
            Some(JournalRecord::Admit { job, tenant })
        }
        "score" => {
            let key = v.get("key")?.as_str()?.to_string();
            let placements = v
                .get("placements")?
                .as_arr()?
                .iter()
                .map(placement_from_value)
                .collect::<Result<Vec<_>, _>>()
                .ok()?;
            Some(JournalRecord::Score { key, placements })
        }
        "run" => {
            let job = v.get("job")?.as_u64()?;
            let response = Response::from_value(v.get("response")?).ok()?;
            // Only completed run results are attachable; anything else
            // in a run record is corruption.
            matches!(response, Response::RunResult { .. }).then_some(())?;
            Some(JournalRecord::Run { job, response })
        }
        "reserve" => {
            let job = v.get("job")?.as_u64()?;
            let members = v
                .get("members")?
                .as_arr()?
                .iter()
                .map(|m| {
                    let sim = u32::try_from(m.get("sim_cores")?.as_u64()?).ok()?;
                    let anas = m
                        .get("analyses")?
                        .as_arr()?
                        .iter()
                        .map(|a| a.as_u64().and_then(|a| u32::try_from(a).ok()))
                        .collect::<Option<Vec<u32>>>()?;
                    Some((sim, anas))
                })
                .collect::<Option<Vec<_>>>()?;
            let assignment = v
                .get("assignment")?
                .as_arr()?
                .iter()
                .map(|a| a.as_u64().map(|a| a as usize))
                .collect::<Option<Vec<_>>>()?;
            let predicted_end = v.get("predicted_end")?.as_f64()?;
            let seq = v.get("seq")?.as_u64()?;
            let tenant = match v.get("tenant") {
                Some(t) => Some(t.as_str()?.to_string()),
                None => None,
            };
            // A reservation without members, or whose assignment does
            // not cover every component (one slot per sim plus one per
            // analysis), cannot rebuild a residency entry: corruption.
            let slots: usize = members.iter().map(|(_, anas)| 1 + anas.len()).sum();
            (!members.is_empty() && slots == assignment.len()).then_some(())?;
            Some(JournalRecord::Reserve(ReplayedReservation {
                job,
                members,
                assignment,
                predicted_end,
                seq,
                tenant,
            }))
        }
        "release" => Some(JournalRecord::Release { job: v.get("job")?.as_u64()? }),
        "epoch" => Some(JournalRecord::Epoch { epoch: v.get("epoch")?.as_u64()? }),
        _ => None,
    }
}

/// Collapses records to their newest occurrence per key/job while
/// preserving chronological order (so FIFO cache warm-up keeps the
/// newest entries when over capacity).
fn build_replay(records: Vec<JournalRecord>, dropped: u64) -> JournalReplay {
    let mut replay = JournalReplay { dropped, ..JournalReplay::default() };
    let mut score_slot: HashMap<String, usize> = HashMap::new();
    let mut run_slot: HashMap<u64, usize> = HashMap::new();
    let mut resv_slot: HashMap<u64, usize> = HashMap::new();
    let mut scores: Vec<Option<(String, Vec<RankedPlacement>)>> = Vec::new();
    let mut runs: Vec<Option<(u64, Response)>> = Vec::new();
    let mut resvs: Vec<Option<ReplayedReservation>> = Vec::new();
    for record in records {
        match record {
            JournalRecord::Admit { job, tenant } => {
                replay.admits += 1;
                if let Some(tenant) = tenant {
                    replay.admit_tenants.insert(job, tenant);
                }
            }
            JournalRecord::Score { key, placements } => {
                if let Some(&old) = score_slot.get(&key) {
                    scores[old] = None;
                }
                score_slot.insert(key.clone(), scores.len());
                scores.push(Some((key, placements)));
            }
            JournalRecord::Run { job, response } => {
                if let Some(&old) = run_slot.get(&job) {
                    runs[old] = None;
                }
                run_slot.insert(job, runs.len());
                runs.push(Some((job, response)));
            }
            JournalRecord::Reserve(r) => {
                if let Some(&old) = resv_slot.get(&r.job) {
                    resvs[old] = None;
                }
                resv_slot.insert(r.job, resvs.len());
                resvs.push(Some(r));
            }
            JournalRecord::Release { job } => {
                if let Some(old) = resv_slot.remove(&job) {
                    resvs[old] = None;
                }
            }
            JournalRecord::Epoch { epoch } => replay.epoch = replay.epoch.max(epoch),
        }
    }
    replay.scores = scores.into_iter().flatten().collect();
    replay.runs = runs.into_iter().flatten().collect();
    replay.reservations = resvs.into_iter().flatten().collect();
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MemberSummary;

    fn temp_path(name: &str) -> PathBuf {
        let path = std::env::temp_dir()
            .join(format!("svc-journal-unit-{}-{name}.jsonl", std::process::id()));
        cleanup(&path);
        path
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(epoch_path(path));
        let _ = std::fs::remove_file(quarantine_path(path));
    }

    fn ranking(objective: f64) -> Vec<RankedPlacement> {
        vec![RankedPlacement {
            assignment: vec![0, 1],
            objective,
            nodes_used: 2,
            ensemble_makespan: 100.0,
            eq4_satisfied: true,
        }]
    }

    fn run_result(id: u64) -> Response {
        Response::RunResult {
            id,
            ensemble_makespan: 42.0,
            members: vec![MemberSummary {
                sigma_star: 1.0,
                efficiency: 0.9,
                cp: 1.0,
                makespan: 41.0,
            }],
            elapsed_ms: 5.0,
        }
    }

    #[test]
    fn roundtrips_scores_and_runs_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
            assert!(replay.scores.is_empty() && replay.runs.is_empty());
            journal.append_score("k1", &ranking(0.5));
            journal.append_score("k2", &ranking(0.7));
            journal.append_run(7, &run_result(7));
            assert_eq!(journal.stats().appended, 3);
        }
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 2);
        assert_eq!(replay.scores[0].0, "k1");
        assert_eq!(replay.scores[1].1[0].objective.to_bits(), 0.7f64.to_bits());
        assert_eq!(replay.runs.len(), 1);
        assert_eq!(replay.runs[0].0, 7);
        assert_eq!(replay.runs[0].1, run_result(7));
        assert_eq!(journal.stats().replayed_scores, 2);
        assert_eq!(journal.stats().replayed_runs, 1);
        cleanup(&path);
    }

    #[test]
    fn duplicate_keys_replay_newest_only() {
        let path = temp_path("dedup");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("k", &ranking(0.1));
            journal.append_score("k", &ranking(0.9));
            journal.append_run(3, &run_result(3));
            journal.append_run(3, &run_result(3));
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 1);
        assert_eq!(replay.scores[0].1[0].objective.to_bits(), 0.9f64.to_bits());
        assert_eq!(replay.runs.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("whole", &ranking(0.5));
        }
        // Simulate a crash mid-append: a final line with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\":\"score\",\"key\":\"torn").unwrap();
        drop(f);
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 1, "intact record survives");
        assert_eq!(replay.scores[0].0, "whole");
        assert_eq!(replay.dropped, 1, "torn tail dropped, not fatal");
        assert_eq!(journal.stats().replay_dropped, 1);
        assert_eq!(journal.stats().quarantined, 0, "a torn tail is sealed, not quarantined");
        // Open sealed the tear (truncated to the last newline), so the
        // next append starts a fresh line instead of merging into the
        // fragment and corrupting itself.
        journal.append_score("after-tear", &ranking(0.6));
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0, "the fragment was physically removed at the previous open");
        assert!(replay.scores.iter().any(|(k, _)| k == "whole"));
        assert!(replay.scores.iter().any(|(k, _)| k == "after-tear"));
        cleanup(&path);
    }

    #[test]
    fn corrupt_interior_lines_are_skipped() {
        let path = temp_path("corrupt");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("a", &ranking(0.5));
        }
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json at all\n{\"rec\":\"mystery\"}\n").unwrap();
        drop(f);
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("b", &ranking(0.6));
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 2);
        assert_eq!(replay.dropped, 2);
        cleanup(&path);
    }

    #[test]
    fn bit_flipped_record_is_quarantined_not_fatal() {
        let path = temp_path("bitflip");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("victim", &ranking(0.5));
            journal.append_score("innocent", &ranking(0.7));
            journal.append_run(9, &run_result(9));
        }
        // Flip one bit inside the first record's key. The line is
        // still perfectly valid JSON — only the checksum can tell.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.windows(6).position(|w| w == b"victim").unwrap();
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 1, "the flipped record is dropped");
        assert_eq!(journal.stats().quarantined, 1, "…and quarantined");
        assert_eq!(replay.scores.len(), 1, "records after the bad line survive");
        assert_eq!(replay.scores[0].0, "innocent");
        assert_eq!(replay.runs.len(), 1, "replay was not truncated at the corruption");
        let quarantine = std::fs::read_to_string(quarantine_path(&path)).unwrap();
        assert!(
            quarantine.contains("wictim") || quarantine.contains("uictim"),
            "the corrupt line landed in the quarantine file: {quarantine}"
        );
        cleanup(&path);
    }

    #[test]
    fn legacy_lines_without_checksum_still_replay() {
        let path = temp_path("legacy");
        let mut f = OpenOptions::new().create(true).append(true).open(&path).unwrap();
        // A pre-HA journal line: no "crc" field at all.
        writeln!(f, "{}", score_record("old", &ranking(0.3)).to_json()).unwrap();
        drop(f);
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.scores.len(), 1);
        assert_eq!(replay.scores[0].0, "old");
        assert_eq!(journal.stats().quarantined, 0);
        cleanup(&path);
    }

    #[test]
    fn rotation_compacts_to_newest_entries_under_the_cap() {
        let path = temp_path("rotate");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 4;
        config.retain_runs = 2;
        let (journal, _) = Journal::open(config).unwrap();
        for i in 0..200 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            journal.append_run(i, &run_result(i));
        }
        let stats = journal.stats();
        assert!(stats.rotations >= 1, "rotation must have triggered");
        assert!(
            stats.bytes <= 4096 + 1024,
            "file stays near the cap after compaction, got {} bytes",
            stats.bytes
        );
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        // The resident set is the retained records of the last compaction
        // plus whatever was appended since — bounded by the byte cap,
        // nowhere near the 200 written.
        assert!(replay.scores.len() < 40, "bounded by rotation, got {}", replay.scores.len());
        assert!(!replay.scores.iter().any(|(k, _)| k == "key-0"), "oldest score compacted away");
        assert!(replay.scores.iter().any(|(k, _)| k == "key-199"), "newest score survives");
        assert!(replay.runs.iter().any(|(j, _)| *j == 199), "newest run survives");
        cleanup(&path);
    }

    fn reservation(job: u64, seq: u64) -> ReplayedReservation {
        ReplayedReservation {
            job,
            members: vec![(16, vec![8]), (8, vec![4, 4])],
            // One slot per component: member 1 (sim + analysis) on node
            // 0, member 2 (sim + two analyses) on node 1.
            assignment: vec![0, 0, 1, 1, 1],
            predicted_end: 12.5 + job as f64,
            seq,
            tenant: None,
        }
    }

    #[test]
    fn reservations_net_out_releases_across_reopen() {
        let path = temp_path("reserve");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_reserve(&reservation(1, 1));
            journal.append_reserve(&reservation(2, 2));
            journal.append_release(1);
            journal.append_reserve(&reservation(3, 3));
            journal.append_release(9); // release without a reserve: harmless
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0);
        let open: Vec<u64> = replay.reservations.iter().map(|r| r.job).collect();
        assert_eq!(open, vec![2, 3], "only unreleased reservations survive replay");
        assert_eq!(replay.reservations[0], reservation(2, 2), "fields roundtrip exactly");
        cleanup(&path);
    }

    #[test]
    fn rotation_keeps_every_open_reservation() {
        let path = temp_path("reserve-rotate");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 2;
        config.retain_runs = 2;
        let (journal, _) = Journal::open(config).unwrap();
        journal.append_reserve(&reservation(1, 1));
        for i in 0..100 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            journal.append_reserve(&reservation(100 + i, 100 + i));
            journal.append_release(100 + i);
        }
        assert!(journal.stats().rotations >= 1, "rotation must have triggered");
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(
            replay.reservations.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![1],
            "the open reservation survives compaction; the released pairs are gone"
        );
        cleanup(&path);
    }

    #[test]
    fn per_record_fsync_policy_appends_fine() {
        let path = temp_path("fsync");
        let mut config = JournalConfig::new(&path);
        config.fsync = FsyncPolicy::PerRecord;
        let (journal, _) = Journal::open(config).unwrap();
        journal.append_admit(&crate::service::small_score_request(1, 2, 16, 1, 8, 3));
        journal.append_score("k", &ranking(0.5));
        assert_eq!(journal.stats().appended, 2);
        assert_eq!(journal.stats().append_errors, 0);
        assert_eq!(journal.stats().fsync_errors, 0);
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.admits, 1);
        assert_eq!(replay.scores.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn admit_records_carry_tenant_attribution_v2_and_v1() {
        let path = temp_path("admit-tenant");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            let mut tagged = crate::service::small_score_request(21, 2, 16, 1, 8, 3);
            tagged.tenant = Some("team-a".into());
            journal.append_admit(&tagged);
            journal.append_admit(&crate::service::small_score_request(22, 2, 16, 1, 8, 3));
        }
        // A pre-quota (v1) admit line: no version, no top-level fields —
        // tenant lives only inside the embedded request.
        let legacy = crate::service::small_score_request(23, 2, 16, 1, 8, 3);
        let mut with_tenant = legacy.clone();
        with_tenant.tenant = Some("legacy-t".into());
        let v1_line = obj(vec![("rec", "admit".into()), ("request", with_tenant.to_value())]);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{}", v1_line.to_json()).unwrap();
        drop(f);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.admits, 3);
        assert_eq!(replay.admit_tenants.get(&21).map(String::as_str), Some("team-a"));
        assert_eq!(replay.admit_tenants.get(&22), None, "untagged admits stay unattributed");
        assert_eq!(
            replay.admit_tenants.get(&23).map(String::as_str),
            Some("legacy-t"),
            "v1 records recover tenant from the embedded request"
        );
        cleanup(&path);
    }

    #[test]
    fn reserve_records_roundtrip_tenant_and_survive_compaction() {
        let path = temp_path("reserve-tenant");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 2;
        config.retain_runs = 2;
        {
            let (journal, _) = Journal::open(config).unwrap();
            let tagged = ReplayedReservation { tenant: Some("batch".into()), ..reservation(1, 1) };
            journal.append_reserve(&tagged);
            journal.append_reserve(&reservation(2, 2));
            // Force a few rotations: tenant attribution must survive
            // compaction because admits do not.
            for i in 0..100 {
                journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            }
            assert!(journal.stats().rotations >= 1, "rotation must have triggered");
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        let open: Vec<(u64, Option<&str>)> =
            replay.reservations.iter().map(|r| (r.job, r.tenant.as_deref())).collect();
        assert_eq!(open, vec![(1, Some("batch")), (2, None)]);
        cleanup(&path);
    }

    #[test]
    fn promote_bumps_epoch_and_fences_the_deposed_handle() {
        let path = temp_path("fence");
        let (old_primary, _) = Journal::open(JournalConfig::new(&path)).unwrap();
        old_primary.append_score("before", &ranking(0.5));
        assert_eq!(old_primary.epoch(), 0);

        // A standby promotes over the same journal: epoch bumps to 1.
        let mut promote = JournalConfig::new(&path);
        promote.promote = true;
        let (new_primary, replay) = Journal::open(promote).unwrap();
        assert_eq!(new_primary.epoch(), 1);
        assert_eq!(replay.epoch, 1);
        assert_eq!(read_epoch(&path), 1);

        // The deposed primary's late append is rejected, loudly.
        old_primary.append_score("split-brain", &ranking(0.9));
        let stats = old_primary.stats();
        assert_eq!(stats.fenced_appends, 1, "the late append was fenced");
        assert_eq!(stats.appended, 1, "only the pre-fence record ever landed");
        assert!(stats.degraded, "a fenced journal degrades to read-only");
        // Further appends are rejected without touching the fence.
        old_primary.append_score("again", &ranking(0.9));
        assert_eq!(old_primary.stats().append_errors, 1);

        // The new primary writes fine, and the file never saw the
        // deposed handle's records.
        new_primary.append_score("after", &ranking(0.7));
        drop(new_primary);
        drop(old_primary);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.epoch, 1);
        assert!(replay.scores.iter().any(|(k, _)| k == "before"));
        assert!(replay.scores.iter().any(|(k, _)| k == "after"));
        assert!(
            !replay.scores.iter().any(|(k, _)| k == "split-brain"),
            "no divergence: the fenced append never reached the file"
        );
        cleanup(&path);
    }

    #[test]
    fn epoch_survives_rotation_via_rejournaled_record() {
        let path = temp_path("epoch-rotate");
        let mut config = JournalConfig::new(&path);
        config.promote = true;
        config.max_bytes = 4096;
        config.retain_scores = 2;
        let (journal, _) = Journal::open(config).unwrap();
        for i in 0..100 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
        }
        assert!(journal.stats().rotations >= 1);
        drop(journal);
        // Even with the sidecar gone, the compacted file re-declares
        // its epoch.
        let _ = std::fs::remove_file(epoch_path(&path));
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.epoch, 1, "compaction re-journals the epoch record");
        cleanup(&path);
    }

    #[test]
    fn fault_plan_fsync_failures_degrade_the_journal_loudly() {
        let path = temp_path("fsync-fault");
        let mut config = JournalConfig::new(&path);
        config.fsync = FsyncPolicy::PerRecord;
        config.fault = Some(SvcFaultPlan { fail_fsync_after: Some(0), ..SvcFaultPlan::default() });
        let (journal, _) = Journal::open(config).unwrap();
        for i in 0..5 {
            journal.append_score(&format!("k{i}"), &ranking(0.5));
        }
        let stats = journal.stats();
        assert_eq!(
            stats.fsync_errors,
            u64::from(FSYNC_FAILURE_LIMIT),
            "every failed fsync is counted until the journal degrades"
        );
        assert!(stats.degraded, "repeated fsync failures degrade to read-only");
        assert_eq!(stats.appended, u64::from(FSYNC_FAILURE_LIMIT), "appends stop once degraded");
        assert_eq!(stats.append_errors, 5 - u64::from(FSYNC_FAILURE_LIMIT));
        cleanup(&path);
    }

    #[test]
    fn fault_plan_crash_kills_at_a_deterministic_offset() {
        let path = temp_path("crash-fault");
        let mut config = JournalConfig::new(&path);
        config.fault = Some(SvcFaultPlan {
            seed: 7,
            crash_after_append: Some(2),
            torn_tail: true,
            ..SvcFaultPlan::default()
        });
        let (journal, _) = Journal::open(config).unwrap();
        journal.append_score("one", &ranking(0.1));
        journal.append_score("two", &ranking(0.2));
        journal.append_score("never", &ranking(0.3));
        let stats = journal.stats();
        assert!(stats.degraded, "the fault plan killed the journal");
        assert_eq!(stats.appended, 2, "exactly the pre-crash records landed");
        drop(journal);
        // The crash image replays like a real kill -9: two records plus
        // a torn tail, sealed at the next open.
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 2);
        assert_eq!(replay.dropped, 1, "the torn fragment is dropped");
        assert!(!replay.scores.iter().any(|(k, _)| k == "never"));
        cleanup(&path);
    }

    #[test]
    fn follower_streams_appends_live() {
        let path = temp_path("follow");
        let mut follower = JournalFollower::new(&path);
        assert!(follower.poll().unwrap().is_empty(), "no file yet: no events");
        let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append_score("k1", &ranking(0.5));
        journal.append_run(7, &run_result(7));
        let events = follower.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert!(
            matches!(&events[0], FollowEvent::Record { record: JournalRecord::Score { key, .. }, .. } if key == "k1")
        );
        assert!(matches!(
            &events[1],
            FollowEvent::Record { record: JournalRecord::Run { job: 7, .. }, .. }
        ));
        assert!(follower.poll().unwrap().is_empty(), "nothing new: no events");
        journal.append_release(3);
        let events = follower.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            FollowEvent::Record { record: JournalRecord::Release { job: 3 }, .. }
        ));
        cleanup(&path);
    }

    #[test]
    fn follower_buffers_an_incomplete_final_line() {
        let path = temp_path("follow-partial");
        std::fs::write(&path, b"").unwrap();
        let mut follower = JournalFollower::new(&path);
        assert!(follower.poll().unwrap().is_empty());
        // A record arrives in two chunks, as a slow writer would
        // produce it.
        let line = sealed_line(&score_record("split", &ranking(0.5)));
        let (head, tail) = line.split_at(10);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(head.as_bytes()).unwrap();
        f.sync_data().unwrap();
        assert!(follower.poll().unwrap().is_empty(), "half a line is not an event");
        f.write_all(tail.as_bytes()).unwrap();
        f.write_all(b"\n").unwrap();
        drop(f);
        let events = follower.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], FollowEvent::Record { record: JournalRecord::Score { key, .. }, .. } if key == "split")
        );
        cleanup(&path);
    }

    #[test]
    fn follower_signals_reset_on_rotation_and_restreams() {
        let path = temp_path("follow-rotate");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 4;
        config.retain_runs = 2;
        let (journal, _) = Journal::open(config).unwrap();
        let mut follower = JournalFollower::new(&path);
        journal.append_score("early", &ranking(0.5));
        assert_eq!(follower.poll().unwrap().len(), 1);
        for i in 0..200 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
        }
        assert!(journal.stats().rotations >= 1, "rotation must have triggered");
        let events = follower.poll().unwrap();
        assert!(
            events.iter().any(|e| matches!(e, FollowEvent::Reset)),
            "the follower noticed the rotation"
        );
        let after_reset: Vec<&FollowEvent> =
            events.iter().skip_while(|e| !matches!(e, FollowEvent::Reset)).skip(1).collect();
        assert!(
            after_reset.iter().any(|e| matches!(
                e,
                FollowEvent::Record { record: JournalRecord::Score { key, .. }, .. } if key == "key-199"
            )),
            "after the reset the compacted file streams from the top"
        );
        cleanup(&path);
    }

    #[test]
    fn follower_flags_corrupt_lines() {
        let path = temp_path("follow-corrupt");
        let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
        journal.append_score("good", &ranking(0.5));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\":\"score\",\"key\":\"flipped\",\"crc\":\"00000000\"}\n").unwrap();
        drop(f);
        let mut follower = JournalFollower::new(&path);
        let events = follower.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], FollowEvent::Record { .. }));
        assert!(matches!(&events[1], FollowEvent::Corrupt { .. }));
        cleanup(&path);
    }

    #[test]
    fn checksum_seal_and_verify_are_byte_exact() {
        let record = score_record("k", &ranking(0.123456789));
        let line = sealed_line(&record);
        assert!(crc_valid(&line));
        assert!(decode_line(line.as_bytes()).is_some());
        // Any single-byte change breaks the seal.
        let mut tampered = line.clone().into_bytes();
        let mid = tampered.len() / 2;
        tampered[mid] ^= 0x02;
        let tampered = String::from_utf8(tampered).unwrap();
        assert!(!crc_valid(&tampered) || Value::parse(&tampered).is_err());
    }
}
