//! Append-only on-disk journal: the service's restart persistence.
//!
//! Every admitted request and every completed result is appended as one
//! JSON line (the crate-local [`crate::json`] codec — no new
//! dependencies), so a restarted service can replay the file to warm
//! the score cache and rebuild the completed-job index that backs the
//! `attach { job }` wire request. Three record kinds:
//!
//! ```text
//! {"rec":"admit","v":2,"job":3,"tenant":"t",        // request admitted (v2; "tenant"
//!  "request":{...}}                                 //  only when tagged)
//! {"rec":"score","key":"...","placements":[...]}   // score evaluated (full ranking)
//! {"rec":"run","job":7,"response":{...}}           // run completed
//! {"rec":"reserve","job":9,"members":[...],        // cosched reservation opened
//!  "assignment":[...],"predicted_end":12.5,"seq":4,
//!  "tenant":"t"}                                   //  ("tenant" only when tagged)
//! {"rec":"release","job":9}                        // cosched reservation closed
//! ```
//!
//! Admit records are versioned: v2 carries explicit `job`/`tenant`
//! fields so replay rebuilds per-tenant quota occupancy without
//! re-parsing the embedded request. Unversioned (v1, pre-quota) admit
//! records still replay — job and tenant are recovered from the
//! embedded request, which always carried both. Reserve records carry
//! the tenant too because compaction drops admits but keeps open
//! reservations, and those are exactly the records quota occupancy is
//! rebuilt from.
//!
//! Reserve and release records net out at replay: a restarted service
//! sees only the reservations still open at the crash
//! ([`JournalReplay::reservations`]) and rebuilds its residency map
//! from them, so capacity committed to jobs that never completed is
//! not silently forgotten.
//!
//! Durability is configurable ([`FsyncPolicy`]): fsync after every
//! record, or batched every N records (flushed again on rotation and
//! drop). Replay tolerates a torn tail — a final line truncated by a
//! crash mid-append parses as garbage and is dropped, never fatal, and
//! [`Journal::open`] seals the tear by truncating the file back to the
//! last newline so later appends start a fresh line. The same parse
//! lenience covers corrupt interior lines, each counted in
//! [`JournalStats::replay_dropped`].
//!
//! Size-based rotation keeps the file bounded: once an append pushes
//! the journal past `max_bytes`, it is compacted in place — rewritten
//! keeping only the newest `retain_scores` score records (deduplicated
//! by cache key, last write wins) and the newest `retain_runs` run
//! records (deduplicated by job id); admit records, having served their
//! forensic purpose for the previous epoch, are dropped. The rewrite
//! goes through a temp file + rename so a crash during compaction
//! leaves either the old or the new journal, never a half-written one.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::{obj, Value};
use crate::protocol::{
    placement_from_value, placement_to_value, RankedPlacement, Request, Response,
};

/// When appended records are fsynced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: maximum durability, one disk
    /// round-trip per request.
    PerRecord,
    /// `fdatasync` every `n` records (and on rotation and drop): bounded
    /// data loss of at most `n` records on an OS crash, near-zero
    /// steady-state cost. A process crash alone loses nothing — writes
    /// reach the page cache immediately.
    Batched(u32),
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Batched(64)
    }
}

/// Where and how the journal persists.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Journal file path (created if absent; replayed if present).
    pub path: PathBuf,
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Size threshold that triggers rotation + compaction.
    pub max_bytes: u64,
    /// Score records surviving compaction (wire this to the score-cache
    /// capacity: retaining more than the cache can hold is waste).
    pub retain_scores: usize,
    /// Run records surviving compaction (bounds the completed-job index
    /// a replay rebuilds).
    pub retain_runs: usize,
}

impl JournalConfig {
    /// Defaults: batched fsync, 8 MiB rotation threshold, 256 retained
    /// records of each kind.
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            path: path.into(),
            fsync: FsyncPolicy::default(),
            max_bytes: 8 << 20,
            retain_scores: 256,
            retain_runs: 256,
        }
    }
}

/// What a replay recovered, in file (= chronological) order with
/// duplicates collapsed to their newest occurrence.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// `(cache key, full ranking)` pairs to warm the score cache.
    pub scores: Vec<(String, Vec<RankedPlacement>)>,
    /// `(job id, run result)` pairs to rebuild the completed-job index.
    pub runs: Vec<(u64, Response)>,
    /// Co-scheduler reservations still open (reserve net of release),
    /// to rebuild the residency map.
    pub reservations: Vec<ReplayedReservation>,
    /// Admit records seen (forensic count).
    pub admits: u64,
    /// Job → tenant attribution recovered from admit records (v2
    /// directly; v1 via the embedded request), for rebuilding
    /// per-tenant quota occupancy of still-open reservations.
    pub admit_tenants: HashMap<u64, String>,
    /// Torn or corrupt lines dropped.
    pub dropped: u64,
}

/// One open co-scheduler reservation recovered by replay — the durable
/// fields of a `scheduler::cosched::Reservation` (the per-node load
/// vectors are recomputed from shape + assignment on restore).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedReservation {
    /// Job id holding the reservation.
    pub job: u64,
    /// Ensemble shape: per member, (simulation cores, analysis cores).
    pub members: Vec<(u32, Vec<u32>)>,
    /// Member → node assignment.
    pub assignment: Vec<usize>,
    /// Predicted completion in scheduler virtual time.
    pub predicted_end: f64,
    /// Admission sequence number (restores deterministic tie-breaking).
    pub seq: u64,
    /// Tenant holding the reservation, when the request was tagged
    /// (absent from the record when untagged, and from pre-quota
    /// journals).
    pub tenant: Option<String>,
}

/// Point-in-time journal counters for the metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JournalStats {
    /// Records appended since open.
    pub appended: u64,
    /// Appends that failed at the I/O layer (service kept running).
    pub append_errors: u64,
    /// Current journal file size, bytes.
    pub bytes: u64,
    /// Rotation + compaction passes since open.
    pub rotations: u64,
    /// Score records recovered by the open-time replay.
    pub replayed_scores: u64,
    /// Run records recovered by the open-time replay.
    pub replayed_runs: u64,
    /// Torn/corrupt lines the replay dropped.
    pub replay_dropped: u64,
}

enum ParsedRecord {
    Admit { job: u64, tenant: Option<String> },
    Score { key: String, placements: Vec<RankedPlacement> },
    Run { job: u64, response: Response },
    Reserve(ReplayedReservation),
    Release { job: u64 },
}

struct Inner {
    file: File,
    bytes: u64,
    since_sync: u32,
}

/// The append side of the journal (replay happens once, at
/// [`Journal::open`]).
pub struct Journal {
    inner: Mutex<Inner>,
    config: JournalConfig,
    appended: AtomicU64,
    append_errors: AtomicU64,
    rotations: AtomicU64,
    replayed_scores: u64,
    replayed_runs: u64,
    replay_dropped: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `config.path`, replays
    /// any existing records, and returns the append handle plus what
    /// the replay recovered. A torn final line is dropped, not fatal.
    pub fn open(config: JournalConfig) -> std::io::Result<(Journal, JournalReplay)> {
        let existing = match std::fs::read(&config.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, dropped) = parse_records(&existing);
        let replay = build_replay(records, dropped);
        let file = OpenOptions::new().create(true).append(true).open(&config.path)?;
        let mut bytes = file.metadata()?.len();
        // Seal a torn tail: everything past the last newline is a
        // half-written record from a crash mid-append. It is already
        // dropped from the replay; physically truncating it keeps the
        // next append from merging into the fragment and corrupting a
        // good record.
        let sealed = existing.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0) as u64;
        if sealed < bytes {
            file.set_len(sealed)?;
            bytes = sealed;
        }
        let journal = Journal {
            inner: Mutex::new(Inner { file, bytes, since_sync: 0 }),
            replayed_scores: replay.scores.len() as u64,
            replayed_runs: replay.runs.len() as u64,
            replay_dropped: replay.dropped,
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            config,
        };
        Ok((journal, replay))
    }

    /// Journals an admitted request (v2 record: explicit job and tenant
    /// attribution alongside the full request).
    pub fn append_admit(&self, request: &Request) {
        let mut fields =
            vec![("rec", "admit".into()), ("v", 2u64.into()), ("job", request.id.into())];
        if let Some(t) = &request.tenant {
            fields.push(("tenant", t.as_str().into()));
        }
        fields.push(("request", request.to_value()));
        self.append_line(&obj(fields));
    }

    /// Journals a freshly evaluated score ranking under its cache key
    /// (the full, untruncated ranking — what the cache holds).
    pub fn append_score(&self, key: &str, placements: &[RankedPlacement]) {
        self.append_line(&score_record(key, placements));
    }

    /// Journals a completed run result under its job id.
    pub fn append_run(&self, job: u64, response: &Response) {
        self.append_line(&run_record(job, response));
    }

    /// Journals an opened co-scheduler reservation.
    pub fn append_reserve(&self, reservation: &ReplayedReservation) {
        self.append_line(&reserve_record(reservation));
    }

    /// Journals a closed co-scheduler reservation (completion, failure,
    /// cancellation, or admission rollback).
    pub fn append_release(&self, job: u64) {
        self.append_line(&obj(vec![("rec", "release".into()), ("job", job.into())]));
    }

    /// Current counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            bytes: self.inner.lock().expect("journal lock").bytes,
            rotations: self.rotations.load(Ordering::Relaxed),
            replayed_scores: self.replayed_scores,
            replayed_runs: self.replayed_runs,
            replay_dropped: self.replay_dropped,
        }
    }

    fn append_line(&self, record: &Value) {
        let mut line = record.to_json();
        line.push('\n');
        let mut inner = self.inner.lock().expect("journal lock");
        if let Err(e) = inner.file.write_all(line.as_bytes()) {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("svc journal: append failed: {e}");
            return;
        }
        inner.bytes += line.len() as u64;
        self.appended.fetch_add(1, Ordering::Relaxed);
        match self.config.fsync {
            FsyncPolicy::PerRecord => {
                let _ = inner.file.sync_data();
            }
            FsyncPolicy::Batched(n) => {
                inner.since_sync += 1;
                if inner.since_sync >= n.max(1) {
                    let _ = inner.file.sync_data();
                    inner.since_sync = 0;
                }
            }
        }
        if inner.bytes > self.config.max_bytes {
            if let Err(e) = self.rotate_locked(&mut inner) {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("svc journal: rotation failed: {e}");
            }
        }
    }

    /// Compacts the journal in place: keep the newest `retain_scores` /
    /// `retain_runs` records of each kind (deduplicated, last write
    /// wins), drop admit records, rewrite through a temp file + rename.
    fn rotate_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        let _ = inner.file.sync_data();
        let existing = std::fs::read(&self.config.path)?;
        let (records, _dropped) = parse_records(&existing);
        let replay = build_replay(records, 0);
        let mut compacted = String::new();
        let skip = replay.scores.len().saturating_sub(self.config.retain_scores);
        for (key, placements) in replay.scores.iter().skip(skip) {
            compacted.push_str(&score_record(key, placements).to_json());
            compacted.push('\n');
        }
        let skip = replay.runs.len().saturating_sub(self.config.retain_runs);
        for (job, response) in replay.runs.iter().skip(skip) {
            compacted.push_str(&run_record(*job, response).to_json());
            compacted.push('\n');
        }
        // Open reservations are live capacity commitments — every one
        // survives compaction, uncapped (bounded in practice by the
        // co-scheduler's own admission queue).
        for reservation in &replay.reservations {
            compacted.push_str(&reserve_record(reservation).to_json());
            compacted.push('\n');
        }
        let tmp = self.config.path.with_extension("journal-compact");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(compacted.as_bytes())?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.config.path)?;
        inner.file = OpenOptions::new().append(true).open(&self.config.path)?;
        inner.bytes = compacted.len() as u64;
        inner.since_sync = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.lock() {
            let _ = inner.file.sync_data();
        }
    }
}

fn score_record(key: &str, placements: &[RankedPlacement]) -> Value {
    obj(vec![
        ("rec", "score".into()),
        ("key", key.into()),
        ("placements", Value::Arr(placements.iter().map(placement_to_value).collect())),
    ])
}

fn run_record(job: u64, response: &Response) -> Value {
    obj(vec![("rec", "run".into()), ("job", job.into()), ("response", response.to_value())])
}

fn reserve_record(r: &ReplayedReservation) -> Value {
    let mut fields = vec![
        ("rec", "reserve".into()),
        ("job", r.job.into()),
        (
            "members",
            Value::Arr(
                r.members
                    .iter()
                    .map(|(sim, anas)| {
                        obj(vec![
                            ("sim_cores", u64::from(*sim).into()),
                            (
                                "analyses",
                                Value::Arr(anas.iter().map(|&a| u64::from(a).into()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("assignment", Value::Arr(r.assignment.iter().map(|&n| (n as u64).into()).collect())),
        ("predicted_end", r.predicted_end.into()),
        ("seq", r.seq.into()),
    ];
    if let Some(t) = &r.tenant {
        fields.push(("tenant", t.as_str().into()));
    }
    obj(fields)
}

/// Splits `bytes` into newline-terminated records, dropping (and
/// counting) corrupt lines and the torn unterminated tail.
fn parse_records(bytes: &[u8]) -> (Vec<ParsedRecord>, u64) {
    let mut records = Vec::new();
    let mut dropped = 0u64;
    let mut start = 0usize;
    while let Some(pos) = bytes[start..].iter().position(|&b| b == b'\n') {
        let line = &bytes[start..start + pos];
        start += pos + 1;
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        match parse_record(line) {
            Some(r) => records.push(r),
            None => dropped += 1,
        }
    }
    // No trailing newline: the final append was interrupted. Drop it.
    if !bytes[start..].iter().all(u8::is_ascii_whitespace) {
        dropped += 1;
    }
    (records, dropped)
}

fn parse_record(line: &[u8]) -> Option<ParsedRecord> {
    let text = std::str::from_utf8(line).ok()?;
    let v = Value::parse(text).ok()?;
    match v.get("rec")?.as_str()? {
        "admit" => {
            // v2 carries job/tenant explicitly; v1 (unversioned) only
            // embeds the request — which always carried both, so old
            // journals replay with full attribution.
            let request = Request::from_value(v.get("request")?).ok()?;
            let job = v.get("job").and_then(Value::as_u64).unwrap_or(request.id);
            let tenant = match v.get("tenant") {
                Some(t) => Some(t.as_str()?.to_string()),
                None => request.tenant,
            };
            Some(ParsedRecord::Admit { job, tenant })
        }
        "score" => {
            let key = v.get("key")?.as_str()?.to_string();
            let placements = v
                .get("placements")?
                .as_arr()?
                .iter()
                .map(placement_from_value)
                .collect::<Result<Vec<_>, _>>()
                .ok()?;
            Some(ParsedRecord::Score { key, placements })
        }
        "run" => {
            let job = v.get("job")?.as_u64()?;
            let response = Response::from_value(v.get("response")?).ok()?;
            // Only completed run results are attachable; anything else
            // in a run record is corruption.
            matches!(response, Response::RunResult { .. }).then_some(())?;
            Some(ParsedRecord::Run { job, response })
        }
        "reserve" => {
            let job = v.get("job")?.as_u64()?;
            let members = v
                .get("members")?
                .as_arr()?
                .iter()
                .map(|m| {
                    let sim = u32::try_from(m.get("sim_cores")?.as_u64()?).ok()?;
                    let anas = m
                        .get("analyses")?
                        .as_arr()?
                        .iter()
                        .map(|a| a.as_u64().and_then(|a| u32::try_from(a).ok()))
                        .collect::<Option<Vec<u32>>>()?;
                    Some((sim, anas))
                })
                .collect::<Option<Vec<_>>>()?;
            let assignment = v
                .get("assignment")?
                .as_arr()?
                .iter()
                .map(|a| a.as_u64().map(|a| a as usize))
                .collect::<Option<Vec<_>>>()?;
            let predicted_end = v.get("predicted_end")?.as_f64()?;
            let seq = v.get("seq")?.as_u64()?;
            let tenant = match v.get("tenant") {
                Some(t) => Some(t.as_str()?.to_string()),
                None => None,
            };
            // A reservation without members, or whose assignment does
            // not cover every component (one slot per sim plus one per
            // analysis), cannot rebuild a residency entry: corruption.
            let slots: usize = members.iter().map(|(_, anas)| 1 + anas.len()).sum();
            (!members.is_empty() && slots == assignment.len()).then_some(())?;
            Some(ParsedRecord::Reserve(ReplayedReservation {
                job,
                members,
                assignment,
                predicted_end,
                seq,
                tenant,
            }))
        }
        "release" => Some(ParsedRecord::Release { job: v.get("job")?.as_u64()? }),
        _ => None,
    }
}

/// Collapses records to their newest occurrence per key/job while
/// preserving chronological order (so FIFO cache warm-up keeps the
/// newest entries when over capacity).
fn build_replay(records: Vec<ParsedRecord>, dropped: u64) -> JournalReplay {
    let mut replay = JournalReplay { dropped, ..JournalReplay::default() };
    let mut score_slot: HashMap<String, usize> = HashMap::new();
    let mut run_slot: HashMap<u64, usize> = HashMap::new();
    let mut resv_slot: HashMap<u64, usize> = HashMap::new();
    let mut scores: Vec<Option<(String, Vec<RankedPlacement>)>> = Vec::new();
    let mut runs: Vec<Option<(u64, Response)>> = Vec::new();
    let mut resvs: Vec<Option<ReplayedReservation>> = Vec::new();
    for record in records {
        match record {
            ParsedRecord::Admit { job, tenant } => {
                replay.admits += 1;
                if let Some(tenant) = tenant {
                    replay.admit_tenants.insert(job, tenant);
                }
            }
            ParsedRecord::Score { key, placements } => {
                if let Some(&old) = score_slot.get(&key) {
                    scores[old] = None;
                }
                score_slot.insert(key.clone(), scores.len());
                scores.push(Some((key, placements)));
            }
            ParsedRecord::Run { job, response } => {
                if let Some(&old) = run_slot.get(&job) {
                    runs[old] = None;
                }
                run_slot.insert(job, runs.len());
                runs.push(Some((job, response)));
            }
            ParsedRecord::Reserve(r) => {
                if let Some(&old) = resv_slot.get(&r.job) {
                    resvs[old] = None;
                }
                resv_slot.insert(r.job, resvs.len());
                resvs.push(Some(r));
            }
            ParsedRecord::Release { job } => {
                if let Some(old) = resv_slot.remove(&job) {
                    resvs[old] = None;
                }
            }
        }
    }
    replay.scores = scores.into_iter().flatten().collect();
    replay.runs = runs.into_iter().flatten().collect();
    replay.reservations = resvs.into_iter().flatten().collect();
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MemberSummary;

    fn temp_path(name: &str) -> PathBuf {
        let path = std::env::temp_dir()
            .join(format!("svc-journal-unit-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn ranking(objective: f64) -> Vec<RankedPlacement> {
        vec![RankedPlacement {
            assignment: vec![0, 1],
            objective,
            nodes_used: 2,
            ensemble_makespan: 100.0,
            eq4_satisfied: true,
        }]
    }

    fn run_result(id: u64) -> Response {
        Response::RunResult {
            id,
            ensemble_makespan: 42.0,
            members: vec![MemberSummary {
                sigma_star: 1.0,
                efficiency: 0.9,
                cp: 1.0,
                makespan: 41.0,
            }],
            elapsed_ms: 5.0,
        }
    }

    #[test]
    fn roundtrips_scores_and_runs_across_reopen() {
        let path = temp_path("roundtrip");
        {
            let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
            assert!(replay.scores.is_empty() && replay.runs.is_empty());
            journal.append_score("k1", &ranking(0.5));
            journal.append_score("k2", &ranking(0.7));
            journal.append_run(7, &run_result(7));
            assert_eq!(journal.stats().appended, 3);
        }
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 2);
        assert_eq!(replay.scores[0].0, "k1");
        assert_eq!(replay.scores[1].1[0].objective.to_bits(), 0.7f64.to_bits());
        assert_eq!(replay.runs.len(), 1);
        assert_eq!(replay.runs[0].0, 7);
        assert_eq!(replay.runs[0].1, run_result(7));
        assert_eq!(journal.stats().replayed_scores, 2);
        assert_eq!(journal.stats().replayed_runs, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_keys_replay_newest_only() {
        let path = temp_path("dedup");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("k", &ranking(0.1));
            journal.append_score("k", &ranking(0.9));
            journal.append_run(3, &run_result(3));
            journal.append_run(3, &run_result(3));
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 1);
        assert_eq!(replay.scores[0].1[0].objective.to_bits(), 0.9f64.to_bits());
        assert_eq!(replay.runs.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_path("torn");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("whole", &ranking(0.5));
        }
        // Simulate a crash mid-append: a final line with no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"rec\":\"score\",\"key\":\"torn").unwrap();
        drop(f);
        let (journal, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 1, "intact record survives");
        assert_eq!(replay.scores[0].0, "whole");
        assert_eq!(replay.dropped, 1, "torn tail dropped, not fatal");
        assert_eq!(journal.stats().replay_dropped, 1);
        // Open sealed the tear (truncated to the last newline), so the
        // next append starts a fresh line instead of merging into the
        // fragment and corrupting itself.
        journal.append_score("after-tear", &ranking(0.6));
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0, "the fragment was physically removed at the previous open");
        assert!(replay.scores.iter().any(|(k, _)| k == "whole"));
        assert!(replay.scores.iter().any(|(k, _)| k == "after-tear"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_lines_are_skipped() {
        let path = temp_path("corrupt");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("a", &ranking(0.5));
        }
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"not json at all\n{\"rec\":\"mystery\"}\n").unwrap();
        drop(f);
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_score("b", &ranking(0.6));
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.scores.len(), 2);
        assert_eq!(replay.dropped, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_compacts_to_newest_entries_under_the_cap() {
        let path = temp_path("rotate");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 4;
        config.retain_runs = 2;
        let (journal, _) = Journal::open(config).unwrap();
        for i in 0..200 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            journal.append_run(i, &run_result(i));
        }
        let stats = journal.stats();
        assert!(stats.rotations >= 1, "rotation must have triggered");
        assert!(
            stats.bytes <= 4096 + 1024,
            "file stays near the cap after compaction, got {} bytes",
            stats.bytes
        );
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        // The resident set is the retained records of the last compaction
        // plus whatever was appended since — bounded by the byte cap,
        // nowhere near the 200 written.
        assert!(replay.scores.len() < 40, "bounded by rotation, got {}", replay.scores.len());
        assert!(!replay.scores.iter().any(|(k, _)| k == "key-0"), "oldest score compacted away");
        assert!(replay.scores.iter().any(|(k, _)| k == "key-199"), "newest score survives");
        assert!(replay.runs.iter().any(|(j, _)| *j == 199), "newest run survives");
        let _ = std::fs::remove_file(&path);
    }

    fn reservation(job: u64, seq: u64) -> ReplayedReservation {
        ReplayedReservation {
            job,
            members: vec![(16, vec![8]), (8, vec![4, 4])],
            // One slot per component: member 1 (sim + analysis) on node
            // 0, member 2 (sim + two analyses) on node 1.
            assignment: vec![0, 0, 1, 1, 1],
            predicted_end: 12.5 + job as f64,
            seq,
            tenant: None,
        }
    }

    #[test]
    fn reservations_net_out_releases_across_reopen() {
        let path = temp_path("reserve");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            journal.append_reserve(&reservation(1, 1));
            journal.append_reserve(&reservation(2, 2));
            journal.append_release(1);
            journal.append_reserve(&reservation(3, 3));
            journal.append_release(9); // release without a reserve: harmless
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0);
        let open: Vec<u64> = replay.reservations.iter().map(|r| r.job).collect();
        assert_eq!(open, vec![2, 3], "only unreleased reservations survive replay");
        assert_eq!(replay.reservations[0], reservation(2, 2), "fields roundtrip exactly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_keeps_every_open_reservation() {
        let path = temp_path("reserve-rotate");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 2;
        config.retain_runs = 2;
        let (journal, _) = Journal::open(config).unwrap();
        journal.append_reserve(&reservation(1, 1));
        for i in 0..100 {
            journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            journal.append_reserve(&reservation(100 + i, 100 + i));
            journal.append_release(100 + i);
        }
        assert!(journal.stats().rotations >= 1, "rotation must have triggered");
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(
            replay.reservations.iter().map(|r| r.job).collect::<Vec<_>>(),
            vec![1],
            "the open reservation survives compaction; the released pairs are gone"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_record_fsync_policy_appends_fine() {
        let path = temp_path("fsync");
        let mut config = JournalConfig::new(&path);
        config.fsync = FsyncPolicy::PerRecord;
        let (journal, _) = Journal::open(config).unwrap();
        journal.append_admit(&crate::service::small_score_request(1, 2, 16, 1, 8, 3));
        journal.append_score("k", &ranking(0.5));
        assert_eq!(journal.stats().appended, 2);
        assert_eq!(journal.stats().append_errors, 0);
        drop(journal);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.admits, 1);
        assert_eq!(replay.scores.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn admit_records_carry_tenant_attribution_v2_and_v1() {
        let path = temp_path("admit-tenant");
        {
            let (journal, _) = Journal::open(JournalConfig::new(&path)).unwrap();
            let mut tagged = crate::service::small_score_request(21, 2, 16, 1, 8, 3);
            tagged.tenant = Some("team-a".into());
            journal.append_admit(&tagged);
            journal.append_admit(&crate::service::small_score_request(22, 2, 16, 1, 8, 3));
        }
        // A pre-quota (v1) admit line: no version, no top-level fields —
        // tenant lives only inside the embedded request.
        let legacy = crate::service::small_score_request(23, 2, 16, 1, 8, 3);
        let mut with_tenant = legacy.clone();
        with_tenant.tenant = Some("legacy-t".into());
        let v1_line = obj(vec![("rec", "admit".into()), ("request", with_tenant.to_value())]);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "{}", v1_line.to_json()).unwrap();
        drop(f);
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.admits, 3);
        assert_eq!(replay.admit_tenants.get(&21).map(String::as_str), Some("team-a"));
        assert_eq!(replay.admit_tenants.get(&22), None, "untagged admits stay unattributed");
        assert_eq!(
            replay.admit_tenants.get(&23).map(String::as_str),
            Some("legacy-t"),
            "v1 records recover tenant from the embedded request"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reserve_records_roundtrip_tenant_and_survive_compaction() {
        let path = temp_path("reserve-tenant");
        let mut config = JournalConfig::new(&path);
        config.max_bytes = 4096;
        config.retain_scores = 2;
        config.retain_runs = 2;
        {
            let (journal, _) = Journal::open(config).unwrap();
            let tagged = ReplayedReservation { tenant: Some("batch".into()), ..reservation(1, 1) };
            journal.append_reserve(&tagged);
            journal.append_reserve(&reservation(2, 2));
            // Force a few rotations: tenant attribution must survive
            // compaction because admits do not.
            for i in 0..100 {
                journal.append_score(&format!("key-{i}"), &ranking(i as f64));
            }
            assert!(journal.stats().rotations >= 1, "rotation must have triggered");
        }
        let (_, replay) = Journal::open(JournalConfig::new(&path)).unwrap();
        let open: Vec<(u64, Option<&str>)> =
            replay.reservations.iter().map(|r| (r.job, r.tenant.as_deref())).collect();
        assert_eq!(open, vec![(1, Some("batch")), (2, None)]);
        let _ = std::fs::remove_file(&path);
    }
}
