//! JSON-lines-over-TCP front end.
//!
//! One request per line, one *final* response line per request, answered
//! in order per connection; concurrency comes from concurrent
//! connections feeding the shared worker pool. Requests that opt in via
//! a `progress` spec additionally get zero or more `{"type":"progress"}`
//! lines before their final line — same connection, same order, never
//! interleaved with another request's frames (one connection serves one
//! request at a time). Malformed lines get a structured `error` response
//! instead of killing the connection (or a worker). A client that
//! disconnects before its response is delivered — or mid-stream between
//! progress frames — cancels its in-flight work cooperatively; the write
//! failure is absorbed.
//!
//! Shutdown: stop accepting, wake connection readers via their read
//! timeout, drain the service (everything admitted is still answered),
//! then join every thread.

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{ErrorKind, Frame, Request, RequestBody, Response};
use crate::service::{Pending, Service, SvcConfig};

/// Poll interval connection readers use to observe shutdown.
const READ_POLL: Duration = Duration::from_millis(50);
/// A request line longer than this is refused as malformed.
const MAX_LINE_BYTES: usize = 1 << 20;

struct ServerShared {
    service: Service,
    stopping: AtomicBool,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running TCP server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) drains and stops everything.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// requests on top of a freshly started [`Service`].
pub fn serve(addr: &str, config: SvcConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        service: Service::try_start(config)?,
        stopping: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("svc-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn acceptor");
    Ok(ServerHandle { shared, addr: local, accept_thread: Some(accept_thread) })
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics of the underlying service.
    pub fn metrics(&self) -> crate::stats::MetricsSnapshot {
        self.shared.service.metrics()
    }

    /// Direct access to the underlying service (in-process submissions
    /// share the pool and cache with TCP clients).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Connection-thread handles currently tracked by the acceptor.
    /// Finished handles are reaped on each accept, so under steady churn
    /// this stays bounded by the number of *live* connections (plus any
    /// that finished since the last accept) instead of growing by one
    /// per connection ever served.
    pub fn tracked_connections(&self) -> usize {
        self.shared.conns.lock().expect("conns lock").len()
    }

    /// Graceful shutdown: refuse new connections and requests, drain
    /// admitted work, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drain admitted work; pending replies unblock connection
        // threads waiting on them.
        self.shared.service.shutdown();
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.stopping.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("svc-conn".into())
                    .spawn(move || connection_loop(stream, &conn_shared))
                    .expect("spawn connection");
                // Reap finished connection threads before tracking the
                // new one: joining a finished handle is instant, and
                // without the sweep a long-lived server leaked one
                // JoinHandle (thread stack bookkeeping included) per
                // connection it ever served until shutdown.
                let mut conns = shared.conns.lock().expect("conns lock");
                let mut live = Vec::with_capacity(conns.len() + 1);
                for h in conns.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                live.push(handle);
                *conns = live;
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(READ_POLL);
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Serve every complete line already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            // A panic while handling one request must cost exactly that
            // request, not the connection (and certainly not the
            // server): contain it and answer with a structured error.
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_line(shared, &line)
            }))
            .unwrap_or_else(|_| {
                Handled::One(Response::Error {
                    id: line_request_id(&line),
                    kind: ErrorKind::Internal,
                    message: "request handler panicked".into(),
                })
            });
            match handled {
                Handled::One(response) => {
                    if write_line(&mut stream, &response.to_json()).is_err() {
                        // Client gone mid-response; nothing to deliver.
                        break 'conn;
                    }
                }
                Handled::Stream(pending) => {
                    // Drain the reply frame-by-frame: zero or more
                    // progress lines, then exactly one final line. A
                    // write failure means the watcher is gone — cancel
                    // the in-flight work so a dropped `--progress`
                    // session does not keep burning the pool, and let
                    // the worker's remaining sends fail harmlessly into
                    // the dropped receiver.
                    loop {
                        match pending.recv_frame() {
                            Frame::Progress(p) => {
                                if write_line(&mut stream, &p.to_json()).is_err() {
                                    pending.cancel();
                                    break 'conn;
                                }
                            }
                            Frame::Final(response) => {
                                if write_line(&mut stream, &response.to_json()).is_err() {
                                    break 'conn;
                                }
                                break;
                            }
                        }
                    }
                }
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let refuse = Response::Error {
                id: 0,
                kind: ErrorKind::Malformed,
                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            };
            let _ = stream.write_all(format!("{}\n", refuse.to_json()).as_bytes());
            break 'conn;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if shared.stopping.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
}

/// One newline-terminated protocol frame, written and flushed (the
/// stream has `TCP_NODELAY` set, so a progress line reaches the watcher
/// immediately instead of sitting in a send buffer behind the final).
fn write_line(stream: &mut TcpStream, json: &str) -> std::io::Result<()> {
    let mut out = String::with_capacity(json.len() + 1);
    out.push_str(json);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// How a request line gets answered: inline with one response, or by
/// draining a worker reply that may stream progress frames first.
enum Handled {
    One(Response),
    Stream(Pending),
}

/// Best effort at extracting an id even from a broken request line.
fn line_request_id(line: &str) -> u64 {
    crate::json::Value::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(crate::json::Value::as_u64))
        .unwrap_or(0)
}

fn handle_line(shared: &Arc<ServerShared>, line: &str) -> Handled {
    let request = match Request::from_json(line) {
        Ok(r) => r,
        Err(message) => {
            let id = line_request_id(line);
            // A syntactically fine request carrying an unusable tenant
            // tag is the caller's bug, not a framing problem — answer
            // `invalid` so clients don't retry it as a transport error.
            let kind = if message.starts_with("invalid tenant") {
                ErrorKind::Invalid
            } else {
                ErrorKind::Malformed
            };
            return Handled::One(Response::Error { id, kind, message });
        }
    };
    let id = request.id;
    if shared.service.panic_on_request_id() == Some(id) {
        panic!("injected front-end panic (request {id})");
    }
    if matches!(request.body, RequestBody::Metrics) {
        // Health endpoint: answered inline, never queued, works under
        // overload.
        let rows = shared.service.metrics().all_rows();
        return Handled::One(Response::Metrics { id, rows });
    }
    if let RequestBody::Attach { job } = request.body {
        // A cheap index lookup, answered inline like metrics — so a
        // client can re-fetch its finished run even while the queue is
        // shedding new work.
        return Handled::One(shared.service.attach(id, job));
    }
    match shared.service.submit(request) {
        Ok(pending) => {
            // Requests on one connection are answered in order; the
            // frame drain (including its blocking waits) is bounded by
            // service drain on shutdown. Non-opted requests never
            // receive progress frames, so their wire behavior is
            // byte-identical to the pre-streaming protocol.
            Handled::Stream(pending)
        }
        Err(rejected) => Handled::One(rejected.to_response(id)),
    }
}
