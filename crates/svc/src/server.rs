//! JSON-lines-over-TCP front end.
//!
//! One request per line, one response line per request, answered in
//! order per connection; concurrency comes from concurrent connections
//! feeding the shared worker pool. Malformed lines get a structured
//! `error` response instead of killing the connection (or a worker). A
//! client that disconnects before its response is delivered cancels its
//! in-flight work cooperatively; the write failure is absorbed.
//!
//! Shutdown: stop accepting, wake connection readers via their read
//! timeout, drain the service (everything admitted is still answered),
//! then join every thread.

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{ErrorKind, Request, RequestBody, Response};
use crate::service::{Service, SvcConfig};

/// Poll interval connection readers use to observe shutdown.
const READ_POLL: Duration = Duration::from_millis(50);
/// A request line longer than this is refused as malformed.
const MAX_LINE_BYTES: usize = 1 << 20;

struct ServerShared {
    service: Service,
    stopping: AtomicBool,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running TCP server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) drains and stops everything.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// requests on top of a freshly started [`Service`].
pub fn serve(addr: &str, config: SvcConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        service: Service::try_start(config)?,
        stopping: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("svc-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn acceptor");
    Ok(ServerHandle { shared, addr: local, accept_thread: Some(accept_thread) })
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics of the underlying service.
    pub fn metrics(&self) -> crate::stats::MetricsSnapshot {
        self.shared.service.metrics()
    }

    /// Direct access to the underlying service (in-process submissions
    /// share the pool and cache with TCP clients).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Graceful shutdown: refuse new connections and requests, drain
    /// admitted work, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drain admitted work; pending replies unblock connection
        // threads waiting on them.
        self.shared.service.shutdown();
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.stopping.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("svc-conn".into())
                    .spawn(move || connection_loop(stream, &conn_shared))
                    .expect("spawn connection");
                shared.conns.lock().expect("conns lock").push(handle);
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(READ_POLL);
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Serve every complete line already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            // A panic while handling one request must cost exactly that
            // request, not the connection (and certainly not the
            // server): contain it and answer with a structured error.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_line(shared, &line)
            }))
            .unwrap_or_else(|_| Response::Error {
                id: line_request_id(&line),
                kind: ErrorKind::Internal,
                message: "request handler panicked".into(),
            });
            let mut out = response.to_json();
            out.push('\n');
            if stream.write_all(out.as_bytes()).is_err() {
                // Client gone mid-response; nothing left to deliver.
                break 'conn;
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let refuse = Response::Error {
                id: 0,
                kind: ErrorKind::Malformed,
                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            };
            let _ = stream.write_all(format!("{}\n", refuse.to_json()).as_bytes());
            break 'conn;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if shared.stopping.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
}

/// Best effort at extracting an id even from a broken request line.
fn line_request_id(line: &str) -> u64 {
    crate::json::Value::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(crate::json::Value::as_u64))
        .unwrap_or(0)
}

fn handle_line(shared: &Arc<ServerShared>, line: &str) -> Response {
    let request = match Request::from_json(line) {
        Ok(r) => r,
        Err(message) => {
            let id = line_request_id(line);
            return Response::Error { id, kind: ErrorKind::Malformed, message };
        }
    };
    let id = request.id;
    if shared.service.panic_on_request_id() == Some(id) {
        panic!("injected front-end panic (request {id})");
    }
    if matches!(request.body, RequestBody::Metrics) {
        // Health endpoint: answered inline, never queued, works under
        // overload.
        let rows =
            shared.service.metrics().rows().into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        return Response::Metrics { id, rows };
    }
    if let RequestBody::Attach { job } = request.body {
        // A cheap index lookup, answered inline like metrics — so a
        // client can re-fetch its finished run even while the queue is
        // shedding new work.
        return shared.service.attach(id, job);
    }
    match shared.service.submit(request) {
        Ok(pending) => {
            // Requests on one connection are answered in order; the
            // blocking wait is bounded by service drain on shutdown.
            pending.wait()
        }
        Err(rejected) => rejected.to_response(id),
    }
}
