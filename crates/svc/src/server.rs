//! JSON-lines-over-TCP front end.
//!
//! One request per line, one *final* response line per request, answered
//! in order per connection; concurrency comes from concurrent
//! connections feeding the shared worker pool. Requests that opt in via
//! a `progress` spec additionally get zero or more `{"type":"progress"}`
//! lines before their final line — same connection, same order, never
//! interleaved with another request's frames (one connection serves one
//! request at a time). Malformed lines get a structured `error` response
//! instead of killing the connection (or a worker). A client that
//! disconnects before its response is delivered — or mid-stream between
//! progress frames — cancels its in-flight work cooperatively; the write
//! failure is absorbed.
//!
//! Shutdown: stop accepting, wake connection readers via their read
//! timeout, drain the service (everything admitted is still answered),
//! then join every thread.

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::journal::{FollowEvent, JournalFollower};
use crate::json::{obj, Value};
use crate::protocol::{ErrorKind, Frame, Request, RequestBody, Response};
use crate::service::{Pending, Service, SvcConfig};

/// Poll interval connection readers use to observe shutdown.
const READ_POLL: Duration = Duration::from_millis(50);
/// A request line longer than this is refused as malformed.
const MAX_LINE_BYTES: usize = 1 << 20;
/// Cadence of replication heartbeat frames and of the primary's
/// journal-sibling heartbeat file. Standbys declare the primary dead
/// after missing a few of these (see `standby::DEAD_AFTER_BEATS`).
pub const REPL_HEARTBEAT: Duration = Duration::from_millis(150);
/// How often a replication stream polls the journal for new records.
const REPL_POLL: Duration = Duration::from_millis(20);

/// Path of the primary-liveness heartbeat file, a sibling of the
/// journal (`<journal>.hb`). File-follow standbys watch its mtime.
pub fn heartbeat_path(journal: &std::path::Path) -> PathBuf {
    let mut name = journal.file_name().unwrap_or_default().to_os_string();
    name.push(".hb");
    journal.with_file_name(name)
}

struct ServerShared {
    service: Service,
    stopping: AtomicBool,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Replication sessions ever opened; stream faults from the fault
    /// plan hit only session 0, so a reconnecting standby recovers (the
    /// injected drop/stall models a transient network failure, not a
    /// permanently broken path).
    repl_sessions: std::sync::atomic::AtomicU64,
}

/// A running TCP server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) drains and stops everything.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    heartbeat_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// requests on top of a freshly started [`Service`].
pub fn serve(addr: &str, config: SvcConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let journal_path = config.journal.as_ref().map(|j| j.path.clone());
    let shared = Arc::new(ServerShared {
        service: Service::try_start(config)?,
        stopping: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        repl_sessions: std::sync::atomic::AtomicU64::new(0),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("svc-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn acceptor");
    // Journalled primaries advertise liveness by touching `<journal>.hb`
    // every heartbeat; a fault-plan "crash" (degraded journal) stops the
    // beat so file-follow standbys see the primary as dead even though
    // the test process is still alive.
    let heartbeat_thread = journal_path.map(|path| {
        let hb_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("svc-heartbeat".into())
            .spawn(move || heartbeat_loop(&path, &hb_shared))
            .expect("spawn heartbeat")
    });
    Ok(ServerHandle { shared, addr: local, accept_thread: Some(accept_thread), heartbeat_thread })
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics of the underlying service.
    pub fn metrics(&self) -> crate::stats::MetricsSnapshot {
        self.shared.service.metrics()
    }

    /// Direct access to the underlying service (in-process submissions
    /// share the pool and cache with TCP clients).
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// Connection-thread handles currently tracked by the acceptor.
    /// Finished handles are reaped on each accept, so under steady churn
    /// this stays bounded by the number of *live* connections (plus any
    /// that finished since the last accept) instead of growing by one
    /// per connection ever served.
    pub fn tracked_connections(&self) -> usize {
        self.shared.conns.lock().expect("conns lock").len()
    }

    /// Graceful shutdown: refuse new connections and requests, drain
    /// admitted work, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.heartbeat_thread.take() {
            let _ = t.join();
        }
        // Drain admitted work; pending replies unblock connection
        // threads waiting on them.
        self.shared.service.shutdown();
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for c in conns {
            let _ = c.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.stopping.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("svc-conn".into())
                    .spawn(move || connection_loop(stream, &conn_shared))
                    .expect("spawn connection");
                // Reap finished connection threads before tracking the
                // new one: joining a finished handle is instant, and
                // without the sweep a long-lived server leaked one
                // JoinHandle (thread stack bookkeeping included) per
                // connection it ever served until shutdown.
                let mut conns = shared.conns.lock().expect("conns lock");
                let mut live = Vec::with_capacity(conns.len() + 1);
                for h in conns.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        live.push(h);
                    }
                }
                live.push(handle);
                *conns = live;
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(READ_POLL);
            }
            Err(_) => break,
        }
    }
}

/// Touches the primary heartbeat file every [`REPL_HEARTBEAT`] until
/// shutdown, and stops beating for good once the journal degrades
/// (fencing, fault-plan crash, or repeated fsync failure).
fn heartbeat_loop(journal: &std::path::Path, shared: &Arc<ServerShared>) {
    let path = heartbeat_path(journal);
    let mut tick: u64 = 0;
    while !shared.stopping.load(Ordering::Acquire) {
        let degraded = shared.service.journal_stats().is_some_and(|s| s.degraded);
        if degraded {
            break;
        }
        tick += 1;
        let epoch = shared.service.journal_stats().map_or(0, |s| s.epoch);
        let _ = std::fs::write(&path, format!("{{\"tick\":{tick},\"epoch\":{epoch}}}\n"));
        std::thread::sleep(REPL_HEARTBEAT);
    }
}

/// Serves one replication stream on the connection's own thread.
///
/// Frames, one JSON object per line:
/// - `{"type":"repl-record","line":"<raw journal line>"}` — a journal
///   record exactly as written (checksum seal included);
/// - `{"type":"repl-reset"}` — the journal rotated or truncated; the
///   standby must discard its image and rebuild from the records that
///   follow;
/// - `{"type":"repl-corrupt"}` — a complete-but-corrupt line was
///   skipped (the standby counts it, mirroring replay quarantine);
/// - `{"type":"repl-hb","epoch":E,"appended":N,"degraded":0|1}` — sent
///   every [`REPL_HEARTBEAT`] even when idle; `degraded:1` tells the
///   standby the primary's journal is dead (crashed or fenced).
///
/// Fault hooks from the journal's [`SvcFaultPlan`](crate::fault::SvcFaultPlan):
/// `drop_stream_after` closes the connection after N record frames;
/// `stall_stream_after` keeps it open but silent (no heartbeats), so
/// the standby must detect death by timeout rather than EOF.
fn replication_loop(stream: &mut TcpStream, shared: &Arc<ServerShared>, id: u64) {
    let Some(journal_cfg) = shared.service.config().journal.clone() else {
        return;
    };
    // Stream faults are one-shot: only the first replication session
    // ever opened sees them, so a standby's reconnect makes progress.
    let session = shared.repl_sessions.fetch_add(1, Ordering::SeqCst);
    let fault = if session == 0 {
        journal_cfg.fault.unwrap_or_default()
    } else {
        crate::fault::SvcFaultPlan::default()
    };
    let mut follower = JournalFollower::new(&journal_cfg.path);
    let mut sent_records: u64 = 0;
    let mut last_hb: Option<Instant> = None;
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        let events = follower.poll().unwrap_or_default();
        for event in events {
            let frame = match event {
                FollowEvent::Record { line, .. } => {
                    obj(vec![("type", "repl-record".into()), ("line", line.into())])
                }
                FollowEvent::Reset => obj(vec![("type", "repl-reset".into())]),
                FollowEvent::Corrupt { .. } => obj(vec![("type", "repl-corrupt".into())]),
            };
            let is_record =
                matches!(frame.get("type").and_then(Value::as_str), Some("repl-record"));
            if write_line(stream, &frame.to_json()).is_err() {
                return; // standby gone
            }
            if is_record {
                sent_records += 1;
                if fault.drop_stream_after.is_some_and(|n| sent_records >= n) {
                    return; // injected drop: close the connection
                }
                if fault.stall_stream_after.is_some_and(|n| sent_records >= n) {
                    // Injected stall: hold the connection open, send
                    // nothing more (not even heartbeats).
                    while !shared.stopping.load(Ordering::Acquire) {
                        std::thread::sleep(READ_POLL);
                    }
                    return;
                }
            }
        }
        if last_hb.map_or(true, |t| t.elapsed() >= REPL_HEARTBEAT) {
            let stats = shared.service.journal_stats().unwrap_or_default();
            let hb = obj(vec![
                ("type", "repl-hb".into()),
                ("id", id.into()),
                ("epoch", stats.epoch.into()),
                ("appended", stats.appended.into()),
                ("degraded", u64::from(stats.degraded).into()),
            ]);
            if write_line(stream, &hb.to_json()).is_err() {
                return;
            }
            last_hb = Some(Instant::now());
        }
        std::thread::sleep(REPL_POLL);
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Serve every complete line already buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            // A panic while handling one request must cost exactly that
            // request, not the connection (and certainly not the
            // server): contain it and answer with a structured error.
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_line(shared, &line)
            }))
            .unwrap_or_else(|_| {
                Handled::One(Response::Error {
                    id: line_request_id(&line),
                    kind: ErrorKind::Internal,
                    message: "request handler panicked".into(),
                })
            });
            match handled {
                Handled::One(response) => {
                    if write_line(&mut stream, &response.to_json()).is_err() {
                        // Client gone mid-response; nothing to deliver.
                        break 'conn;
                    }
                }
                Handled::Replicate(id) => {
                    // The connection is now a one-way record stream; it
                    // ends when the standby disconnects, the server
                    // stops, or a fault plan drops it.
                    replication_loop(&mut stream, shared, id);
                    break 'conn;
                }
                Handled::Stream(pending) => {
                    // Drain the reply frame-by-frame: zero or more
                    // progress lines, then exactly one final line. A
                    // write failure means the watcher is gone — cancel
                    // the in-flight work so a dropped `--progress`
                    // session does not keep burning the pool, and let
                    // the worker's remaining sends fail harmlessly into
                    // the dropped receiver.
                    loop {
                        match pending.recv_frame() {
                            Frame::Progress(p) => {
                                if write_line(&mut stream, &p.to_json()).is_err() {
                                    pending.cancel();
                                    break 'conn;
                                }
                            }
                            Frame::Final(response) => {
                                if write_line(&mut stream, &response.to_json()).is_err() {
                                    break 'conn;
                                }
                                break;
                            }
                        }
                    }
                }
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            let refuse = Response::Error {
                id: 0,
                kind: ErrorKind::Malformed,
                message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            };
            let _ = stream.write_all(format!("{}\n", refuse.to_json()).as_bytes());
            break 'conn;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == IoErrorKind::WouldBlock || e.kind() == IoErrorKind::TimedOut => {
                if shared.stopping.load(Ordering::Acquire) {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
}

/// One newline-terminated protocol frame, written and flushed (the
/// stream has `TCP_NODELAY` set, so a progress line reaches the watcher
/// immediately instead of sitting in a send buffer behind the final).
fn write_line(stream: &mut TcpStream, json: &str) -> std::io::Result<()> {
    let mut out = String::with_capacity(json.len() + 1);
    out.push_str(json);
    out.push('\n');
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// How a request line gets answered: inline with one response, or by
/// draining a worker reply that may stream progress frames first.
enum Handled {
    One(Response),
    Stream(Pending),
    /// The connection becomes a long-lived replication stream; the id
    /// is echoed in heartbeat frames so clients can correlate.
    Replicate(u64),
}

/// Best effort at extracting an id even from a broken request line.
fn line_request_id(line: &str) -> u64 {
    crate::json::Value::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(crate::json::Value::as_u64))
        .unwrap_or(0)
}

fn handle_line(shared: &Arc<ServerShared>, line: &str) -> Handled {
    let request = match Request::from_json(line) {
        Ok(r) => r,
        Err(message) => {
            let id = line_request_id(line);
            // A syntactically fine request carrying an unusable tenant
            // tag is the caller's bug, not a framing problem — answer
            // `invalid` so clients don't retry it as a transport error.
            let kind = if message.starts_with("invalid tenant") {
                ErrorKind::Invalid
            } else {
                ErrorKind::Malformed
            };
            return Handled::One(Response::Error { id, kind, message });
        }
    };
    let id = request.id;
    if shared.service.panic_on_request_id() == Some(id) {
        panic!("injected front-end panic (request {id})");
    }
    if matches!(request.body, RequestBody::Metrics) {
        // Health endpoint: answered inline, never queued, works under
        // overload.
        let rows = shared.service.metrics().all_rows();
        return Handled::One(Response::Metrics { id, rows });
    }
    if matches!(request.body, RequestBody::Replicate) {
        // Served out-of-band by this connection's own thread; it never
        // enters the queue, so replication survives overload.
        if shared.service.config().journal.is_none() {
            return Handled::One(Response::Error {
                id,
                kind: ErrorKind::Invalid,
                message: "replication requires a journalled primary (--journal)".into(),
            });
        }
        return Handled::Replicate(id);
    }
    if let RequestBody::Attach { job } = request.body {
        // A cheap index lookup, answered inline like metrics — so a
        // client can re-fetch its finished run even while the queue is
        // shedding new work.
        return Handled::One(shared.service.attach(id, job));
    }
    match shared.service.submit(request) {
        Ok(pending) => {
            // Requests on one connection are answered in order; the
            // frame drain (including its blocking waits) is bounded by
            // service drain on shutdown. Non-opted requests never
            // receive progress frames, so their wire behavior is
            // byte-identical to the pre-streaming protocol.
            Handled::Stream(pending)
        }
        Err(rejected) => Handled::One(rejected.to_response(id)),
    }
}
